//! The `/v1/jobs` service surface: optimization-as-a-service.
//!
//! Long-running searches (parallel-tempered SA floorplanning, the
//! Fig. 12b dielectric sweep, Sec. IIIA pillar placement) run as
//! **step-sliced jobs** behind a scheduler that is distinct from the
//! request queue:
//!
//! * `POST /v1/jobs` admits a [`tsc_jobs::JobSpec`] into the bounded
//!   [`tsc_jobs::JobTable`] (202 with the job id, 429 when full) —
//!   admission never touches the solve queue, so a job flood cannot
//!   displace interactive traffic;
//! * a **pump** thread (see `server::jobs_pump`) promotes queued jobs
//!   within per-class quotas, checks out independent work slices, and
//!   enqueues them at [`Priority::Background`](crate::queue::Priority)
//!   so workers interleave them with (and always behind) request
//!   traffic;
//! * `GET /v1/jobs/{id}` polls typed status/progress/partial-best,
//!   `GET /v1/jobs/{id}/events` streams the buffered progress events as
//!   NDJSON (the same close-delimited framing transient sessions use),
//!   `POST /v1/jobs/{id}/cancel` cancels cooperatively, and
//!   `GET /v1/jobs/{id}/checkpoint` returns the resume token a client
//!   re-submits (`"resume": …`) to continue bitwise-identically after a
//!   drain;
//! * results persist until TTL eviction.
//!
//! The table lock ranks at [`rank::JOB_TABLE`], above the admission
//! queue: the pump may enqueue while holding it, never the reverse.

use std::io::Write;
use std::net::TcpStream;
use std::sync::Condvar;
use std::time::{Duration, Instant};

use tsc_bench::json::Json;
use tsc_jobs::{JobSpec, JobTable, SubmitError, TableConfig};

use crate::http::{Request, Response};
use crate::locks::{rank, RankedMutex};
use crate::metrics::Metrics;

/// Poll pacing for `/events` streams between condvar wakeups.
const EVENTS_TICK: Duration = Duration::from_millis(100);

/// The job table plus the condvar the pump and event streams sleep on.
pub(crate) struct JobsHost {
    pub table: RankedMutex<JobTable>,
    /// Notified on submissions, completions, and cancellations.
    pub changed: Condvar,
}

impl JobsHost {
    pub fn new(config: TableConfig, id_seed: u64) -> Self {
        JobsHost {
            table: RankedMutex::new(
                JobTable::new(config, id_seed),
                rank::JOB_TABLE,
                "JobsHost.table",
            ),
            changed: Condvar::new(),
        }
    }

    /// Wakes the pump and any `/events` streams.
    pub fn notify(&self) {
        self.changed.notify_all();
    }

    /// Mirrors the table's gauges and lifetime counters into the
    /// registry.  Counters advance monotonically (`advance_to`): live
    /// jobs contribute their running evaluation totals, which migrate
    /// into the table's terminal counters when they finish.
    pub fn sync_metrics(&self, metrics: &Metrics) {
        let table = self.table.lock();
        let (running, queued) = table.load();
        let counters = table.counters();
        let mut live_evals = 0u64;
        let mut live_dedup = 0u64;
        for entry in table.entries() {
            if !entry.state.is_terminal() {
                let progress = entry.engine.progress();
                live_evals += progress.evals;
                live_dedup += progress.dedup_hits;
            }
        }
        drop(table);
        metrics.jobs_active.set(running as i64);
        metrics.jobs_queued.set(queued as i64);
        metrics.jobs_completed_total.advance_to(counters.done);
        metrics.jobs_failed_total.advance_to(counters.failed);
        metrics.jobs_cancelled_total.advance_to(counters.cancelled);
        metrics.jobs_evicted_total.advance_to(counters.evicted);
        metrics
            .job_evals_total
            .advance_to(counters.evals + live_evals);
        metrics
            .job_dedup_hits_total
            .advance_to(counters.dedup_hits + live_dedup);
    }
}

/// Splits `/v1/jobs/{16-hex-id}[/action]` into `(id, action)`.
fn parse_path(path: &str) -> Option<(u64, &str)> {
    let rest = path.strip_prefix("/v1/jobs/")?;
    let (id_part, tail) = match rest.find('/') {
        Some(pos) => (&rest[..pos], &rest[pos + 1..]),
        None => (rest, ""),
    };
    if id_part.len() != 16 {
        return None;
    }
    let id = u64::from_str_radix(id_part, 16).ok()?;
    Some((id, tail))
}

/// `POST /v1/jobs` — parse, validate, and admit a job spec.
pub(crate) fn submit(host: &JobsHost, metrics: &Metrics, request: &Request) -> Response {
    let text = match std::str::from_utf8(&request.body) {
        Ok(text) => text,
        Err(_) => return Response::error(400, "body is not UTF-8"),
    };
    let body = match tsc_bench::json::parse(text) {
        Ok(json) => json,
        Err(e) => return Response::error(400, &format!("invalid JSON body: {e}")),
    };
    let spec = match JobSpec::parse(&body) {
        Ok(spec) => spec,
        Err(message) => return Response::error(400, &message),
    };
    let outcome = {
        let mut table = host.table.lock();
        table.submit(&spec, Instant::now())
    };
    match outcome {
        Ok(id) => {
            metrics.jobs_submitted_total.inc();
            host.notify();
            let body = Json::object()
                .field("id", format!("{id:016x}"))
                .field("kind", spec.kind.label())
                .field("state", "queued")
                .pretty();
            Response::json(202, body)
        }
        Err(SubmitError::TableFull) => {
            metrics.jobs_rejected_table_full_total.inc();
            Response::error(429, "job table full").with_retry_after(1)
        }
        Err(SubmitError::BadSpec(message)) => Response::error(400, &message),
    }
}

/// Routes `/v1/jobs/{id}[/action]` requests that are not streamed.
pub(crate) fn route_entry(
    host: &JobsHost,
    metrics: &Metrics,
    method: &str,
    path: &str,
) -> Response {
    let Some((id, tail)) = parse_path(path) else {
        return Response::error(404, "no such job");
    };
    match (method, tail) {
        ("GET", "") => status(host, id),
        ("POST", "cancel") => cancel(host, metrics, id),
        ("GET", "checkpoint") => checkpoint(host, id),
        // `GET …/events` is consumed before routing (it takes over the
        // connection); reaching here means a non-GET method.
        (_, "" | "cancel" | "checkpoint" | "events") => Response::error(405, "method not allowed"),
        _ => Response::error(404, "no such job action"),
    }
}

/// `GET /v1/jobs/{id}` — the typed status document.
fn status(host: &JobsHost, id: u64) -> Response {
    let table = host.table.lock();
    match table.get(id) {
        Some(entry) => Response::json(200, entry.status().pretty()),
        None => Response::error(404, "no such job"),
    }
}

/// `GET /v1/jobs/{id}/checkpoint` — the resume token.
fn checkpoint(host: &JobsHost, id: u64) -> Response {
    let table = host.table.lock();
    let Some(entry) = table.get(id) else {
        return Response::error(404, "no such job");
    };
    let doc = Json::object()
        .field("id", format!("{id:016x}"))
        .field("kind", entry.engine.kind().label())
        .field("state", entry.state.label())
        .field("checkpoint", entry.engine.checkpoint());
    Response::json(200, doc.pretty())
}

/// `POST /v1/jobs/{id}/cancel` — cooperative cancellation.
fn cancel(host: &JobsHost, metrics: &Metrics, id: u64) -> Response {
    let state = {
        let mut table = host.table.lock();
        table.cancel(id, Instant::now())
    };
    match state {
        Some(state) => {
            host.notify();
            host.sync_metrics(metrics);
            let body = Json::object()
                .field("id", format!("{id:016x}"))
                .field("state", state.label())
                .pretty();
            Response::json(200, body)
        }
        None => Response::error(404, "no such job"),
    }
}

/// `GET /v1/jobs/{id}/events` — stream buffered progress events as
/// close-delimited NDJSON, then a final `{"event": "end"}` line once the
/// job reaches a terminal state.
pub(crate) fn stream_events(
    host: &JobsHost,
    metrics: &Metrics,
    path: &str,
    stream: &mut TcpStream,
    deadline: Duration,
    stopping: &dyn Fn() -> bool,
) {
    let id = match parse_path(path) {
        Some((id, "events")) => id,
        _ => {
            refuse(metrics, stream, 404, "no such job");
            return;
        }
    };
    if host.table.lock().get(id).is_none() {
        refuse(metrics, stream, 404, "no such job");
        return;
    }
    metrics.record_request("jobs", 200);
    let head = "HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\nConnection: close\r\n\r\n";
    if stream.write_all(head.as_bytes()).is_err() {
        return;
    }
    let expires = Instant::now() + deadline;
    let mut cursor = 0usize;
    loop {
        let mut batch: Vec<Json> = Vec::new();
        let mut terminal = None;
        let mut evicted = false;
        {
            let table = host.table.lock();
            match table.get(id) {
                Some(entry) => {
                    if cursor < entry.events.len() {
                        batch.extend(entry.events[cursor..].iter().cloned());
                        cursor = entry.events.len();
                    }
                    if entry.state.is_terminal() {
                        terminal = Some(entry.state);
                    }
                }
                None => evicted = true,
            }
        }
        if evicted {
            let _ = send(stream, &in_band(410, "job evicted"));
            return;
        }
        for event in &batch {
            if !send(stream, event) {
                return;
            }
        }
        if let Some(state) = terminal {
            let _ = send(
                stream,
                &Json::object()
                    .field("event", "end")
                    .field("state", state.label()),
            );
            return;
        }
        if stopping() {
            let _ = send(stream, &in_band(503, "server shutting down"));
            return;
        }
        if Instant::now() >= expires {
            let _ = send(stream, &in_band(504, "stream deadline expired"));
            return;
        }
        let guard = host.table.lock();
        let (guard, _timed_out) = guard.wait_timeout(&host.changed, EVENTS_TICK);
        drop(guard);
    }
}

/// A typed in-band error event (the streaming analogue of an HTTP
/// error status).
fn in_band(status: u16, message: &str) -> Json {
    Json::object()
        .field("event", "error")
        .field("status", status as usize)
        .field("error", message)
}

/// Refuses the stream before NDJSON framing starts.
fn refuse(metrics: &Metrics, stream: &mut TcpStream, status: u16, message: &str) {
    metrics.record_request("jobs", status);
    let response = Response::error(status, message).with_close();
    let _ = stream.write_all(&response.to_bytes());
}

/// Writes one event line; `false` means the client is gone.
fn send(stream: &mut TcpStream, event: &Json) -> bool {
    let mut line = event.compact();
    line.push('\n');
    stream.write_all(line.as_bytes()).is_ok()
}
