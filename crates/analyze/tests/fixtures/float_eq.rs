//! Fixture: `==` / `!=` against float literals.

pub fn is_zero(a: f64) -> bool {
    a == 0.0
}

pub fn differs(a: f64) -> bool {
    a != 0.5
}
