//! Randomized property tests over the three evaluated designs: power
//! bookkeeping must be exact regardless of rasterization resolution,
//! utilization or lateral scale.
//!
//! Cases come from a deterministic [`Rng64`] stream; shrunk
//! counterexamples the old proptest runs found are kept as explicit
//! cases.

use tsc_designs::{fujitsu, gemmini, rocket, Design};
use tsc_rng::Rng64;
use tsc_units::Ratio;

const CASES: usize = 12;

fn designs() -> Vec<Design> {
    vec![gemmini::design(), rocket::design(), fujitsu::design()]
}

fn check_power_map_conserves(which: usize, cells: usize, util_pct: f64) {
    let d = &designs()[which];
    let util = Ratio::from_percent(util_pct);
    let map = d.power_map(cells, cells, util);
    let cell_area = d.die_area().square_meters() / (cells * cells) as f64;
    let rasterized: f64 = map.iter().sum::<f64>() * cell_area;
    let exact = d.total_power(util).watts();
    // Area-weighted deposition conserves power exactly at any resolution.
    assert!(
        (rasterized - exact).abs() / exact < 1e-9,
        "{}: rasterized {rasterized} vs exact {exact} at {cells} cells",
        d.name
    );
}

#[test]
fn power_map_conserves_total_power() {
    // Shrunk counterexamples found by the former proptest suite.
    check_power_map_conserves(2, 38, 10.0);
    check_power_map_conserves(0, 51, 10.0);
    let mut rng = Rng64::seed_from_u64(0x4001);
    for _ in 0..CASES {
        check_power_map_conserves(
            rng.gen_range(0..3),
            rng.gen_range(16..64),
            rng.gen_range_f64(10.0..100.0),
        );
    }
}

#[test]
fn power_is_linear_in_utilization_above_leakage() {
    let mut rng = Rng64::seed_from_u64(0x4002);
    for _ in 0..CASES {
        let which = rng.gen_range(0..3);
        let u1 = rng.gen_range_f64(0.2..0.5);
        // Dynamic power dominates: doubling utilization should raise
        // power by nearly the dynamic share.
        let d = &designs()[which];
        let p1 = d.total_power(Ratio::from_fraction(u1)).watts();
        let p2 = d.total_power(Ratio::from_fraction(2.0 * u1)).watts();
        assert!(p2 > p1);
        let p0 = d.total_power(Ratio::ZERO).watts();
        // (p2 - p0) = 2 (p1 - p0) exactly, by the affine power model.
        assert!(((p2 - p0) - 2.0 * (p1 - p0)).abs() < 1e-9 * p2.max(1e-12));
    }
}

#[test]
fn lateral_scaling_preserves_density() {
    let mut rng = Rng64::seed_from_u64(0x4003);
    for _ in 0..CASES {
        let which = rng.gen_range(0..3);
        let factor = rng.gen_range_f64(1.5..6.0);
        let d = &designs()[which];
        let s = d.scaled(factor);
        let f0 = d.average_flux(Ratio::ONE).watts_per_square_meter();
        let f1 = s.average_flux(Ratio::ONE).watts_per_square_meter();
        assert!((f0 - f1).abs() / f0 < 1e-9);
        assert!(
            (s.die_area().square_meters() / d.die_area().square_meters() - factor * factor).abs()
                < 1e-6
        );
    }
}

#[test]
fn heat_sources_cover_all_units() {
    for d in &designs() {
        let hs = d.heat_sources(Ratio::ONE);
        assert_eq!(hs.len(), d.units.len());
        // Macro flags survive the conversion.
        let macros = hs.iter().filter(|h| h.is_macro).count();
        let unit_macros = d.units.iter().filter(|u| u.is_macro).count();
        assert_eq!(macros, unit_macros);
    }
}
