//! The preliminary Fujitsu Research accelerator — the ~100× scaled
//! design of Fig. 8b.
//!
//! The paper's version carries a 160×160-PE systolic array (100× the
//! Gemmini PE count), 54 MB of scratchpad and a 351 MB LLC, with power
//! estimated by proprietary internal simulations and the pillar pattern
//! generated on a single multiply-accumulate unit and repeated across
//! the MAC array.
//!
//! Substitution: we scale the Gemmini tier 10× in each lateral dimension
//! (100× area and PE count — power densities are scale-invariant) and
//! keep the same unit classes. Scaled memory capacities land at 400 MB
//! LLC-equivalent area (the paper's 351 MB plus scratchpad is within
//! ~15 % of this area budget). The scaled design demonstrates exactly
//! what the paper uses it for: that tier scaling and pillar patterns
//! transfer to much larger dies. No timing is reported for this design
//! in the paper (Table I marks delay "n/a"), and likewise here.

use crate::design::Design;
use crate::gemmini;

/// Lateral scale factor relative to Gemmini (100× area / PE count).
pub const SCALE: f64 = 10.0;

/// PEs per side of the scaled array.
pub const PE_PER_SIDE: usize = gemmini::PE_PER_SIDE * 10;

/// Builds the Fujitsu-scale accelerator tier.
///
/// ```
/// use tsc_designs::{fujitsu, gemmini};
/// use tsc_units::Ratio;
///
/// let big = fujitsu::design();
/// let small = gemmini::design();
/// let ratio = big.die_area().square_meters() / small.die_area().square_meters();
/// assert!((ratio - 100.0).abs() < 1e-6);
/// // Power density (the thermal driver) is unchanged by scaling.
/// let df = big.average_flux(Ratio::ONE) / small.average_flux(Ratio::ONE);
/// assert!((df - 1.0).abs() < 1e-9);
/// ```
#[must_use]
pub fn design() -> Design {
    let mut d = gemmini::design().scaled(SCALE);
    d.name = "Fujitsu Research accelerator (preliminary, 100x)".to_string();
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsc_units::Ratio;

    #[test]
    fn hundredfold_area() {
        let ratio =
            design().die_area().square_meters() / gemmini::design().die_area().square_meters();
        assert!((ratio - 100.0).abs() < 1e-6);
    }

    #[test]
    fn pe_count_matches_paper() {
        assert_eq!(PE_PER_SIDE, 160);
    }

    #[test]
    fn same_power_density_as_gemmini() {
        let big = design().average_flux(Ratio::ONE).watts_per_square_cm();
        let small = gemmini::design()
            .average_flux(Ratio::ONE)
            .watts_per_square_cm();
        assert!((big - small).abs() < 1e-9);
    }

    #[test]
    fn total_power_is_hundredfold() {
        let big = design().total_power(Ratio::ONE).watts();
        let small = gemmini::design().total_power(Ratio::ONE).watts();
        assert!((big / small - 100.0).abs() < 1e-9);
    }

    #[test]
    fn die_is_centimeter_class() {
        let d = design();
        assert!((d.die.width().millimeters() - 26.0).abs() < 1e-6);
    }
}
