//! Critical-path delay-penalty model.
//!
//! The paper reports delay penalties of cooling strategies relative to
//! the timing-driven baseline (sum of target period and worst negative
//! slack). We model the critical path as three components — cell delay,
//! lower-metal wire delay, upper-metal (global) wire delay — and apply
//! the physical effects of each cooling strategy:
//!
//! * **wirelength growth**: spending footprint stretches wires by
//!   `sqrt(1 + area penalty)`; repeatered wire delay is linear in length;
//! * **dielectric swap** (scaffolding): upper-metal capacitance doubles
//!   (ε 2 → 4), slowing repeatered upper wires by `sqrt(ε ratio)`
//!   — but only the small global-routing share of the path sees it;
//! * **coupling load**: dummy fill and pillar metal add sidewall
//!   capacitance to signal wires (`sqrt(1 + Δc/c)` slowdown).
//!
//! Calibration: the component shares and coupling coefficients are set
//! so the model lands on the paper's three Gemmini anchor points
//! (Table I): scaffolding 10 % area → 3 % delay; pillars-only 34 % →
//! 7 %; dummy fill 78 % → 17 %.

use tsc_pdk::wire::coupling_slowdown;
use tsc_units::Ratio;

/// The critical-path composition and coupling coefficients.
#[derive(Debug, Clone, PartialEq)]
pub struct DelayModel {
    /// Cell-delay share of the critical path.
    pub cell_fraction: f64,
    /// Lower-metal wire share.
    pub lower_wire_fraction: f64,
    /// Upper-metal (global) wire share — small, which is why the 2× ε
    /// costs so little.
    pub upper_wire_fraction: f64,
    /// Extra wire capacitance per unit of pillar areal density
    /// (grounded pillar metal adjacent to signal wires).
    pub pillar_cap_coeff: f64,
}

/// What a cooling strategy did to the layout, as seen by timing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingImpact {
    /// Footprint penalty (whitespace, pillars, fill slack).
    pub area_penalty: Ratio,
    /// Ratio of upper-dielectric ε to the ultra-low-k baseline
    /// (1.0 = no swap, 2.0 = thermal dielectric).
    pub upper_epsilon_ratio: f64,
    /// Extra signal capacitance fraction from dummy fill.
    pub fill_coupling: f64,
    /// Areal density of pillars in the routed region.
    pub pillar_density: Ratio,
}

impl TimingImpact {
    /// No cooling modifications: the timing-driven baseline.
    #[must_use]
    pub fn baseline() -> Self {
        Self {
            area_penalty: Ratio::ZERO,
            upper_epsilon_ratio: 1.0,
            fill_coupling: 0.0,
            pillar_density: Ratio::ZERO,
        }
    }
}

impl DelayModel {
    /// The model calibrated to the paper's Gemmini anchors.
    #[must_use]
    pub fn calibrated() -> Self {
        Self {
            cell_fraction: 0.675,
            lower_wire_fraction: 0.3045,
            upper_wire_fraction: 0.0205,
            pillar_cap_coeff: 0.3,
        }
    }

    /// Delay penalty of a cooling strategy relative to the baseline.
    ///
    /// # Panics
    ///
    /// Panics if the impact contains negative quantities or the path
    /// fractions do not sum to 1.
    #[must_use]
    pub fn delay_penalty(&self, impact: &TimingImpact) -> Ratio {
        let total = self.cell_fraction + self.lower_wire_fraction + self.upper_wire_fraction;
        assert!(
            (total - 1.0).abs() < 1e-9,
            "path fractions must sum to 1, got {total}"
        );
        assert!(
            impact.area_penalty.fraction() >= 0.0
                && impact.upper_epsilon_ratio >= 1.0
                && impact.fill_coupling >= 0.0
                && impact.pillar_density.fraction() >= 0.0,
            "timing impact quantities must be non-negative"
        );
        let wl = (1.0 + impact.area_penalty.fraction()).sqrt();
        let coupling = coupling_slowdown(
            impact.fill_coupling + self.pillar_cap_coeff * impact.pillar_density.fraction(),
        );
        let lower = self.lower_wire_fraction * wl * coupling;
        let upper = self.upper_wire_fraction * wl * coupling * impact.upper_epsilon_ratio.sqrt();
        let relative = self.cell_fraction + lower + upper;
        Ratio::from_fraction(relative - 1.0)
    }
}

impl Default for DelayModel {
    fn default() -> Self {
        Self::calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> DelayModel {
        DelayModel::calibrated()
    }

    #[test]
    fn baseline_has_zero_penalty() {
        let p = model().delay_penalty(&TimingImpact::baseline());
        assert!(p.fraction().abs() < 1e-12);
    }

    #[test]
    fn scaffolding_anchor_three_percent() {
        // 10% area, ε 2->4, 10% pillar density, no fill.
        let p = model().delay_penalty(&TimingImpact {
            area_penalty: Ratio::from_percent(10.0),
            upper_epsilon_ratio: 2.0,
            fill_coupling: 0.0,
            pillar_density: Ratio::from_percent(10.0),
        });
        assert!(
            (p.percent() - 3.0).abs() < 0.2,
            "scaffolding anchor: got {p}"
        );
    }

    #[test]
    fn pillars_only_anchor_seven_percent() {
        // Vertical conduction only: 34% area in pillars, no dielectric.
        let p = model().delay_penalty(&TimingImpact {
            area_penalty: Ratio::from_percent(34.0),
            upper_epsilon_ratio: 1.0,
            fill_coupling: 0.0,
            pillar_density: Ratio::from_percent(34.0),
        });
        assert!(
            (p.percent() - 7.0).abs() < 0.2,
            "pillars-only anchor: got {p}"
        );
    }

    #[test]
    fn dummy_fill_anchor_seventeen_percent() {
        // Conventional 3D thermal at 12 tiers: 78% area slack spent on
        // fill (extra fill 0.343 -> coupling 0.309 with the fill model).
        let fill = crate::fill::FillModel::calibrated();
        let slack = Ratio::from_percent(78.0);
        let p = model().delay_penalty(&TimingImpact {
            area_penalty: slack,
            upper_epsilon_ratio: 1.0,
            fill_coupling: fill.coupling_capacitance(slack),
            pillar_density: Ratio::ZERO,
        });
        assert!(
            (p.percent() - 17.0).abs() < 0.5,
            "dummy-fill anchor: got {p}"
        );
    }

    #[test]
    fn penalty_monotone_in_area() {
        let m = model();
        let mut last = -1.0;
        for a in [0.0, 5.0, 10.0, 20.0, 40.0, 80.0] {
            let p = m
                .delay_penalty(&TimingImpact {
                    area_penalty: Ratio::from_percent(a),
                    ..TimingImpact::baseline()
                })
                .percent();
            assert!(p > last);
            last = p;
        }
    }

    #[test]
    fn epsilon_swap_alone_is_cheap() {
        // The headline argument: doubling ε in M8-M9 alone costs ~1%.
        let p = model().delay_penalty(&TimingImpact {
            upper_epsilon_ratio: 2.0,
            ..TimingImpact::baseline()
        });
        assert!(p.percent() < 2.0, "ε swap alone: {p}");
        assert!(p.percent() > 0.5, "ε swap is not free: {p}");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn invalid_impact_rejected() {
        let _ = model().delay_penalty(&TimingImpact {
            upper_epsilon_ratio: 0.5,
            ..TimingImpact::baseline()
        });
    }
}
