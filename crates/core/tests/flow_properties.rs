//! Property-based tests of the scaffolding core: physical monotonicity
//! of the flows and the pillar-efficiency model.

use proptest::prelude::*;
use tsc_core::beol::BeolProperties;
use tsc_core::pillars::uniform_routable_map;
use tsc_core::stack::{pillar_efficiency, solve, StackConfig};
use tsc_designs::gemmini;
use tsc_thermal::Heatsink;
use tsc_units::{Length, Ratio, ThermalConductivity};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn pillar_efficiency_is_a_proper_fraction(
        f in 0.001f64..0.95,
        pitch_um in 0.5f64..20.0,
    ) {
        for beol in [BeolProperties::conventional(), BeolProperties::scaffolded()] {
            let eta = pillar_efficiency(
                f,
                Length::from_micrometers(pitch_um),
                ThermalConductivity::new(105.0),
                &beol,
            );
            prop_assert!(eta > 0.0 && eta <= 1.0, "eta = {eta}");
        }
    }

    #[test]
    fn scaffolded_gathering_beats_conventional(
        f in 0.01f64..0.6,
        pitch_um in 1.0f64..12.0,
    ) {
        // The thermal dielectric always improves (or preserves) the
        // gathering efficiency — its whole purpose.
        let pitch = Length::from_micrometers(pitch_um);
        let k = ThermalConductivity::new(105.0);
        let conv = pillar_efficiency(f, pitch, k, &BeolProperties::conventional());
        let scaf = pillar_efficiency(f, pitch, k, &BeolProperties::scaffolded());
        prop_assert!(scaf >= conv - 1e-12, "conv {conv} vs scaf {scaf}");
    }

    #[test]
    fn efficiency_falls_with_density(
        pitch_um in 1.0f64..10.0,
        f1 in 0.01f64..0.15,
        factor in 1.2f64..2.0,
    ) {
        // Denser constellations are more gathering-limited. (Analytic
        // caveat: η ∝ 1/(1 + c·f·ln(1/√f)) is only monotone below
        // f = 1/e ≈ 0.37, so the property is stated on the sparse regime
        // where pillar budgets actually live.)
        let pitch = Length::from_micrometers(pitch_um);
        let k = ThermalConductivity::new(105.0);
        let beol = BeolProperties::conventional();
        let f2 = (f1 * factor).min(0.3);
        let e1 = pillar_efficiency(f1, pitch, k, &beol);
        let e2 = pillar_efficiency(f2, pitch, k, &beol);
        prop_assert!(e2 <= e1 + 1e-12, "eta({f1}) = {e1}, eta({f2}) = {e2}");
    }

    #[test]
    fn routable_map_hits_any_budget(pct in 0.5f64..40.0) {
        let d = gemmini::design();
        let map = uniform_routable_map(&d, Ratio::from_percent(pct), 20);
        prop_assert!((map.mean() * 100.0 - pct).abs() < 0.1 * pct + 0.2,
            "budget {pct}%, mean {}", map.mean() * 100.0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn more_pillars_never_heat_the_stack(
        budget1 in 2.0f64..15.0,
        extra in 1.05f64..2.0,
        tiers in 4usize..10,
    ) {
        let d = gemmini::design();
        let solve_at = |pct: f64| {
            let cfg = StackConfig::uniform(
                tiers,
                BeolProperties::scaffolded(),
                Heatsink::two_phase(),
            )
            .with_lateral_cells(8)
            .with_pillar_map(uniform_routable_map(&d, Ratio::from_percent(pct), 8));
            solve(&d, &cfg).expect("solves").junction_temperature().kelvin()
        };
        let t1 = solve_at(budget1);
        let t2 = solve_at(budget1 * extra);
        prop_assert!(t2 <= t1 + 1e-6, "denser pillars heated: {t1} -> {t2}");
    }

    #[test]
    fn added_tiers_always_heat(
        tiers in 2usize..9,
        budget in 2.0f64..12.0,
    ) {
        let d = gemmini::design();
        let solve_n = |n: usize| {
            let cfg = StackConfig::uniform(
                n,
                BeolProperties::scaffolded(),
                Heatsink::two_phase(),
            )
            .with_lateral_cells(8)
            .with_pillar_map(uniform_routable_map(&d, Ratio::from_percent(budget), 8));
            solve(&d, &cfg).expect("solves").junction_temperature().kelvin()
        };
        prop_assert!(solve_n(tiers + 1) > solve_n(tiers));
    }
}
