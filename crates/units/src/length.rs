//! Geometric quantities: [`Length`], [`Area`], [`Volume`].

quantity! {
    /// A length, stored in meters.
    ///
    /// Chip dimensions span nine orders of magnitude — from ~10 nm via
    /// openings to ~1 cm dies — so convenience constructors/accessors are
    /// provided for nm, µm and mm.
    ///
    /// ```
    /// use tsc_units::Length;
    /// let pitch = Length::from_nanometers(100.0);
    /// assert!((pitch.micrometers() - 0.1).abs() < 1e-12);
    /// ```
    Length, "m", "Creates a length from meters."
}

quantity! {
    /// An area, stored in square meters.
    ///
    /// ```
    /// use tsc_units::{Area, Length};
    /// let a = Length::from_micrometers(25.0) * Length::from_micrometers(25.0);
    /// assert!((a.square_micrometers() - 625.0).abs() < 1e-9);
    /// ```
    Area, "m^2", "Creates an area from square meters."
}

quantity! {
    /// A volume, stored in cubic meters.
    ///
    /// ```
    /// use tsc_units::{Length, Volume};
    /// let v = Volume::new(1e-18);
    /// assert!((v.cubic_micrometers() - 1.0).abs() < 1e-9);
    /// # let _ = Length::from_nanometers(1.0);
    /// ```
    Volume, "m^3", "Creates a volume from cubic meters."
}

impl Length {
    /// Creates a length from meters (alias of [`Length::new`]).
    #[must_use]
    pub const fn from_meters(m: f64) -> Self {
        Self::new(m)
    }

    /// Creates a length from millimeters.
    #[must_use]
    pub fn from_millimeters(mm: f64) -> Self {
        Self::new(mm * 1e-3)
    }

    /// Creates a length from micrometers.
    #[must_use]
    pub fn from_micrometers(um: f64) -> Self {
        Self::new(um * 1e-6)
    }

    /// Creates a length from nanometers.
    #[must_use]
    pub fn from_nanometers(nm: f64) -> Self {
        Self::new(nm * 1e-9)
    }

    /// Value in meters.
    #[must_use]
    pub const fn meters(self) -> f64 {
        self.get()
    }

    /// Value in millimeters.
    #[must_use]
    pub fn millimeters(self) -> f64 {
        self.get() * 1e3
    }

    /// Value in micrometers.
    #[must_use]
    pub fn micrometers(self) -> f64 {
        self.get() * 1e6
    }

    /// Value in nanometers.
    #[must_use]
    pub fn nanometers(self) -> f64 {
        self.get() * 1e9
    }

    /// The square of this length as an [`Area`].
    #[must_use]
    pub fn squared(self) -> Area {
        Area::new(self.get() * self.get())
    }
}

impl Area {
    /// Creates an area from square micrometers.
    #[must_use]
    pub fn from_square_micrometers(um2: f64) -> Self {
        Self::new(um2 * 1e-12)
    }

    /// Creates an area from square millimeters.
    #[must_use]
    pub fn from_square_millimeters(mm2: f64) -> Self {
        Self::new(mm2 * 1e-6)
    }

    /// Creates an area from square centimeters.
    #[must_use]
    pub fn from_square_cm(cm2: f64) -> Self {
        Self::new(cm2 * 1e-4)
    }

    /// Value in square meters.
    #[must_use]
    pub const fn square_meters(self) -> f64 {
        self.get()
    }

    /// Value in square micrometers.
    #[must_use]
    pub fn square_micrometers(self) -> f64 {
        self.get() * 1e12
    }

    /// Value in square millimeters.
    #[must_use]
    pub fn square_millimeters(self) -> f64 {
        self.get() * 1e6
    }

    /// Value in square centimeters.
    #[must_use]
    pub fn square_cm(self) -> f64 {
        self.get() * 1e4
    }

    /// Side length of a square with this area.
    ///
    /// Used by the pillar-placement algorithm: the required pillar pitch
    /// within a heat source of area `A` covered by `P` pillars is
    /// `(A / P).side_of_square()`.
    #[must_use]
    pub fn side_of_square(self) -> Length {
        Length::new(self.get().sqrt())
    }
}

impl Volume {
    /// Value in cubic micrometers.
    #[must_use]
    pub fn cubic_micrometers(self) -> f64 {
        self.get() * 1e18
    }
}

impl core::ops::Mul for Length {
    type Output = Area;
    fn mul(self, rhs: Self) -> Area {
        Area::new(self.get() * rhs.get())
    }
}

impl core::ops::Mul<Length> for Area {
    type Output = Volume;
    fn mul(self, rhs: Length) -> Volume {
        Volume::new(self.get() * rhs.get())
    }
}

impl core::ops::Mul<Area> for Length {
    type Output = Volume;
    fn mul(self, rhs: Area) -> Volume {
        Volume::new(self.get() * rhs.get())
    }
}

impl core::ops::Div<Length> for Area {
    type Output = Length;
    fn div(self, rhs: Length) -> Length {
        Length::new(self.get() / rhs.get())
    }
}

impl core::ops::Div<Length> for Volume {
    type Output = Area;
    fn div(self, rhs: Length) -> Area {
        Area::new(self.get() / rhs.get())
    }
}

impl core::ops::Div<Area> for Volume {
    type Output = Length;
    fn div(self, rhs: Area) -> Length {
        Length::new(self.get() / rhs.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions_round_trip() {
        let l = Length::from_nanometers(240.0);
        assert!((l.micrometers() - 0.24).abs() < 1e-12);
        assert!((l.meters() - 240e-9).abs() < 1e-21);
        assert!((Length::from_millimeters(10.0).meters() - 0.01).abs() < 1e-15);
    }

    #[test]
    fn length_times_length_is_area() {
        let a = Length::from_micrometers(2.0) * Length::from_micrometers(3.0);
        assert!((a.square_micrometers() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn area_div_length_is_length() {
        let a = Area::from_square_micrometers(6.0);
        let l = a / Length::from_micrometers(2.0);
        assert!((l.micrometers() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn volume_chain() {
        let v = Length::from_micrometers(1.0).squared() * Length::from_micrometers(5.0);
        assert!((v.cubic_micrometers() - 5.0).abs() < 1e-9);
        let back = v / Length::from_micrometers(5.0);
        assert!((back.square_micrometers() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn side_of_square() {
        let a = Area::from_square_micrometers(625.0);
        assert!((a.side_of_square().micrometers() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn square_cm_conversion() {
        // 1 cm^2 chip is 1e-4 m^2.
        let a = Area::from_square_cm(1.0);
        assert!((a.square_meters() - 1e-4).abs() < 1e-18);
        assert!((a.square_millimeters() - 100.0).abs() < 1e-9);
    }
}
