//! The `floorplan_sa` engine: parallel-tempered thermal-aware
//! floorplanning over a design fixture.
//!
//! Each work unit is one replica's move round at its rung temperature;
//! replicas synchronize only at the per-round barrier, where the engine
//! runs the deterministic even/odd swap sweep, merges memo overlays,
//! emits a progress event and refreshes the checkpoint. Because every
//! replica owns its RNG stream, the schedule order of the shards cannot
//! affect the result — a resumed run replays the interrupted round from
//! the last barrier and lands on the same best cost and RNG states,
//! bitwise.

use std::collections::HashMap;
use std::sync::Arc;

use tsc_bench::json::Json;
use tsc_designs::Design;
use tsc_phydes::anneal::{AnnealState, Replica, Schedule, TemperedRun};
use tsc_phydes::floorplan::{FloorplanProblem, Module, Net, SpCandidate};
use tsc_rng::Rng64;
use tsc_units::Ratio;

use crate::checkpoint::{
    bits_f64, bool_array, hex_u64, parse_bits_f64, parse_bool_array, parse_hex_u64,
    parse_usize_array, require, usize_array,
};
use crate::memo::{EvalMemo, FNV_OFFSET, FNV_PRIME};
use crate::spec::JobSpec;
use crate::Progress;

/// Sequence-pair state over a shared problem, movable across threads.
#[derive(Debug, Clone)]
pub struct FpState {
    /// The (immutable, shared) problem instance.
    pub problem: Arc<FloorplanProblem>,
    /// The candidate this state represents.
    pub cand: SpCandidate,
}

impl AnnealState for FpState {
    fn neighbour(&self, rng: &mut Rng64) -> Self {
        Self {
            problem: Arc::clone(&self.problem),
            cand: self.problem.neighbour(&self.cand, rng),
        }
    }

    fn cost(&self) -> f64 {
        self.problem.cost(&self.cand)
    }
}

/// FNV-1a fingerprint of a candidate — the memo key. Collisions map two
/// candidates to one cached cost; with a 64-bit digest over ≤32-module
/// permutations the chance is negligible against the ~10⁴ evaluations
/// of a run.
#[must_use]
pub fn candidate_fingerprint(cand: &SpCandidate) -> u64 {
    let mut hash = FNV_OFFSET;
    let mut eat = |b: u8| {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    };
    for &v in cand.gamma_pos.iter().chain(cand.gamma_neg.iter()) {
        for b in (v as u64).to_le_bytes() {
            eat(b);
        }
    }
    for &r in &cand.rotated {
        eat(u8::from(r));
    }
    hash
}

/// Derives the floorplanning instance for a named design fixture: one
/// module per functional unit (hard macros stay macros) powered at the
/// 70 % utilization operating point, a star net from the first unit
/// plus a chain in unit order. Designs larger than 32 units keep the 32
/// largest by area so the O(n²) sequence-pair placement stays
/// interactive-friendly.
///
/// # Errors
///
/// Returns a message for unknown design names.
pub fn floorplan_problem_for(
    design_name: &str,
    temperature_weight: f64,
    wirelength_budget: f64,
) -> Result<FloorplanProblem, String> {
    let design: Design = match design_name {
        "gemmini" => tsc_designs::gemmini::design(),
        "rocket" => tsc_designs::rocket::design(),
        other => return Err(format!("unknown design {other:?}")),
    };
    let utilization = Ratio::from_percent(70.0);
    let mut units: Vec<&tsc_designs::DesignUnit> = design.units.iter().collect();
    // Deterministic truncation: largest area first, name breaks ties.
    units.sort_by(|a, b| {
        b.rect
            .area()
            .square_meters()
            .total_cmp(&a.rect.area().square_meters())
            .then_with(|| a.name.cmp(&b.name))
    });
    units.truncate(32);
    let modules: Vec<Module> = units
        .iter()
        .map(|u| {
            let power = u.power(utilization, design.clock);
            if u.is_macro {
                Module::hard_macro(u.name.clone(), u.rect.width(), u.rect.height(), power)
            } else {
                Module::soft(u.name.clone(), u.rect.width(), u.rect.height(), power)
            }
        })
        .collect();
    let n = modules.len();
    let mut nets: Vec<Net> = (1..n).map(|i| Net { a: 0, b: i }).collect();
    nets.extend((1..n.saturating_sub(1)).map(|i| Net { a: i, b: i + 1 }));
    Ok(FloorplanProblem::new(
        modules,
        nets,
        Ratio::from_fraction(temperature_weight),
        Ratio::from_fraction(wirelength_budget),
    ))
}

/// One replica's move round, checked out of the engine. Runs lock-free
/// on any worker thread.
#[derive(Debug)]
pub struct FloorplanShard {
    /// Which rung this replica sits on.
    pub replica_idx: usize,
    /// The rung temperature.
    pub temperature: f64,
    /// Proposals to make.
    pub moves: usize,
    /// The checked-out replica.
    pub replica: Replica<FpState>,
    /// Shard-local memo view (barrier snapshot + private overlay).
    pub memo: EvalMemo,
}

impl FloorplanShard {
    /// Runs the move round, deduping evaluations through the memo.
    pub fn run(&mut self) {
        let Self { replica, memo, .. } = self;
        let mut eval = |s: &FpState| memo.cost_or_eval(candidate_fingerprint(&s.cand), || s.cost());
        replica.round(self.temperature, self.moves, &mut eval);
    }
}

/// The `floorplan_sa` engine state machine.
#[derive(Debug)]
pub struct FloorplanJob {
    design: String,
    schedule_label: &'static str,
    seed: u64,
    temperature_weight: f64,
    wirelength_budget: f64,
    problem: Arc<FloorplanProblem>,
    run: TemperedRun<FpState>,
    /// Per-replica "issued this round" flags; reset at the barrier.
    checked_out: Vec<bool>,
    /// Replicas returned this round.
    returned: usize,
    memo_master: HashMap<u64, u64>,
    memo_snapshot: Arc<HashMap<u64, u64>>,
    evals: u64,
    dedup_hits: u64,
    last_checkpoint: Json,
}

fn schedule_label_of(schedule: &Schedule) -> &'static str {
    if *schedule == Schedule::standard() {
        "standard"
    } else {
        "quick"
    }
}

fn placeholder_replica(problem: &Arc<FloorplanProblem>) -> Replica<FpState> {
    // Struct literal (fields are public) so no cost evaluation happens
    // for the placeholder left behind by a checkout.
    let dummy = FpState {
        problem: Arc::clone(problem),
        cand: problem.initial(),
    };
    Replica {
        rng: Rng64::seed_from_u64(0),
        current: dummy.clone(),
        current_cost: f64::INFINITY,
        best: dummy,
        best_cost: f64::INFINITY,
        proposals: 0,
        accepted: 0,
    }
}

impl FloorplanJob {
    /// Builds the engine from a parsed spec, resuming from the spec's
    /// checkpoint when present.
    ///
    /// # Errors
    ///
    /// Returns a message for unknown designs or malformed checkpoints.
    pub fn from_spec(spec: &JobSpec) -> Result<Self, String> {
        if let Some(cp) = &spec.resume {
            return Self::resume(cp);
        }
        let problem = Arc::new(floorplan_problem_for(
            &spec.design,
            spec.temperature_weight,
            spec.wirelength_budget,
        )?);
        let initial = FpState {
            problem: Arc::clone(&problem),
            cand: problem.initial(),
        };
        let run = TemperedRun::new(initial, &spec.schedule, spec.replicas, spec.seed);
        let rungs = run.replicas.len();
        let mut job = Self {
            design: spec.design.clone(),
            schedule_label: schedule_label_of(&spec.schedule),
            seed: spec.seed,
            temperature_weight: spec.temperature_weight,
            wirelength_budget: spec.wirelength_budget,
            problem,
            run,
            checked_out: vec![false; rungs],
            returned: 0,
            memo_master: HashMap::new(),
            memo_snapshot: Arc::new(HashMap::new()),
            evals: 0,
            dedup_hits: 0,
            last_checkpoint: Json::Null,
        };
        job.last_checkpoint = job.make_checkpoint();
        Ok(job)
    }

    fn resume(cp: &Json) -> Result<Self, String> {
        let design = require(cp, "design")?
            .as_str()
            .ok_or_else(|| "checkpoint field \"design\" must be a string".to_string())?
            .to_string();
        let schedule_label = require(cp, "schedule")?
            .as_str()
            .ok_or_else(|| "checkpoint field \"schedule\" must be a string".to_string())?;
        let (schedule, schedule_label) = match schedule_label {
            "standard" => (Schedule::standard(), "standard"),
            "quick" => (Schedule::quick(), "quick"),
            other => return Err(format!("checkpoint has unknown schedule {other:?}")),
        };
        let seed = parse_hex_u64(require(cp, "seed")?)?;
        let temperature_weight = parse_bits_f64(require(cp, "temperature_weight")?)?;
        let wirelength_budget = parse_bits_f64(require(cp, "wirelength_budget")?)?;
        let problem = Arc::new(floorplan_problem_for(
            &design,
            temperature_weight,
            wirelength_budget,
        )?);
        let round = require(cp, "round")?
            .as_usize()
            .ok_or_else(|| "checkpoint field \"round\" must be an integer".to_string())?;
        let swaps_accepted = require(cp, "swaps_accepted")?
            .as_usize()
            .ok_or_else(|| "checkpoint field \"swaps_accepted\" must be an integer".to_string())?
            as u64;
        let swap_rng = Rng64::from_state(parse_hex_u64(require(cp, "swap_rng")?)?);
        let replica_docs = require(cp, "replicas")?
            .as_array()
            .ok_or_else(|| "checkpoint field \"replicas\" must be an array".to_string())?;
        if replica_docs.is_empty() || replica_docs.len() > 16 {
            return Err("checkpoint must hold 1..=16 replicas".to_string());
        }
        let parse_cand = |doc: &Json| -> Result<SpCandidate, String> {
            Ok(SpCandidate {
                gamma_pos: parse_usize_array(require(doc, "gp")?)?,
                gamma_neg: parse_usize_array(require(doc, "gn")?)?,
                rotated: parse_bool_array(require(doc, "rot")?)?,
            })
        };
        let n = problem.modules().len();
        let mut replicas = Vec::with_capacity(replica_docs.len());
        for doc in replica_docs {
            let current = parse_cand(require(doc, "current")?)?;
            let best = parse_cand(require(doc, "best")?)?;
            for cand in [&current, &best] {
                if cand.gamma_pos.len() != n || cand.gamma_neg.len() != n || cand.rotated.len() != n
                {
                    return Err("checkpoint candidate does not match the design".to_string());
                }
            }
            replicas.push(Replica {
                rng: Rng64::from_state(parse_hex_u64(require(doc, "rng")?)?),
                current: FpState {
                    problem: Arc::clone(&problem),
                    cand: current,
                },
                current_cost: parse_bits_f64(require(doc, "current_cost")?)?,
                best: FpState {
                    problem: Arc::clone(&problem),
                    cand: best,
                },
                best_cost: parse_bits_f64(require(doc, "best_cost")?)?,
                proposals: require(doc, "proposals")?
                    .as_usize()
                    .ok_or_else(|| "replica \"proposals\" must be an integer".to_string())?
                    as u64,
                accepted: require(doc, "accepted")?
                    .as_usize()
                    .ok_or_else(|| "replica \"accepted\" must be an integer".to_string())?
                    as u64,
            });
        }
        let rungs = replicas.len();
        let run = TemperedRun {
            ladder: tsc_phydes::anneal::temperature_ladder(&schedule, rungs),
            moves_per_round: schedule.moves_per_round,
            rounds: tsc_phydes::anneal::schedule_rounds(&schedule),
            round,
            replicas,
            swap_rng,
            swaps_accepted,
        };
        let mut job = Self {
            design,
            schedule_label,
            seed,
            temperature_weight,
            wirelength_budget,
            problem,
            run,
            checked_out: vec![false; rungs],
            returned: 0,
            // The memo is a cache, not state: it restarts empty, and so
            // do the dedupe counters (they are the one thing allowed to
            // differ between a resumed and an uninterrupted run).
            memo_master: HashMap::new(),
            memo_snapshot: Arc::new(HashMap::new()),
            evals: 0,
            dedup_hits: 0,
            last_checkpoint: Json::Null,
        };
        job.last_checkpoint = job.make_checkpoint();
        Ok(job)
    }

    /// Checks out the next replica round, if any.
    pub fn next_work(&mut self) -> Option<FloorplanShard> {
        if self.run.is_done() {
            return None;
        }
        let idx = self.checked_out.iter().position(|&c| !c)?;
        self.checked_out[idx] = true;
        let replica = std::mem::replace(
            &mut self.run.replicas[idx],
            placeholder_replica(&self.problem),
        );
        Some(FloorplanShard {
            replica_idx: idx,
            temperature: self.run.ladder[idx],
            moves: self.run.moves_per_round,
            replica,
            memo: EvalMemo::with_snapshot(Arc::clone(&self.memo_snapshot)),
        })
    }

    /// Returns a completed shard; at the round barrier runs the swap
    /// sweep, merges memo overlays and emits a progress event.
    pub fn complete_shard(&mut self, shard: FloorplanShard) -> Vec<Json> {
        let FloorplanShard {
            replica_idx,
            replica,
            memo,
            ..
        } = shard;
        self.run.replicas[replica_idx] = replica;
        let (hits, misses) = memo.merge_into(&mut self.memo_master);
        self.dedup_hits += hits;
        self.evals += misses;
        self.returned += 1;
        if self.returned < self.run.replicas.len() {
            return Vec::new();
        }
        // Barrier: swap sweep, fresh memo snapshot, checkpoint, event.
        self.run.swap_round();
        self.memo_snapshot = Arc::new(self.memo_master.clone());
        self.checked_out.iter_mut().for_each(|c| *c = false);
        self.returned = 0;
        self.last_checkpoint = self.make_checkpoint();
        let (_, best_cost) = self.run.best();
        vec![Json::object()
            .field("event", "progress")
            .field("phase", "anneal")
            .field("round", self.run.round)
            .field("rounds", self.run.rounds)
            .field("best_cost", best_cost)
            .field("evals", self.evals as f64)
            .field("dedup_hits", self.dedup_hits as f64)
            .field("swaps_accepted", self.run.swaps_accepted as f64)]
    }

    /// `true` once every round (and its barrier) has completed.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.run.is_done()
    }

    /// Progress snapshot.
    #[must_use]
    pub fn progress(&self) -> Progress {
        let (_, best_cost) = self.run.best();
        Progress {
            phase: "anneal",
            fraction: self.run.round as f64 / self.run.rounds.max(1) as f64,
            best_cost: Some(best_cost),
            round: self.run.round,
            rounds: self.run.rounds,
            evals: self.evals,
            dedup_hits: self.dedup_hits,
        }
    }

    /// The checkpoint captured at the last round barrier.
    #[must_use]
    pub fn checkpoint(&self) -> Json {
        self.last_checkpoint.clone()
    }

    fn make_checkpoint(&self) -> Json {
        let cand_doc = |cand: &SpCandidate| {
            Json::object()
                .field("gp", usize_array(&cand.gamma_pos))
                .field("gn", usize_array(&cand.gamma_neg))
                .field("rot", bool_array(&cand.rotated))
        };
        let replicas: Vec<Json> = self
            .run
            .replicas
            .iter()
            .map(|r| {
                Json::object()
                    .field("rng", hex_u64(r.rng.state()))
                    .field("current", cand_doc(&r.current.cand))
                    .field("current_cost", bits_f64(r.current_cost))
                    .field("best", cand_doc(&r.best.cand))
                    .field("best_cost", bits_f64(r.best_cost))
                    .field("proposals", r.proposals as f64)
                    .field("accepted", r.accepted as f64)
            })
            .collect();
        Json::object()
            .field("kind", "floorplan_sa")
            .field("design", self.design.as_str())
            .field("schedule", self.schedule_label)
            .field("seed", hex_u64(self.seed))
            .field("temperature_weight", bits_f64(self.temperature_weight))
            .field("wirelength_budget", bits_f64(self.wirelength_budget))
            .field("round", self.run.round)
            .field("swaps_accepted", self.run.swaps_accepted as f64)
            .field("swap_rng", hex_u64(self.run.swap_rng.state()))
            .field("replicas", Json::Array(replicas))
    }

    /// The result document, once done.
    #[must_use]
    pub fn result(&self) -> Option<Json> {
        if !self.is_done() {
            return None;
        }
        let (best, best_cost) = self.run.best();
        let outcome = self.problem.evaluate(&best.cand);
        let (proposals, accepted) = self.run.totals();
        Some(
            Json::object()
                .field("kind", "floorplan_sa")
                .field("design", self.design.as_str())
                .field("best_cost", best_cost)
                .field("best_cost_bits", bits_f64(best_cost))
                .field("rounds", self.run.rounds)
                .field("replicas", self.run.replicas.len())
                .field("proposals", proposals as f64)
                .field("accepted", accepted as f64)
                .field("swaps_accepted", self.run.swaps_accepted as f64)
                .field("evals", self.evals as f64)
                .field("dedup_hits", self.dedup_hits as f64)
                .field("hpwl_um", outcome.wirelength.meters() * 1e6)
                .field(
                    "hotspot_w_cm2",
                    outcome.hotspot.watts_per_square_meter() / 1e4,
                )
                .field("area_um2", outcome.plan.area().square_meters() * 1e12)
                .field(
                    "best",
                    Json::object()
                        .field("gp", usize_array(&best.cand.gamma_pos))
                        .field("gn", usize_array(&best.cand.gamma_neg))
                        .field("rot", bool_array(&best.cand.rotated)),
                ),
        )
    }

    /// Total dedupe hits so far.
    #[must_use]
    pub fn dedup_hits(&self) -> u64 {
        self.dedup_hits
    }

    /// Final RNG words `(replica streams…, swap stream)` — the bitwise
    /// resume property asserts on these.
    #[must_use]
    pub fn rng_states(&self) -> Vec<u64> {
        let mut words: Vec<u64> = self.run.replicas.iter().map(|r| r.rng.state()).collect();
        words.push(self.run.swap_rng.state());
        words
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsc_bench::json::parse;

    fn spec(seed: u64) -> JobSpec {
        let body = parse(&format!(
            r#"{{"kind": "floorplan_sa", "design": "rocket", "replicas": 3, "seed": {seed}}}"#
        ))
        .expect("json");
        JobSpec::parse(&body).expect("spec")
    }

    fn drive_to_completion(job: &mut FloorplanJob) {
        while !job.is_done() {
            let mut batch = Vec::new();
            while let Some(mut shard) = job.next_work() {
                shard.run();
                batch.push(shard);
            }
            assert!(!batch.is_empty(), "engine stalled before completion");
            // Return shards out of order to prove schedule-independence.
            batch.reverse();
            for shard in batch {
                let _ = job.complete_shard(shard);
            }
        }
    }

    #[test]
    fn kill_and_resume_is_bitwise_identical() {
        let mut uninterrupted = FloorplanJob::from_spec(&spec(11)).expect("job");
        drive_to_completion(&mut uninterrupted);

        // Run a second copy, "kill" it after five barriers, and resume
        // from the serialized checkpoint (through a JSON round trip).
        let mut killed = FloorplanJob::from_spec(&spec(11)).expect("job");
        for _ in 0..5 {
            let mut batch = Vec::new();
            while let Some(mut shard) = killed.next_work() {
                shard.run();
                batch.push(shard);
            }
            for shard in batch {
                let _ = killed.complete_shard(shard);
            }
        }
        let wire = killed.checkpoint().pretty();
        let cp = parse(&wire).expect("checkpoint parses");
        let body = Json::object()
            .field("kind", "floorplan_sa")
            .field("resume", cp);
        let spec = JobSpec::parse(&body).expect("resume spec");
        let mut resumed = FloorplanJob::from_spec(&spec).expect("resumed job");
        drive_to_completion(&mut resumed);

        let a = uninterrupted.result().expect("result");
        let b = resumed.result().expect("result");
        assert_eq!(
            a.get("best_cost_bits").and_then(Json::as_str),
            b.get("best_cost_bits").and_then(Json::as_str),
            "resumed best cost must match bitwise"
        );
        assert_eq!(
            uninterrupted.rng_states(),
            resumed.rng_states(),
            "resumed RNG streams must land on identical words"
        );
    }

    #[test]
    fn dedupe_memo_catches_repeat_candidates() {
        let mut job = FloorplanJob::from_spec(&spec(3)).expect("job");
        drive_to_completion(&mut job);
        assert!(
            job.dedup_hits() > 0,
            "an SA run revisits states; the memo must catch some"
        );
    }

    #[test]
    fn unknown_design_is_rejected() {
        assert!(floorplan_problem_for("does-not-exist", 0.3, 1.2).is_err());
    }
}
