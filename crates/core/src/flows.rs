//! The two VLSI flows of Fig. 6 with penalty accounting.
//!
//! * **Scaffolding** — thermal dielectric in M8/V8/M9 plus pillar
//!   constellations in the routable area; the footprint budget buys
//!   pillar density, the delay budget caps it (ε swap, pillar coupling
//!   and wirelength growth, via the calibrated
//!   `DelayModel` in `tsc_phydes::timing`).
//! * **Vertical conduction only** — the pillars without the dielectric
//!   (the middle column of Table I): more pillars are needed for the
//!   same cooling because nothing spreads heat toward them.
//! * **Conventional 3D thermal** — thermal-aware metallization: the
//!   footprint budget becomes placement-density slack which buys dummy
//!   fill/vias (Fig. 7b), improving the lumped BEOL conductivity at the
//!   cost of coupling capacitance.
//!
//! Each flow first *spends* its budgets (shrinking the thermal knob until
//! the delay budget is respected), then runs the chip-scale FVM solve.

use crate::beol::BeolProperties;
use crate::pillars;
use crate::stack::{solve, solve_with, StackConfig, StackSolution};
use tsc_designs::Design;
use tsc_phydes::fill::FillModel;
use tsc_phydes::timing::{DelayModel, TimingImpact};
use tsc_thermal::{Heatsink, SolveContext, SolveError};
use tsc_units::{Ratio, Temperature};

/// The cooling strategies compared in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoolingStrategy {
    /// Thermal dielectric + pillars (the contribution).
    Scaffolding,
    /// Pillars only, ultra-low-k dielectric (Table I middle column).
    VerticalOnly,
    /// Thermal dummy fill / dummy vias (conventional 3D thermal).
    ConventionalDummyVias,
}

impl core::fmt::Display for CoolingStrategy {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            Self::Scaffolding => "scaffolding",
            Self::VerticalOnly => "vertical-conduction-only",
            Self::ConventionalDummyVias => "conventional 3D thermal",
        })
    }
}

/// Configuration of one flow run.
#[derive(Debug, Clone)]
pub struct FlowConfig {
    /// Cooling strategy.
    pub strategy: CoolingStrategy,
    /// Stacked tier count.
    pub tiers: usize,
    /// Attached heatsink.
    pub heatsink: Heatsink,
    /// Junction-temperature limit.
    pub t_limit: Temperature,
    /// Maximum footprint penalty the flow may spend.
    pub area_budget: Ratio,
    /// Maximum delay penalty the flow may incur.
    pub delay_budget: Ratio,
    /// Workload utilization (uniform across tiers).
    pub utilization: Ratio,
    /// Lateral mesh resolution.
    pub lateral_cells: usize,
}

impl Default for FlowConfig {
    fn default() -> Self {
        Self {
            strategy: CoolingStrategy::Scaffolding,
            tiers: 12,
            heatsink: Heatsink::two_phase(),
            t_limit: Temperature::from_celsius(125.0),
            area_budget: Ratio::from_percent(10.0),
            delay_budget: Ratio::from_percent(3.0),
            utilization: Ratio::ONE,
            lateral_cells: 16,
        }
    }
}

/// Outcome of one flow run.
#[derive(Debug, Clone)]
pub struct FlowResult {
    /// Strategy that produced this result.
    pub strategy: CoolingStrategy,
    /// Tier count simulated.
    pub tiers: usize,
    /// Junction temperature.
    pub junction_temperature: Temperature,
    /// Footprint actually spent.
    pub footprint_penalty: Ratio,
    /// Delay penalty actually incurred.
    pub delay_penalty: Ratio,
    /// Die-average pillar density (zero for the conventional flow).
    pub pillar_density: Ratio,
    /// Area slack converted to dummy fill (conventional flow only).
    pub fill_slack: Ratio,
    /// Whether the junction stayed within the configured limit.
    pub meets_limit: bool,
    /// The chip-scale solution (tier profile, energy balance).
    pub solution: StackSolution,
}

/// The timing impact a strategy produces when it spends `area` of
/// footprint.
#[must_use]
pub fn timing_impact(strategy: CoolingStrategy, area: Ratio) -> TimingImpact {
    match strategy {
        CoolingStrategy::Scaffolding => TimingImpact {
            area_penalty: area,
            upper_epsilon_ratio: 2.0,
            fill_coupling: 0.0,
            pillar_density: area,
        },
        CoolingStrategy::VerticalOnly => TimingImpact {
            area_penalty: area,
            upper_epsilon_ratio: 1.0,
            fill_coupling: 0.0,
            pillar_density: area,
        },
        CoolingStrategy::ConventionalDummyVias => TimingImpact {
            area_penalty: area,
            upper_epsilon_ratio: 1.0,
            fill_coupling: FillModel::calibrated().coupling_capacitance(area),
            pillar_density: Ratio::ZERO,
        },
    }
}

/// The largest footprint spend whose delay penalty fits `delay_budget`
/// (bisection; the delay model is monotone in area).
#[must_use]
pub fn max_area_within_delay(
    strategy: CoolingStrategy,
    area_budget: Ratio,
    delay_budget: Ratio,
) -> Ratio {
    let model = DelayModel::calibrated();
    let delay_at = |a: f64| {
        model
            .delay_penalty(&timing_impact(strategy, Ratio::from_fraction(a)))
            .fraction()
    };
    let budget = area_budget.fraction();
    if delay_at(budget) <= delay_budget.fraction() {
        return area_budget;
    }
    let (mut lo, mut hi) = (0.0_f64, budget);
    for _ in 0..40 {
        let mid = 0.5 * (lo + hi);
        if delay_at(mid) <= delay_budget.fraction() {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ratio::from_fraction(lo)
}

/// Runs one flow end-to-end.
///
/// # Errors
///
/// Propagates [`SolveError`] from the chip-scale solve.
///
/// # Panics
///
/// Panics if `config.tiers` is zero.
pub fn run_flow(design: &Design, config: &FlowConfig) -> Result<FlowResult, SolveError> {
    run_flow_inner(design, config, None)
}

/// [`run_flow`] against a caller-owned [`SolveContext`]: budget sweeps
/// at a fixed tier count ([`crate::scaling::min_area_for_tiers`]) solve
/// the same mesh repeatedly, so the context's warm starts and cached
/// multigrid hierarchy carry across flow runs.
///
/// # Errors
///
/// Propagates [`SolveError`] from the chip-scale solve.
///
/// # Panics
///
/// Panics if `config.tiers` is zero.
pub fn run_flow_with(
    design: &Design,
    config: &FlowConfig,
    ctx: &mut SolveContext,
) -> Result<FlowResult, SolveError> {
    run_flow_inner(design, config, Some(ctx))
}

fn run_flow_inner(
    design: &Design,
    config: &FlowConfig,
    ctx: Option<&mut SolveContext>,
) -> Result<FlowResult, SolveError> {
    assert!(config.tiers > 0, "need at least one tier");
    let spend = max_area_within_delay(config.strategy, config.area_budget, config.delay_budget);
    let delay = DelayModel::calibrated().delay_penalty(&timing_impact(config.strategy, spend));

    let (beol, pillar_map, fill_slack) = match config.strategy {
        CoolingStrategy::Scaffolding => (
            BeolProperties::scaffolded(),
            Some(pillars::uniform_routable_map(
                design,
                spend,
                config.lateral_cells,
            )),
            Ratio::ZERO,
        ),
        CoolingStrategy::VerticalOnly => (
            BeolProperties::conventional(),
            Some(pillars::uniform_routable_map(
                design,
                spend,
                config.lateral_cells,
            )),
            Ratio::ZERO,
        ),
        CoolingStrategy::ConventionalDummyVias => {
            (BeolProperties::with_dummy_fill(spend), None, spend)
        }
    };

    let mut stack_config = StackConfig::uniform(config.tiers, beol, config.heatsink)
        .with_lateral_cells(config.lateral_cells)
        .with_utilizations(vec![config.utilization; config.tiers])
        .with_area_dilution(spend);
    let pillar_density = match pillar_map {
        Some(map) => {
            stack_config = stack_config.with_pillar_map(map);
            stack_config.average_pillar_density()
        }
        None => Ratio::ZERO,
    };

    let solution = match ctx {
        Some(ctx) => solve_with(design, &stack_config, ctx)?,
        None => solve(design, &stack_config)?,
    };
    let tj = solution.junction_temperature();
    Ok(FlowResult {
        strategy: config.strategy,
        tiers: config.tiers,
        junction_temperature: tj,
        footprint_penalty: spend,
        delay_penalty: delay,
        pillar_density,
        fill_slack,
        meets_limit: tj <= config.t_limit,
        solution,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsc_designs::gemmini;

    fn cfg(strategy: CoolingStrategy, tiers: usize, area: f64, delay: f64) -> FlowConfig {
        FlowConfig {
            strategy,
            tiers,
            area_budget: Ratio::from_percent(area),
            delay_budget: Ratio::from_percent(delay),
            lateral_cells: 12,
            ..FlowConfig::default()
        }
    }

    #[test]
    fn scaffolding_meets_twelve_tiers_at_paper_budgets() {
        let d = gemmini::design();
        let r = run_flow(&d, &cfg(CoolingStrategy::Scaffolding, 12, 10.0, 3.0)).expect("solves");
        assert!(
            r.meets_limit,
            "scaffolded 12-tier Gemmini at 10%/3%: {}",
            r.junction_temperature
        );
        assert!(r.delay_penalty.percent() <= 3.0 + 1e-9);
        assert!(r.footprint_penalty.percent() <= 10.0 + 1e-9);
    }

    #[test]
    fn conventional_fails_twelve_tiers_at_paper_budgets() {
        let d = gemmini::design();
        let r = run_flow(
            &d,
            &cfg(CoolingStrategy::ConventionalDummyVias, 12, 10.0, 3.0),
        )
        .expect("solves");
        assert!(
            !r.meets_limit,
            "conventional must fail 12 tiers at 10%/3%: {}",
            r.junction_temperature
        );
    }

    #[test]
    fn conventional_needs_seventyeight_percent_for_twelve_tiers() {
        // Table I: conventional reaches 12 tiers only at ~78% footprint
        // and ~17% delay.
        let d = gemmini::design();
        let r = run_flow(
            &d,
            &cfg(CoolingStrategy::ConventionalDummyVias, 12, 78.0, 17.0),
        )
        .expect("solves");
        assert!(
            r.meets_limit,
            "conventional at 78%/17% should reach 12 tiers: {}",
            r.junction_temperature
        );
        assert!(
            r.delay_penalty.percent() > 10.0,
            "the spend must show up as delay: {}",
            r.delay_penalty
        );
    }

    #[test]
    fn vertical_only_needs_more_area_than_scaffolding() {
        // Table I: pillars without the dielectric need ~34% (vs 10%).
        let d = gemmini::design();
        let scaf = run_flow(&d, &cfg(CoolingStrategy::Scaffolding, 12, 10.0, 3.0)).expect("solves");
        let vert_small =
            run_flow(&d, &cfg(CoolingStrategy::VerticalOnly, 12, 10.0, 7.0)).expect("solves");
        let vert_big =
            run_flow(&d, &cfg(CoolingStrategy::VerticalOnly, 12, 34.0, 7.0)).expect("solves");
        assert!(scaf.meets_limit);
        assert!(
            !vert_small.meets_limit,
            "pillars-only at 10% must fail: {}",
            vert_small.junction_temperature
        );
        assert!(
            vert_big.meets_limit,
            "pillars-only at 34% should pass: {}",
            vert_big.junction_temperature
        );
    }

    #[test]
    fn delay_budget_caps_the_spend() {
        // With a tiny delay budget the flow cannot spend its full area
        // budget.
        let spend = max_area_within_delay(
            CoolingStrategy::ConventionalDummyVias,
            Ratio::from_percent(78.0),
            Ratio::from_percent(5.0),
        );
        assert!(
            spend.percent() < 78.0,
            "5% delay cannot afford 78% of fill slack: {spend}"
        );
        let delay = DelayModel::calibrated().delay_penalty(&timing_impact(
            CoolingStrategy::ConventionalDummyVias,
            spend,
        ));
        assert!(delay.percent() <= 5.0 + 1e-6);
    }

    #[test]
    fn generous_budget_is_not_clipped() {
        let spend = max_area_within_delay(
            CoolingStrategy::Scaffolding,
            Ratio::from_percent(10.0),
            Ratio::from_percent(50.0),
        );
        assert!((spend.percent() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn strategies_report_their_knobs() {
        let d = gemmini::design();
        let scaf = run_flow(&d, &cfg(CoolingStrategy::Scaffolding, 6, 10.0, 3.0)).expect("solves");
        assert!(scaf.pillar_density.fraction() > 0.0);
        assert_eq!(scaf.fill_slack, Ratio::ZERO);
        let conv = run_flow(
            &d,
            &cfg(CoolingStrategy::ConventionalDummyVias, 6, 30.0, 10.0),
        )
        .expect("solves");
        assert_eq!(conv.pillar_density, Ratio::ZERO);
        assert!(conv.fill_slack.fraction() > 0.0);
    }
}
