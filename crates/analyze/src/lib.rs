//! `tsc-analyze` — the workspace's in-repo static-analysis gate.
//!
//! The workspace is hermetic (no crates.io), so the usual correctness
//! tooling for `unsafe` parallel code — miri, loom, thread sanitizers —
//! is unavailable. This crate rebuilds the two checks the solver engine
//! actually needs, the same way the reproduction rebuilds gated EDA
//! components as verifiable synthetic equivalents:
//!
//! 1. **A source lint pass** ([`rules`]): a dependency-free Rust lexer
//!    ([`lexer`]) walked over every workspace `.rs` file ([`walk`]),
//!    enforcing the repo's safety and determinism policies — `SAFETY:`
//!    comments on every `unsafe` site, no `.unwrap()`/`.expect()` in
//!    numeric library code, no `static mut`, no float-literal `==`, no
//!    hash-ordered iteration feeding numeric reductions. Each rule is
//!    individually allow-listable with an explained
//!    `// tsc-analyze: allow(<rule>): <reason>` directive.
//!
//! 2. **A cross-file concurrency pass** ([`lockgraph`], fed by the
//!    per-function syntactic model in [`model`]): a static lock-order
//!    graph over every named lock field in the workspace with cycle
//!    detection (potential deadlocks reported as `lock-order`
//!    diagnostics carrying both acquisition chains), plus the
//!    `guard-across-await-free-blocking`, `no-alloc-hot` and
//!    `no-wallclock-numeric` lints. The static graph is cross-checked at
//!    runtime by `tsc-serve`'s `lock-order` feature (`RankedMutex`).
//!
//! 3. **A dynamic write-set race checker** (behind the `race-check`
//!    feature, implemented in `tsc-thermal::race` and driven by this
//!    crate's binary with `--race-check`): the engine records per-band
//!    read/write index sets in every parallel region and asserts
//!    pairwise write-disjointness plus read/foreign-write separation —
//!    a homegrown data-race detector for the red-black discipline —
//!    and a schedule-perturbation harness re-runs CG/SOR/multigrid
//!    under permuted band execution orders asserting bitwise-identical
//!    temperature fields.
//!
//! Run `cargo run -p tsc-analyze` for the lint gate, and
//! `cargo run -p tsc-analyze --features race-check -- --race-check` for
//! the dynamic checks (CI runs both).

#![forbid(unsafe_code)]

pub mod lexer;
pub mod lockgraph;
pub mod model;
pub mod rules;
pub mod walk;

#[cfg(feature = "race-check")]
pub mod dynamic;

use rules::Violation;
use std::path::{Path, PathBuf};

/// Outcome of linting a set of files.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Files scanned.
    pub files: usize,
    /// Surviving violations as `(file, violation)` pairs, file order.
    pub violations: Vec<(PathBuf, Violation)>,
}

impl LintReport {
    /// True when the gate passes.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Lints every workspace file under `root`.
///
/// # Errors
///
/// Propagates I/O errors from walking or reading the tree.
pub fn lint_workspace(root: &Path) -> std::io::Result<LintReport> {
    let mut report = LintReport::default();
    for file in walk::workspace_files(root)? {
        let src = std::fs::read_to_string(&file)?;
        let class = walk::classify(root, &file);
        report.files += 1;
        for v in rules::lint_source(&src, class) {
            report.violations.push((file.clone(), v));
        }
    }
    Ok(report)
}
