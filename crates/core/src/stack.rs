//! Assembling the `N`-tier 3D-IC thermal problem.
//!
//! Stack order (bottom = heatsink side, Fig. 1): 10 µm handle silicon,
//! then per tier — 100 nm device silicon (the heat source), 1 µm lumped
//! V0–V7 BEOL, 240 nm M8/V8/M9 upper BEOL, 100 nm ILV/bond interface.
//! Tier `t`'s device layer rests on tier `t−1`'s ILV interface, so heat
//! from upper tiers crosses every BEOL below it — the thermal ladder.
//!
//! Pillars enter as a per-cell areal-density map: each BEOL/ILV cell
//! under a pillar column gets its vertical conductivity blended toward
//! the pillar conductivity by the parallel rule (the same abstraction
//! the paper applies after COMSOL pillar characterization).

use crate::beol::{self, BeolProperties};
use tsc_designs::Design;
use tsc_geometry::Grid2;
use tsc_homogenize::pillar::PillarDesign;
use tsc_materials::{BULK_SILICON, DEVICE_SILICON_THIN};
use tsc_thermal::{
    CgSolver, Heatsink, Preconditioner, Problem, Solution, SolveContext, SolveError,
};
use tsc_units::{Length, Ratio, Temperature, ThermalConductivity};

/// Configuration of a stacked-chip thermal simulation.
#[derive(Debug, Clone)]
pub struct StackConfig {
    /// Number of stacked tiers.
    pub tiers: usize,
    /// Lumped BEOL properties (per cooling strategy).
    pub beol: BeolProperties,
    /// The attached heatsink (bottom face).
    pub heatsink: Heatsink,
    /// Per-tier utilization; uniform workloads replicate one value.
    pub utilization: Vec<Ratio>,
    /// Lateral mesh resolution (cells per die edge).
    pub lateral_cells: usize,
    /// Pillar areal-density map over the die (fraction of each cell's
    /// footprint occupied by pillar copper); `None` = no pillars.
    pub pillar_map: Option<Grid2<f64>>,
    /// Effective vertical conductivity of the pillar columns.
    pub pillar_k: ThermalConductivity,
    /// Multiplier applied to every power map — the flux dilution caused
    /// by spreading the same design over a grown (1 + area penalty)
    /// footprint.
    pub power_scale: f64,
    /// Optional second heatsink on the *top* face (double-sided
    /// cooling — a future-work configuration the FVM supports natively).
    pub top_heatsink: Option<Heatsink>,
    /// Pitch of the pillar constellations. Pillars are not smeared
    /// uniformly through the routed area: they cluster along PDN
    /// stripes/unit boundaries (Fig. 8a), so heat must first converge
    /// laterally — through the upper dielectric — to reach a cluster.
    /// This pitch sets how much that *gathering* resistance derates the
    /// pillar blend (see [`pillar_efficiency`]).
    pub pillar_pitch: Length,
}

impl StackConfig {
    /// A uniform-utilization configuration.
    ///
    /// # Panics
    ///
    /// Panics if `tiers` is zero.
    #[must_use]
    pub fn uniform(tiers: usize, beol: BeolProperties, heatsink: Heatsink) -> Self {
        assert!(tiers > 0, "need at least one tier");
        Self {
            tiers,
            beol,
            heatsink,
            utilization: vec![Ratio::ONE; tiers],
            lateral_cells: 24,
            pillar_map: None,
            pillar_k: PillarDesign::asap7_100nm().effective_vertical_k(),
            power_scale: 1.0,
            top_heatsink: None,
            pillar_pitch: Length::from_micrometers(5.0),
        }
    }

    /// Builder: attaches a second heatsink to the top of the stack.
    #[must_use]
    pub fn with_top_heatsink(mut self, hs: Heatsink) -> Self {
        self.top_heatsink = Some(hs);
        self
    }

    /// Builder: dilutes the power maps by `1/(1 + area_penalty)` —
    /// a grown footprint spreads the same watts thinner.
    ///
    /// # Panics
    ///
    /// Panics if `area_penalty` is negative.
    #[must_use]
    pub fn with_area_dilution(mut self, area_penalty: Ratio) -> Self {
        assert!(
            area_penalty.fraction() >= 0.0,
            "area penalty cannot be negative"
        );
        self.power_scale = 1.0 / (1.0 + area_penalty.fraction());
        self
    }

    /// Builder: sets the lateral mesh resolution.
    ///
    /// # Panics
    ///
    /// Panics if `cells` is zero.
    #[must_use]
    pub fn with_lateral_cells(mut self, cells: usize) -> Self {
        assert!(cells > 0, "resolution must be positive");
        self.lateral_cells = cells;
        self
    }

    /// Builder: installs a pillar density map.
    #[must_use]
    pub fn with_pillar_map(mut self, map: Grid2<f64>) -> Self {
        self.pillar_map = Some(map);
        self
    }

    /// Builder: per-tier utilizations (length must equal `tiers`).
    ///
    /// # Panics
    ///
    /// Panics if the length mismatches.
    #[must_use]
    pub fn with_utilizations(mut self, utils: Vec<Ratio>) -> Self {
        assert_eq!(utils.len(), self.tiers, "one utilization per tier");
        self.utilization = utils;
        self
    }

    /// Die-average pillar density (zero without a map).
    #[must_use]
    pub fn average_pillar_density(&self) -> Ratio {
        match &self.pillar_map {
            None => Ratio::ZERO,
            Some(m) => Ratio::from_fraction(m.mean()),
        }
    }
}

/// Gathering efficiency of a pillar constellation at areal density `f`
/// and pitch `pitch`: the fraction of the ideal (parallel-rule) pillar
/// conductance that survives once heat must converge laterally to the
/// cluster through the sheet formed by the upper dielectric, the device
/// film and the bond layer.
///
/// `η = R_column / (R_column + R_gather)` with
/// `R_column = L / (k_p · a²)` (the cluster column, side `a = √f·pitch`)
/// and `R_gather = ln(pitch/a) / (2π · Σ k_lat·t)` (radial convergence).
///
/// Sparse constellations are column-limited (`η → 1`); dense ones over a
/// poor lateral dielectric are gathering-limited — the reason pillars
/// without the thermal dielectric need ~3× the footprint (Table I).
///
/// # Panics
///
/// Panics if `f` is outside `(0, 1]` or geometry is non-positive.
#[must_use]
pub fn pillar_efficiency(
    f: f64,
    pitch: Length,
    pillar_k: ThermalConductivity,
    beol: &BeolProperties,
) -> f64 {
    assert!(f > 0.0 && f <= 1.0, "density must be in (0, 1], got {f}");
    assert!(pitch.meters() > 0.0, "pitch must be positive");
    let a = f.sqrt() * pitch.meters();
    let l_tier =
        (beol::lower_thickness() + beol::upper_thickness() + beol::ilv_thickness()).meters();
    let r_column = l_tier / (pillar_k.get() * a * a);
    // Lateral gathering sheet: upper dielectric + 100 nm device film +
    // bond layer.
    let k_sheet = beol.upper.lateral.get() * beol::upper_thickness().meters()
        + 65.0 * 100.0e-9
        + beol.ilv.lateral.get() * beol::ilv_thickness().meters();
    let r_gather = (1.0 / f.sqrt()).ln().max(0.05) / (2.0 * core::f64::consts::PI * k_sheet);
    r_column / (r_column + r_gather)
}

/// Index bookkeeping of the built mesh.
#[derive(Debug, Clone)]
pub struct StackLayout {
    /// Mesh z-index of each tier's device layer.
    pub device_layers: Vec<usize>,
    /// Mesh z-indices of every BEOL/ILV layer (pillar-bearing).
    pub beol_layers: Vec<usize>,
}

/// A built (and optionally solved) stack.
#[derive(Debug, Clone)]
pub struct Stack3d {
    /// The finite-volume problem.
    pub problem: Problem,
    /// Mesh bookkeeping.
    pub layout: StackLayout,
}

/// Builds the finite-volume problem for `design` stacked per `config`
/// (homogeneous tiers — the paper's `N` copies of one design).
///
/// # Panics
///
/// Panics on inconsistent configuration (zero tiers, mismatched
/// utilization length).
#[must_use]
pub fn build(design: &Design, config: &StackConfig) -> Stack3d {
    let designs = vec![design; config.tiers.max(1)];
    build_hetero(&designs, config)
}

/// Builds a *heterogeneous* stack: one design per tier, bottom first —
/// the Fig. 1 picture of logic tiers interleaved with silicon-memory
/// tiers, and the setting of the Observation-4c misalignment concern.
///
/// All designs must share the die footprint (iso-footprint stacking).
///
/// # Panics
///
/// Panics if `designs.len() != config.tiers`, the utilization length
/// mismatches, or the dies differ.
#[must_use]
pub fn build_hetero(designs: &[&Design], config: &StackConfig) -> Stack3d {
    assert!(config.tiers > 0, "need at least one tier");
    assert_eq!(designs.len(), config.tiers, "one design per tier");
    assert_eq!(
        config.utilization.len(),
        config.tiers,
        "one utilization per tier"
    );
    let design = designs[0];
    for d in designs {
        assert_eq!(
            d.die, design.die,
            "heterogeneous tiers must share the die footprint"
        );
    }
    let n = config.lateral_cells;
    let die_w = design.die.width();
    let die_h = design.die.height();

    // Slab list, bottom to top.
    let mut dz: Vec<Length> = vec![Length::from_micrometers(10.0)];
    let mut device_layers = Vec::new();
    let mut beol_layers = Vec::new();
    for _ in 0..config.tiers {
        let base = dz.len();
        dz.push(Length::from_nanometers(100.0)); // device Si
        dz.push(beol::lower_thickness());
        dz.push(beol::upper_thickness());
        dz.push(beol::ilv_thickness());
        device_layers.push(base);
        beol_layers.extend([base + 1, base + 2, base + 3]);
    }

    let mut p = Problem::new(
        n,
        n,
        die_w / n as f64,
        die_h / n as f64,
        dz,
        ThermalConductivity::new(1.0),
    );
    // Handle silicon.
    p.set_layer_conductivity(
        0,
        BULK_SILICON.conductivity.vertical,
        BULK_SILICON.conductivity.lateral,
    );
    // Per-tier slabs.
    for (t, &dev_k) in device_layers.iter().enumerate() {
        p.set_layer_conductivity(
            dev_k,
            DEVICE_SILICON_THIN.conductivity.vertical,
            DEVICE_SILICON_THIN.conductivity.lateral,
        );
        p.set_layer_conductivity(
            dev_k + 1,
            config.beol.lower.vertical,
            config.beol.lower.lateral,
        );
        p.set_layer_conductivity(
            dev_k + 2,
            config.beol.upper.vertical,
            config.beol.upper.lateral,
        );
        p.set_layer_conductivity(dev_k + 3, config.beol.ilv.vertical, config.beol.ilv.lateral);
        // Power map of this tier (diluted when the footprint grew).
        let map = designs[t]
            .power_map(n, n, config.utilization[t])
            .map(|&f| f * config.power_scale);
        p.add_flux_map(dev_k, &map);
    }
    // Pillars: vertical-inclusion blend in every BEOL/ILV cell.
    if let Some(map) = &config.pillar_map {
        let resampled;
        let map = if map.nx() == n && map.ny() == n {
            map
        } else {
            resampled = map.resampled(n, n);
            &resampled
        };
        for &k in &beol_layers {
            for j in 0..n {
                for i in 0..n {
                    let f = map[(i, j)].clamp(0.0, 1.0);
                    if f > 0.0 {
                        let eta = pillar_efficiency(
                            f,
                            config.pillar_pitch,
                            config.pillar_k,
                            &config.beol,
                        );
                        p.blend_vertical_inclusion(i, j, k, f * eta, config.pillar_k);
                    }
                }
            }
        }
    }
    p.set_bottom_heatsink(config.heatsink);
    if let Some(top) = config.top_heatsink {
        p.set_top_heatsink(top);
    }
    Stack3d {
        problem: p,
        layout: StackLayout {
            device_layers,
            beol_layers,
        },
    }
}

/// Repaints a built stack's power maps in place for a *power-only*
/// reconfiguration — same design, tier count, lateral resolution,
/// BEOL/pillar/heatsink geometry, different per-tier `utilization` /
/// `power_scale`.  This is the batch-endpoint fast path: the operator
/// identity (geometry, conductivity, sinks) is untouched, so re-solving
/// the repowered problem through a pooled `SolveContext` is a warm
/// power-delta solve instead of a rebuild plus cold solve.
///
/// The caller is responsible for the "same geometry" contract beyond
/// what is asserted here (tier count and mesh footprint are checked;
/// conductivity knobs are not re-derived).
///
/// # Panics
///
/// Panics if `config.tiers`/`config.utilization` disagree with the
/// stack's layout or the mesh resolution differs.
pub fn repower(stack: &mut Stack3d, design: &Design, config: &StackConfig) {
    repower_hetero(stack, &vec![design; config.tiers.max(1)], config);
}

/// Heterogeneous-stack twin of [`repower`]: one design per tier.
///
/// # Panics
///
/// See [`repower`].
pub fn repower_hetero(stack: &mut Stack3d, designs: &[&Design], config: &StackConfig) {
    assert_eq!(
        stack.layout.device_layers.len(),
        config.tiers,
        "repower must keep the tier count"
    );
    assert_eq!(designs.len(), config.tiers, "one design per tier");
    assert_eq!(
        config.utilization.len(),
        config.tiers,
        "one utilization per tier"
    );
    let n = config.lateral_cells;
    let dim = stack.problem.dim();
    assert!(
        dim.nx == n && dim.ny == n,
        "repower must keep the lateral resolution ({n} vs {}x{})",
        dim.nx,
        dim.ny
    );
    stack.problem.clear_power();
    for (t, &dev_k) in stack.layout.device_layers.iter().enumerate() {
        let map = designs[t]
            .power_map(n, n, config.utilization[t])
            .map(|&f| f * config.power_scale);
        stack.problem.add_flux_map(dev_k, &map);
    }
}

/// A solved stack with junction bookkeeping.
#[derive(Debug, Clone)]
pub struct StackSolution {
    /// The raw solver output.
    pub solution: Solution,
    /// Mesh bookkeeping.
    pub layout: StackLayout,
}

impl StackSolution {
    /// Junction temperature: the hottest device-layer cell.
    #[must_use]
    pub fn junction_temperature(&self) -> Temperature {
        self.layout
            .device_layers
            .iter()
            .map(|&k| self.solution.temperatures.layer_max(k))
            .fold(Temperature::ABSOLUTE_ZERO, Temperature::max)
    }

    /// Peak temperature of one tier's device layer.
    ///
    /// # Panics
    ///
    /// Panics if `tier` is out of range.
    #[must_use]
    pub fn tier_max(&self, tier: usize) -> Temperature {
        self.solution
            .temperatures
            .layer_max(self.layout.device_layers[tier])
    }

    /// Per-tier peak temperatures, bottom to top.
    #[must_use]
    pub fn tier_profile(&self) -> Vec<Temperature> {
        (0..self.layout.device_layers.len())
            .map(|t| self.tier_max(t))
            .collect()
    }
}

/// Builds and solves in one step.
///
/// # Errors
///
/// Propagates [`SolveError`] from the finite-volume solve.
pub fn solve(design: &Design, config: &StackConfig) -> Result<StackSolution, SolveError> {
    let stack = build(design, config);
    let solution = CgSolver::new().with_tolerance(1e-8).solve(&stack.problem)?;
    Ok(StackSolution {
        solution,
        layout: stack.layout,
    })
}

/// The solver configuration the cached hot loops use: multigrid-
/// preconditioned CG at the same tolerance as [`solve`].
#[must_use]
pub fn hot_loop_solver() -> CgSolver {
    CgSolver::new()
        .with_tolerance(1e-8)
        .with_preconditioner(Preconditioner::Multigrid)
}

/// Builds and solves through a [`SolveContext`]: repeated solves over
/// the same mesh geometry (density bisection, placement escalation,
/// codesign sweeps) reuse the assembled operator and multigrid
/// hierarchy, and warm-start from the previous temperature field.
///
/// # Errors
///
/// Propagates [`SolveError`] from the finite-volume solve.
pub fn solve_with(
    design: &Design,
    config: &StackConfig,
    ctx: &mut SolveContext,
) -> Result<StackSolution, SolveError> {
    let stack = build(design, config);
    let solution = ctx.solve(&stack.problem, &hot_loop_solver())?;
    Ok(StackSolution {
        solution,
        layout: stack.layout,
    })
}

/// Builds and solves a heterogeneous stack in one step.
///
/// # Errors
///
/// Propagates [`SolveError`] from the finite-volume solve.
pub fn solve_hetero(
    designs: &[&Design],
    config: &StackConfig,
) -> Result<StackSolution, SolveError> {
    let stack = build_hetero(designs, config);
    let solution = CgSolver::new().with_tolerance(1e-8).solve(&stack.problem)?;
    Ok(StackSolution {
        solution,
        layout: stack.layout,
    })
}

/// The compact ladder twin of a stack configuration: per-tier average
/// flux and pillar-blended tier resistance. Fast enough for penalty
/// sweeps; the FVM path is authoritative for hotspots.
#[must_use]
pub fn compact_ladder(design: &Design, config: &StackConfig) -> tsc_thermal::network::Ladder {
    use tsc_thermal::network::{Ladder, TierRung};
    let f_raw = config.average_pillar_density().fraction();
    let f_pillar = if f_raw > 0.0 {
        f_raw * pillar_efficiency(f_raw, config.pillar_pitch, config.pillar_k, &config.beol)
    } else {
        0.0
    };
    let blend = |k: ThermalConductivity| {
        ThermalConductivity::new((1.0 - f_pillar) * k.get() + f_pillar * config.pillar_k.get())
    };
    let r = blend(config.beol.lower.vertical).slab_resistance(beol::lower_thickness())
        + blend(config.beol.upper.vertical).slab_resistance(beol::upper_thickness())
        + blend(config.beol.ilv.vertical).slab_resistance(beol::ilv_thickness());
    let rungs: Vec<TierRung> = config
        .utilization
        .iter()
        .map(|&u| TierRung::new(design.average_flux(u) * config.power_scale, r))
        .collect();
    Ladder::new(config.heatsink, rungs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsc_designs::gemmini;

    fn quick(tiers: usize, beol: BeolProperties) -> StackConfig {
        StackConfig::uniform(tiers, beol, Heatsink::two_phase()).with_lateral_cells(12)
    }

    #[test]
    fn mesh_bookkeeping() {
        let d = gemmini::design();
        let s = build(&d, &quick(3, BeolProperties::conventional()));
        assert_eq!(s.layout.device_layers, vec![1, 5, 9]);
        assert_eq!(s.layout.beol_layers.len(), 9);
        assert_eq!(s.problem.dim().nz, 13);
    }

    #[test]
    fn single_tier_is_cool() {
        let d = gemmini::design();
        let sol = solve(&d, &quick(1, BeolProperties::conventional())).expect("solves");
        let tj = sol.junction_temperature();
        assert!(
            tj.celsius() > 100.0 && tj.celsius() < 106.0,
            "one tier on two-phase cooling: {tj}"
        );
    }

    #[test]
    fn upper_tiers_run_hotter() {
        let d = gemmini::design();
        let sol = solve(&d, &quick(4, BeolProperties::conventional())).expect("solves");
        let profile = sol.tier_profile();
        for w in profile.windows(2) {
            assert!(w[1] > w[0], "tier temperatures must ascend: {profile:?}");
        }
    }

    #[test]
    fn conventional_three_tiers_near_limit() {
        // The paper's anchor: conventional 3D thermal supports ~3 Gemmini
        // tiers below 125 °C and fails well before 6.
        let d = gemmini::design();
        let t3 = solve(&d, &quick(3, BeolProperties::conventional()))
            .expect("3 tiers")
            .junction_temperature();
        let t6 = solve(&d, &quick(6, BeolProperties::conventional()))
            .expect("6 tiers")
            .junction_temperature();
        assert!(t3.celsius() < 130.0, "3 tiers: {t3}");
        assert!(t6.celsius() > 125.0, "6 tiers must bust the limit: {t6}");
    }

    #[test]
    fn pillars_plus_dielectric_enable_twelve_tiers() {
        // The headline: scaffolding (thermal dielectric + ~10% pillars)
        // holds 12 tiers under 125 °C.
        let d = gemmini::design();
        let n = 12;
        let pillar_map = Grid2::filled(12, 12, 0.10);
        let cfg = quick(n, BeolProperties::scaffolded()).with_pillar_map(pillar_map);
        let tj = solve(&d, &cfg).expect("solves").junction_temperature();
        assert!(tj.celsius() < 125.0, "scaffolded 12-tier Gemmini: {tj}");
        // And conventional at 12 tiers is catastrophic (paper: >353 °C).
        let conv = solve(&d, &quick(n, BeolProperties::conventional()))
            .expect("solves")
            .junction_temperature();
        // Paper reports >353 °C; our slightly less resistive lower BEOL
        // (0.41 vs 0.31 W/m/K) lands ~270 °C — equally catastrophic.
        assert!(conv.celsius() > 250.0, "conventional 12 tiers: {conv}");
    }

    #[test]
    fn compact_ladder_tracks_fvm_within_hotspot_factor() {
        let d = gemmini::design();
        let cfg = quick(3, BeolProperties::conventional());
        let fvm = solve(&d, &cfg).expect("solves").junction_temperature();
        let ladder = compact_ladder(&d, &cfg).junction_temperature();
        // The ladder uses die-average flux, so it under-predicts the
        // hotspot; the ratio of rises stays within ~2.5x.
        let amb = Heatsink::two_phase().ambient;
        let ratio = (fvm - amb).kelvin() / (ladder - amb).kelvin();
        assert!(
            (1.0..2.5).contains(&ratio),
            "hotspot factor {ratio} (fvm {fvm}, ladder {ladder})"
        );
    }

    #[test]
    fn interleaved_memory_tiers_run_cooler() {
        // The Fig. 1 picture: logic tiers interleaved with cool SRAM
        // tiers beat an all-logic stack of the same height.
        let logic = gemmini::design();
        let memory = gemmini::memory_tier();
        let cfg = quick(8, BeolProperties::scaffolded())
            .with_pillar_map(tsc_geometry::Grid2::filled(12, 12, 0.08));
        let all_logic: Vec<&tsc_designs::Design> = vec![&logic; 8];
        let interleaved: Vec<&tsc_designs::Design> = (0..8)
            .map(|t| if t % 2 == 0 { &logic } else { &memory })
            .collect();
        let t_all = solve_hetero(&all_logic, &cfg)
            .expect("solves")
            .junction_temperature();
        let t_mix = solve_hetero(&interleaved, &cfg)
            .expect("solves")
            .junction_temperature();
        assert!(
            t_mix.kelvin() + 1.0 < t_all.kelvin(),
            "interleaving memory must cool: {t_all} -> {t_mix}"
        );
    }

    #[test]
    #[should_panic(expected = "share the die footprint")]
    fn hetero_requires_matching_dies() {
        let logic = gemmini::design();
        let rocket = tsc_designs::rocket::design();
        let cfg = quick(2, BeolProperties::scaffolded());
        let _ = build_hetero(&[&logic, &rocket], &cfg);
    }

    #[test]
    fn double_sided_cooling_helps() {
        let d = gemmini::design();
        let single = quick(8, BeolProperties::scaffolded());
        let double =
            quick(8, BeolProperties::scaffolded()).with_top_heatsink(Heatsink::microfluidic());
        let t1 = solve(&d, &single).expect("single").junction_temperature();
        let t2 = solve(&d, &double).expect("double").junction_temperature();
        assert!(
            t2.kelvin() + 1.0 < t1.kelvin(),
            "a top sink must cool the stack: {t1} -> {t2}"
        );
    }

    #[test]
    fn gated_tiers_dissipate_nothing() {
        let d = gemmini::design();
        let cfg = quick(2, BeolProperties::conventional())
            .with_utilizations(vec![Ratio::ONE, Ratio::ZERO]);
        let stack = build(&d, &cfg);
        // Tier 1 device layer only leaks (SRAM leakage floor), so its
        // injected power is well below tier 0's.
        let p0: f64 = {
            let k = stack.layout.device_layers[0];
            (0..12)
                .flat_map(|j| (0..12).map(move |i| (i, j)))
                .map(|(i, j)| stack.problem.cell_power(i, j, k).watts())
                .sum()
        };
        let p1: f64 = {
            let k = stack.layout.device_layers[1];
            (0..12)
                .flat_map(|j| (0..12).map(move |i| (i, j)))
                .map(|(i, j)| stack.problem.cell_power(i, j, k).watts())
                .sum()
        };
        assert!(p1 < 0.25 * p0, "gated tier leaks only: {p1} vs {p0}");
    }

    #[test]
    fn repower_matches_a_fresh_build() {
        let d = gemmini::design();
        let base = quick(3, BeolProperties::scaffolded())
            .with_pillar_map(Grid2::filled(12, 12, 0.08))
            .with_utilizations(vec![Ratio::ONE; 3]);
        let target = {
            let mut cfg = base.clone();
            cfg.utilization = vec![
                Ratio::from_fraction(0.25),
                Ratio::ONE,
                Ratio::from_fraction(0.5),
            ];
            cfg.power_scale = 0.8;
            cfg
        };
        let mut repowered = build(&d, &base);
        repower(&mut repowered, &d, &target);
        let fresh = build(&d, &target);
        let dim = fresh.problem.dim();
        assert!(
            (repowered.problem.total_power().watts() - fresh.problem.total_power().watts()).abs()
                < 1e-12
        );
        for k in 0..dim.nz {
            for j in 0..dim.ny {
                for i in 0..dim.nx {
                    let a = repowered.problem.cell_power(i, j, k).watts();
                    let b = fresh.problem.cell_power(i, j, k).watts();
                    assert!((a - b).abs() < 1e-15, "cell ({i},{j},{k}): {a} vs {b}");
                }
            }
        }
        // The operator identity must survive the repaint — that is the
        // whole point of the fast path.
        assert_eq!(
            tsc_thermal::operator_fingerprint(&repowered.problem),
            tsc_thermal::operator_fingerprint(&fresh.problem)
        );
    }

    #[test]
    #[should_panic(expected = "keep the tier count")]
    fn repower_rejects_tier_count_changes() {
        let d = gemmini::design();
        let mut stack = build(&d, &quick(3, BeolProperties::conventional()));
        repower(&mut stack, &d, &quick(2, BeolProperties::conventional()));
    }

    #[test]
    #[should_panic(expected = "one utilization per tier")]
    fn mismatched_utilizations_rejected() {
        let d = gemmini::design();
        let cfg = quick(3, BeolProperties::conventional()).with_utilizations(vec![Ratio::ONE; 2]);
        let _ = build(&d, &cfg);
    }
}
