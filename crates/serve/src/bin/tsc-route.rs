//! The `tsc-route` binary: a consistent-hash shard router in front of
//! N `tsc-serve` backends.
//!
//! Two modes:
//!
//! * `--shards N` spawns N `tsc-serve` children on ephemeral ports (the
//!   `tsc-serve` binary is found next to this one, or via
//!   `TSC_SERVE_BIN`) and fronts them;
//! * `--backends host:port,host:port` fronts externally managed
//!   backends.
//!
//! A client `POST /v1/shutdown` propagates to every backend and drains
//! the router.

#![forbid(unsafe_code)]

use std::process::ExitCode;
use std::time::Duration;

use tsc_serve::router::{Affinity, Router, RouterConfig};
use tsc_serve::shard::{ShardProcess, ShardSpec};

const USAGE: &str = "usage: tsc-route [--port N] (--shards N | --backends a:p,a:p) \
                     [--replicas N] [--retry-budget N] [--probe-interval-ms N] \
                     [--affinity hash|random] [--shard-workers N] \
                     [--shard-queue-cap N] [--shard-pool-cap N]";

struct Options {
    config: RouterConfig,
    shards: usize,
    spec: ShardSpec,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut options = Options {
        config: RouterConfig {
            port: 7071,
            ..RouterConfig::default()
        },
        shards: 0,
        spec: ShardSpec::default(),
    };
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut text = |name: &str| -> Result<&String, String> {
            iter.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--port" => {
                options.config.port = text("--port")?
                    .parse()
                    .map_err(|_| "--port requires a port number".to_string())?;
            }
            "--shards" => {
                options.shards = text("--shards")?
                    .parse::<usize>()
                    .map_err(|_| "--shards requires a count".to_string())?
                    .clamp(1, 64);
            }
            "--backends" => {
                options.config.backends = text("--backends")?
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
            }
            "--replicas" => {
                options.config.replicas = text("--replicas")?
                    .parse::<usize>()
                    .map_err(|_| "--replicas requires a count".to_string())?
                    .clamp(1, 1024);
            }
            "--retry-budget" => {
                options.config.retry_budget = text("--retry-budget")?
                    .parse::<usize>()
                    .map_err(|_| "--retry-budget requires a count".to_string())?
                    .clamp(1, 16);
            }
            "--probe-interval-ms" => {
                let ms = text("--probe-interval-ms")?
                    .parse::<u64>()
                    .map_err(|_| "--probe-interval-ms requires milliseconds".to_string())?;
                options.config.probe_interval = Duration::from_millis(ms.clamp(20, 60_000));
            }
            "--affinity" => {
                options.config.affinity = Affinity::parse(text("--affinity")?)?;
            }
            "--shard-workers" => {
                options.spec.workers = text("--shard-workers")?
                    .parse::<usize>()
                    .map_err(|_| "--shard-workers requires a count".to_string())?
                    .clamp(1, 64);
            }
            "--shard-queue-cap" => {
                options.spec.queue_cap = text("--shard-queue-cap")?
                    .parse::<usize>()
                    .map_err(|_| "--shard-queue-cap requires a count".to_string())?
                    .clamp(1, 4096);
            }
            "--shard-pool-cap" => {
                options.spec.pool_cap = text("--shard-pool-cap")?
                    .parse::<usize>()
                    .map_err(|_| "--shard-pool-cap requires a count".to_string())?
                    .min(256);
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    if options.shards == 0 && options.config.backends.is_empty() {
        return Err(format!("need --shards or --backends\n{USAGE}"));
    }
    if options.shards > 0 && !options.config.backends.is_empty() {
        return Err("--shards and --backends are mutually exclusive".to_string());
    }
    Ok(options)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut options = match parse_args(&args) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };

    // Spawn-my-own-shards mode: children die with this process (kill on
    // drop) unless a graceful shutdown already drained them.
    let mut children: Vec<ShardProcess> = Vec::new();
    for i in 0..options.shards {
        match ShardProcess::spawn(&options.spec) {
            Ok(shard) => {
                println!("tsc-route: shard {i} at {}", shard.addr());
                options.config.backends.push(shard.addr().to_string());
                children.push(shard);
            }
            Err(err) => {
                eprintln!("tsc-route: failed to spawn shard {i}: {err}");
                return ExitCode::FAILURE;
            }
        }
    }

    let router = match Router::start(options.config) {
        Ok(router) => router,
        Err(err) => {
            eprintln!("tsc-route: start failed: {err}");
            return ExitCode::FAILURE;
        }
    };
    // The load generator and the CI smoke test parse this exact line to
    // discover the ephemeral port — keep the format stable.
    println!("tsc-route listening on {}", router.addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    router.wait_for_shutdown_request();
    router.shutdown();
    // Shutdown was already propagated to the backends; give them a
    // moment to drain, then make sure nothing lingers.
    std::thread::sleep(Duration::from_millis(200));
    for child in &mut children {
        child.kill();
    }
    println!("tsc-route: drained and stopped");
    ExitCode::SUCCESS
}
