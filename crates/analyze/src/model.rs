//! A per-file syntactic model for the cross-file concurrency passes.
//!
//! The lexer gives a token stream; this module raises it to the level the
//! lock-order graph and the hot-path lints need, without becoming a Rust
//! parser:
//!
//! * **lock fields** — struct fields (and non-test `static` items) whose
//!   type mentions `Mutex`/`RankedMutex`, named `Struct.field`;
//! * **fn items** — name plus body token extent, brace-matched;
//! * **acquisition sites** — `recv.lock()` and `lock_or_recover(&….field)`
//!   calls, each with the field name as written, the bound guard name (if
//!   `let`-bound), and a conservative guard-scope extent: to the end of
//!   the enclosing block (or an explicit `drop(guard)`), or to the end of
//!   the statement for an unbound temporary;
//! * **call sites**, **condvar-wait sites**, **blocking-I/O sites**, and
//!   **hot parallel-region extents** (closures passed to the `ExecPlan`
//!   `map*_mut`/`for_each_shared` family or `spawn`, plus the bodies of
//!   smoother/matvec-named functions).
//!
//! Everything here is an approximation with a stated bias: guard scopes
//! are over-approximated (a guard is assumed live to the end of its
//! block), while name resolution is under-approximated (an acquisition
//! whose receiver does not name a known lock field is dropped rather than
//! guessed). The graph pass documents the consequences.

use crate::lexer::{Lexed, Token, TokenKind};

/// A struct field (or static item) of `Mutex`/`RankedMutex` type.
#[derive(Debug, Clone)]
pub struct LockField {
    /// Declaring struct, or `""` for a `static` item.
    pub owner: String,
    pub field: String,
    /// 1-based declaration line.
    pub line: usize,
}

impl LockField {
    /// The display/graph-node name: `Struct.field`, or the bare static
    /// name.
    #[must_use]
    pub fn qualified(&self) -> String {
        if self.owner.is_empty() {
            self.field.clone()
        } else {
            format!("{}.{}", self.owner, self.field)
        }
    }
}

/// One `fn` item with a body.
#[derive(Debug, Clone)]
pub struct FnItem {
    pub name: String,
    pub line: usize,
    /// Token index of the body's `{`.
    pub body_start: usize,
    /// Token index of the matching `}`.
    pub body_end: usize,
}

/// One lock-acquisition site.
#[derive(Debug, Clone)]
pub struct Acquisition {
    /// Token index of the `lock` / `lock_or_recover` identifier.
    pub token: usize,
    pub line: usize,
    /// The field name as written at the site (resolution to a
    /// [`LockField`] happens in the workspace pass).
    pub field: String,
    /// Guard binding name when `let`-bound to a single identifier.
    pub guard: Option<String>,
    /// Exclusive token index where the guard is last considered live.
    pub scope_end: usize,
}

/// One call site `name(` inside some fn body.
#[derive(Debug, Clone)]
pub struct CallSite {
    pub token: usize,
    pub line: usize,
    pub callee: String,
}

/// One `.wait(…)` / `.wait_timeout(…)` / `.wait_while(…)` site.
#[derive(Debug, Clone)]
pub struct WaitSite {
    pub token: usize,
    pub line: usize,
    /// Identifiers that legitimately participate in the wait: the
    /// receiver chain plus every identifier inside the argument list.
    /// A live guard named by none of these is held *across* the wait.
    pub involved: Vec<String>,
}

/// One blocking-I/O site (TCP connect/read/write/flush or an HTTP client
/// round trip).
#[derive(Debug, Clone)]
pub struct IoSite {
    pub token: usize,
    pub line: usize,
    pub what: String,
}

/// A hot-region token extent: a closure argument list passed to a
/// parallel-region method, or the body of a smoother/matvec-named fn.
#[derive(Debug, Clone)]
pub struct HotRegion {
    pub start: usize,
    pub end: usize,
    /// What made it hot (for diagnostics): the region method or fn name.
    pub via: String,
}

/// The per-file model.
#[derive(Debug, Default)]
pub struct FileModel {
    pub lock_fields: Vec<LockField>,
    pub fns: Vec<FnItem>,
    pub acquisitions: Vec<Acquisition>,
    pub calls: Vec<CallSite>,
    pub waits: Vec<WaitSite>,
    pub io_sites: Vec<IoSite>,
    pub hot_regions: Vec<HotRegion>,
}

/// Parallel-region methods whose closure argument is a hot region.
const HOT_REGION_METHODS: &[&str] = &[
    "map_mut",
    "map2_mut",
    "map3_mut",
    "for_each_shared",
    "spawn",
];

/// Condvar blocking methods.
const WAIT_METHODS: &[&str] = &["wait", "wait_timeout", "wait_while"];

/// Blocking-I/O method names (TcpStream / HttpClient surface).
const IO_METHODS: &[&str] = &[
    "write_all",
    "read",
    "read_exact",
    "read_to_end",
    "flush",
    "connect",
    "request",
];

/// Keywords that look like calls (`if (…)` never lexes that way in Rust,
/// but `matches!`-style macro args and `return (x)` do).
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "fn", "let", "move", "in", "as",
];

/// Builds the model for one lexed file.
#[must_use]
pub fn build(lexed: &Lexed) -> FileModel {
    let tokens = &lexed.tokens;
    let brace = depth_profile(tokens, "{", "}");
    let paren = depth_profile(tokens, "(", ")");
    let mut model = FileModel::default();
    scan_lock_fields(tokens, &brace, &mut model);
    scan_fns(tokens, &brace, &mut model);
    scan_sites(tokens, &brace, &paren, &mut model);
    hot_fn_bodies(&mut model);
    // A guard can never outlive the fn it is taken in; clamping here
    // keeps tail-expression temporaries (no trailing `;` to anchor on)
    // from leaking their scope into the next item.
    for a in &mut model.acquisitions {
        for f in &model.fns {
            if a.token > f.body_start && a.token < f.body_end {
                a.scope_end = a.scope_end.min(f.body_end);
            }
        }
    }
    model
}

/// `profile[i]` = nesting depth *before* token `i` for the given
/// open/close pair. The matching close for an open at `i` (depth `d`) is
/// the first close token `j > i` with `profile[j] == d + 1`.
fn depth_profile(tokens: &[Token], open: &str, close: &str) -> Vec<i32> {
    let mut depth = 0_i32;
    let mut out = Vec::with_capacity(tokens.len() + 1);
    for t in tokens {
        out.push(depth);
        if t.kind == TokenKind::Punct {
            if t.text == open {
                depth += 1;
            } else if t.text == close {
                depth -= 1;
            }
        }
    }
    out.push(depth);
    out
}

/// First index `j > i` holding `close` at `profile[j] == profile[i] + 1`
/// (the matching close for an open at `i`); falls back to the last token.
fn matching_close(tokens: &[Token], profile: &[i32], i: usize, close: &str) -> usize {
    let want = profile[i] + 1;
    for (j, t) in tokens.iter().enumerate().skip(i + 1) {
        if t.text == close && profile[j] == want {
            return j;
        }
    }
    tokens.len().saturating_sub(1)
}

fn ident(t: &Token) -> Option<&str> {
    (t.kind == TokenKind::Ident).then_some(t.text.as_str())
}

fn scan_lock_fields(tokens: &[Token], brace: &[i32], model: &mut FileModel) {
    let mut i = 0;
    while i < tokens.len() {
        // `struct Name … { field: Type, … }` — fields are the top-level
        // comma-separated segments; a field is a lock field when its type
        // tokens mention Mutex/RankedMutex. The RankedMutex wrapper's own
        // inner field is still recorded; same-file resolution keeps it
        // from shadowing anything (see the graph pass).
        if ident(&tokens[i]) == Some("struct") {
            if let Some(name) = tokens.get(i + 1).and_then(ident) {
                let name = name.to_string();
                // Find the item's `{` (tuple/unit structs end at `;`).
                let mut j = i + 2;
                let item_depth = brace[i];
                while j < tokens.len() {
                    if tokens[j].text == ";" && brace[j] == item_depth {
                        break;
                    }
                    if tokens[j].text == "{" && brace[j] == item_depth {
                        let end = matching_close(tokens, brace, j, "}");
                        collect_struct_fields(tokens, brace, j, end, &name, model);
                        break;
                    }
                    j += 1;
                }
                i = j;
            }
        } else if ident(&tokens[i]) == Some("static") {
            // `static NAME: Mutex<…> = …;`
            if let Some(name) = tokens.get(i + 1).and_then(ident) {
                let mut j = i + 2;
                let mut is_lock = false;
                while j < tokens.len() && tokens[j].text != ";" && tokens[j].text != "=" {
                    if matches!(ident(&tokens[j]), Some("Mutex" | "RankedMutex")) {
                        is_lock = true;
                    }
                    j += 1;
                }
                if is_lock {
                    model.lock_fields.push(LockField {
                        owner: String::new(),
                        field: name.to_string(),
                        line: tokens[i].line,
                    });
                }
            }
        }
        i += 1;
    }
}

fn collect_struct_fields(
    tokens: &[Token],
    brace: &[i32],
    open: usize,
    close: usize,
    owner: &str,
    model: &mut FileModel,
) {
    let field_depth = brace[open] + 1;
    let mut seg_start = open + 1;
    let mut k = open + 1;
    while k <= close {
        let at_end = k == close;
        if at_end || (tokens[k].text == "," && brace[k] == field_depth) {
            let seg = &tokens[seg_start..k];
            // Field name: the identifier immediately before the first `:`
            // at field depth (skips `pub`, `pub(crate)`, attributes).
            let colon = seg.iter().position(|t| t.text == ":");
            if let Some(c) = colon {
                let name = c.checked_sub(1).and_then(|p| ident(&seg[p]));
                let is_lock = seg[c..]
                    .iter()
                    .any(|t| matches!(ident(t), Some("Mutex" | "RankedMutex")));
                if let (Some(name), true) = (name, is_lock) {
                    model.lock_fields.push(LockField {
                        owner: owner.to_string(),
                        field: name.to_string(),
                        line: seg[c].line,
                    });
                }
            }
            seg_start = k + 1;
        }
        k += 1;
    }
}

fn scan_fns(tokens: &[Token], brace: &[i32], model: &mut FileModel) {
    for i in 0..tokens.len() {
        if ident(&tokens[i]) != Some("fn") {
            continue;
        }
        // `fn` in fn-pointer types is followed by `(`, not a name.
        let Some(name) = tokens.get(i + 1).and_then(ident) else {
            continue;
        };
        let item_depth = brace[i];
        let mut j = i + 2;
        let mut body = None;
        while j < tokens.len() {
            if brace[j] == item_depth {
                if tokens[j].text == ";" {
                    break; // trait-method declaration, no body
                }
                if tokens[j].text == "{" {
                    body = Some(j);
                    break;
                }
            }
            j += 1;
        }
        if let Some(start) = body {
            model.fns.push(FnItem {
                name: name.to_string(),
                line: tokens[i].line,
                body_start: start,
                body_end: matching_close(tokens, brace, start, "}"),
            });
        }
    }
}

fn scan_sites(tokens: &[Token], brace: &[i32], paren: &[i32], model: &mut FileModel) {
    for i in 0..tokens.len() {
        let Some(name) = ident(&tokens[i]) else {
            continue;
        };
        let next_is_paren = tokens.get(i + 1).is_some_and(|t| t.text == "(");
        let prev_dot = i > 0 && tokens[i - 1].text == ".";
        let prev_path = i > 0 && tokens[i - 1].text == "::";

        if next_is_paren && prev_dot && name == "lock" {
            // `recv.lock()` — receiver is the identifier before the dot.
            if let Some(field) = i.checked_sub(2).and_then(|p| ident(&tokens[p])) {
                push_acquisition(tokens, brace, i, field.to_string(), model);
            }
        } else if next_is_paren && !prev_dot && !prev_path && name == "lock_or_recover" {
            // `lock_or_recover(&self.field)` — the field is the last
            // identifier of the first argument.
            let close = matching_close(tokens, paren, i + 1, ")");
            let first_arg_end = tokens
                .iter()
                .enumerate()
                .take(close)
                .skip(i + 2)
                .find(|(j, t)| t.text == "," && paren[*j] == paren[i + 1] + 1)
                .map_or(close, |(j, _)| j);
            let field = tokens[i + 2..first_arg_end]
                .iter()
                .rev()
                .find_map(|t| ident(t));
            if let Some(field) = field {
                push_acquisition(tokens, brace, i, field.to_string(), model);
            }
        }

        if next_is_paren && prev_dot && WAIT_METHODS.contains(&name) {
            let close = matching_close(tokens, paren, i + 1, ")");
            let mut involved: Vec<String> = tokens[i + 2..close]
                .iter()
                .filter_map(|t| ident(t).map(str::to_string))
                .collect();
            if let Some(recv) = i.checked_sub(2).and_then(|p| ident(&tokens[p])) {
                involved.push(recv.to_string());
            }
            model.waits.push(WaitSite {
                token: i,
                line: tokens[i].line,
                involved,
            });
        }

        if next_is_paren && (prev_dot || prev_path) && IO_METHODS.contains(&name) {
            model.io_sites.push(IoSite {
                token: i,
                line: tokens[i].line,
                what: name.to_string(),
            });
        }

        if next_is_paren && prev_dot && HOT_REGION_METHODS.contains(&name) {
            model.hot_regions.push(HotRegion {
                start: i + 1,
                end: matching_close(tokens, paren, i + 1, ")"),
                via: name.to_string(),
            });
        }

        if next_is_paren && !prev_dot && !NON_CALL_KEYWORDS.contains(&name) {
            // Free/assoc-function call (method calls go through the deny
            // list anyway; recording only the path tail keeps resolution
            // honest: `Type::helper(…)` resolves by `helper`).
            model.calls.push(CallSite {
                token: i,
                line: tokens[i].line,
                callee: name.to_string(),
            });
        } else if next_is_paren && prev_dot {
            model.calls.push(CallSite {
                token: i,
                line: tokens[i].line,
                callee: name.to_string(),
            });
        }
    }
}

/// Walk back from an acquisition to its statement head: if the statement
/// is a `let`, the guard lives to the end of the enclosing block (or an
/// explicit `drop(name)`); otherwise it is a temporary that dies at the
/// statement's `;`.
fn push_acquisition(
    tokens: &[Token],
    brace: &[i32],
    site: usize,
    field: String,
    model: &mut FileModel,
) {
    let mut guard: Option<String> = None;
    let mut let_at: Option<usize> = None;
    let mut j = site;
    for _ in 0..24 {
        let Some(prev) = j.checked_sub(1) else { break };
        j = prev;
        let t = &tokens[j];
        let passable = t.kind == TokenKind::Ident
            || matches!(t.text.as_str(), "." | "::" | "=" | "&" | "*" | "(" | ")");
        if ident(t) == Some("let") {
            let_at = Some(j);
            // Bound name: first identifier after `let`, skipping `mut`;
            // a `(` pattern is a tuple — no single guard name, but the
            // binding still scopes to the block.
            let mut k = j + 1;
            if ident(&tokens[k]) == Some("mut") {
                k += 1;
            }
            guard = ident(&tokens[k]).map(str::to_string);
            break;
        }
        if !passable && !matches!(ident(t), Some("mut" | "match")) {
            break;
        }
    }

    let scope_end = match let_at {
        Some(l) => {
            // End of the enclosing block: the `}` that returns to the
            // depth the `let` sits at.
            let block_depth = brace[l];
            let mut end = tokens.len();
            for (k, t) in tokens.iter().enumerate().skip(site + 1) {
                if t.text == "}" && brace[k] == block_depth {
                    end = k;
                    break;
                }
            }
            // An explicit `drop(guard)` ends the scope earlier.
            if let Some(g) = &guard {
                for k in site + 1..end.min(tokens.len().saturating_sub(3)) {
                    if ident(&tokens[k]) == Some("drop")
                        && tokens[k + 1].text == "("
                        && ident(&tokens[k + 2]) == Some(g.as_str())
                        && tokens[k + 3].text == ")"
                    {
                        end = k;
                        break;
                    }
                }
            }
            end
        }
        None => {
            // Temporary: next `;` at the statement's brace depth.
            let stmt_depth = brace[site];
            tokens
                .iter()
                .enumerate()
                .skip(site + 1)
                .find(|(k, t)| t.text == ";" && brace[*k] <= stmt_depth)
                .map_or(tokens.len(), |(k, _)| k)
        }
    };

    model.acquisitions.push(Acquisition {
        token: site,
        line: tokens[site].line,
        field,
        guard,
        scope_end,
    });
}

/// Bodies of smoother/matvec-named fns are hot regions in their own
/// right (`cheb_smooth`, `rb_sweep`, `matvec_range`, …).
fn hot_fn_bodies(model: &mut FileModel) {
    let hot: Vec<HotRegion> = model
        .fns
        .iter()
        .filter(|f| {
            f.name.contains("matvec") || f.name.contains("smooth") || f.name.ends_with("_sweep")
        })
        .map(|f| HotRegion {
            start: f.body_start,
            end: f.body_end,
            via: f.name.clone(),
        })
        .collect();
    model.hot_regions.extend(hot);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn lock_fields_and_statics_are_discovered() {
        let src = "pub struct Q<T> { inner: Mutex<Inner<T>>, cap: usize }\n\
                   static GLOBAL: Mutex<u32> = Mutex::new(0);\n\
                   struct Plain { n: usize }";
        let m = build(&lex(src));
        let names: Vec<String> = m.lock_fields.iter().map(LockField::qualified).collect();
        assert_eq!(names, vec!["Q.inner".to_string(), "GLOBAL".to_string()]);
    }

    #[test]
    fn fn_bodies_are_brace_matched() {
        let src = "fn outer() { if x { y(); } }\nfn decl();\nfn tail() -> u32 { 7 }";
        let m = build(&lex(src));
        let names: Vec<&str> = m.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "tail"]);
    }

    #[test]
    fn let_bound_guard_scopes_to_block_end() {
        let src = "fn f(&self) {\n    let mut g = self.state.lock().unwrap();\n    g.push(1);\n}";
        let m = build(&lex(src));
        assert_eq!(m.acquisitions.len(), 1);
        let a = &m.acquisitions[0];
        assert_eq!(a.field, "state");
        assert_eq!(a.guard.as_deref(), Some("g"));
        // Scope runs to the fn's closing brace (past the push call).
        assert!(m
            .calls
            .iter()
            .any(|c| c.callee == "push" && c.token < a.scope_end));
    }

    #[test]
    fn explicit_drop_ends_the_guard_scope() {
        let src = "fn f(&self) {\n    let g = self.state.lock().unwrap();\n    drop(g);\n    self.other.lock().unwrap();\n}";
        let m = build(&lex(src));
        let first = &m.acquisitions[0];
        let second = &m.acquisitions[1];
        assert!(
            first.scope_end < second.token,
            "drop released before the second lock"
        );
    }

    #[test]
    fn temporary_guard_dies_at_the_statement() {
        let src = "fn f(&self) {\n    self.state.lock().unwrap().push(1);\n    self.other.lock().unwrap();\n}";
        let m = build(&lex(src));
        let first = &m.acquisitions[0];
        assert!(first.guard.is_none());
        assert!(first.scope_end < m.acquisitions[1].token);
    }

    #[test]
    fn lock_or_recover_sites_resolve_their_field_argument() {
        let src = "fn f(&self) { let g = lock_or_recover(&self.table); g.get(); }";
        let m = build(&lex(src));
        assert_eq!(m.acquisitions.len(), 1);
        assert_eq!(m.acquisitions[0].field, "table");
        assert_eq!(m.acquisitions[0].guard.as_deref(), Some("g"));
    }

    #[test]
    fn wait_sites_collect_involved_identifiers() {
        let src = "fn f(&self) { inner = self.cv.wait(inner).unwrap(); }";
        let m = build(&lex(src));
        assert_eq!(m.waits.len(), 1);
        assert!(m.waits[0].involved.contains(&"inner".to_string()));
        assert!(m.waits[0].involved.contains(&"cv".to_string()));
    }

    #[test]
    fn hot_regions_cover_parallel_closures_and_named_bodies() {
        let src = "fn step(&self, plan: &ExecPlan, x: &mut [f64]) {\n\
                       plan.map_mut(x, |r, c| { helper(r, c); });\n\
                   }\n\
                   fn rb_sweep(&self) { body(); }";
        let m = build(&lex(src));
        assert_eq!(m.hot_regions.len(), 2);
        assert_eq!(m.hot_regions[0].via, "map_mut");
        assert_eq!(m.hot_regions[1].via, "rb_sweep");
    }
}
