//! Transient thermal simulation: implicit-Euler time stepping on the
//! same finite-volume discretization as the steady solver.
//!
//! PACT (the paper's chip-scale simulator) provides both steady and
//! transient modes; the paper's discussion of thermal-aware scheduling
//! ("scheduling task execution to control temporal power profiles" \[4\])
//! and fine-grained power gating (Fig. 12) is inherently temporal, so
//! this module completes the substitution.
//!
//! Each step solves `(C/Δt + A)·T' = C/Δt·T + b` with the same
//! Jacobi-preconditioned CG kernel; implicit Euler is unconditionally
//! stable, so Δt is chosen for accuracy, not stability.

use crate::field::TemperatureField;
use crate::multigrid::{MgHierarchy, MgParams, MgWorkspace};
use crate::problem::Problem;
use crate::solver::{Assembled, CgParams, SolveError, SolverStats, DEFAULT_PARALLEL_CROSSOVER};
use std::fmt;
use std::time::Instant;
use tsc_geometry::{Grid3, Index3};
use tsc_units::Temperature;

/// Volumetric heat capacities (J/m³/K) of the stack materials, for
/// building capacity fields.
pub mod capacity {
    /// Crystalline silicon.
    pub const SILICON: f64 = 1.63e6;
    /// Copper.
    pub const COPPER: f64 = 3.45e6;
    /// Porous organosilicate / ultra-low-k dielectric.
    pub const ULTRA_LOW_K: f64 = 1.5e6;
    /// Polycrystalline diamond.
    pub const DIAMOND: f64 = 1.78e6;
}

/// A running transient simulation.
///
/// Assembles the conduction operator once; each [`TransientRun::step`]
/// advances time by `dt`. Power can be re-staged mid-run (power gating,
/// task migration) with [`TransientRun::restage_power`].
///
/// ```
/// use tsc_geometry::Grid3;
/// use tsc_thermal::{transient::{capacity, TransientRun}, Heatsink, Problem};
/// use tsc_units::{Length, Power, Temperature, ThermalConductivity};
///
/// let mut p = Problem::uniform_block(4, 4, 2,
///     Length::from_millimeters(1.0), Length::from_millimeters(1.0),
///     Length::from_micrometers(100.0), ThermalConductivity::new(100.0));
/// p.set_bottom_heatsink(Heatsink::two_phase());
/// p.add_power(2, 2, 1, Power::from_watts(1.0));
/// let caps = Grid3::filled(p.dim(), capacity::SILICON);
/// let mut run = TransientRun::new(&p, &caps, 1e-6,
///     Temperature::from_celsius(100.0))?;
/// run.step()?;
/// assert!(run.time_seconds() > 0.0);
/// assert!(run.temperatures().max_temperature() > Temperature::from_celsius(100.0));
/// # Ok::<(), tsc_thermal::SolveError>(())
/// ```
#[derive(Debug)]
pub struct TransientRun {
    asm: Assembled,
    /// Per-cell heat capacity over Δt: `c_v · V / Δt` (W/K).
    cap_over_dt: Vec<f64>,
    temperatures: Vec<f64>,
    dt: f64,
    time: f64,
    steps: u64,
    tol: f64,
    max_iter: usize,
    threads: usize,
    crossover: usize,
    mg: Option<TransientMg>,
}

/// Multigrid state for the implicit matrix `A + diag(C/Δt)`: the shift
/// is constant across steps, so the shifted operator and its hierarchy
/// are built once per (re-)staging and reused by every step.
#[derive(Debug)]
struct TransientMg {
    shifted: Assembled,
    hierarchy: MgHierarchy,
    workspace: MgWorkspace,
}

impl TransientMg {
    fn build(
        asm: &Assembled,
        cap_over_dt: &[f64],
        threads: usize,
        crossover: usize,
    ) -> Result<Self, SolveError> {
        let shifted = asm.shifted(cap_over_dt);
        let hierarchy = MgHierarchy::build(&shifted, &MgParams::with_exec(threads, crossover))?;
        let workspace = hierarchy.workspace();
        Ok(Self {
            shifted,
            hierarchy,
            workspace,
        })
    }
}

impl TransientRun {
    /// Starts a run from a uniform initial temperature.
    ///
    /// `capacity_per_volume` holds volumetric heat capacities (J/m³/K)
    /// per cell; `dt` is the time step in seconds.
    ///
    /// # Errors
    ///
    /// [`SolveError::NoBoundary`] when the problem has no heatsink.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not strictly positive, or the capacity grid's
    /// dimensions mismatch the problem, or any capacity is non-positive.
    pub fn new(
        problem: &Problem,
        capacity_per_volume: &Grid3<f64>,
        dt: f64,
        initial: Temperature,
    ) -> Result<Self, SolveError> {
        assert!(dt > 0.0, "time step must be positive, got {dt}");
        assert_eq!(
            capacity_per_volume.dim(),
            problem.dim(),
            "capacity grid must match the problem mesh"
        );
        assert!(
            capacity_per_volume.iter().all(|&c| c > 0.0),
            "heat capacities must be positive"
        );
        let asm = Assembled::build(problem)?;
        let dim = problem.dim();
        let cell_base = (problem.dx() * problem.dy()).square_meters();
        let mut cap_over_dt = vec![0.0; dim.len()];
        for k in 0..dim.nz {
            let vol = cell_base * problem.dz()[k].meters();
            for j in 0..dim.ny {
                for i in 0..dim.nx {
                    let c = capacity_per_volume[(i, j, k)];
                    cap_over_dt[dim.flat(i, j, k)] = c * vol / dt;
                }
            }
        }
        Ok(Self {
            asm,
            cap_over_dt,
            temperatures: vec![initial.kelvin(); dim.len()],
            dt,
            time: 0.0,
            steps: 0,
            tol: 1e-9,
            max_iter: 20_000,
            threads: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            crossover: DEFAULT_PARALLEL_CROSSOVER,
            mg: None,
        })
    }

    /// Builder: preconditions every step's inner CG solve with a
    /// geometric-multigrid V-cycle over the shifted implicit matrix
    /// `A + diag(C/Δt)`. The hierarchy is built once here and reused by
    /// every [`TransientRun::step`]; [`TransientRun::restage_power`]
    /// rebuilds it (the operator may change).
    ///
    /// # Errors
    ///
    /// Propagates a coarse-grid factorization failure (non-SPD operator).
    pub fn with_multigrid(mut self) -> Result<Self, SolveError> {
        self.mg = Some(TransientMg::build(
            &self.asm,
            &self.cap_over_dt,
            self.threads,
            self.crossover,
        )?);
        Ok(self)
    }

    /// Builder: caps the worker threads of the inner CG solves (default:
    /// one per available core above the parallel crossover).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "thread count must be positive");
        self.threads = threads;
        self
    }

    /// Whether multigrid preconditioning is active.
    #[must_use]
    pub fn uses_multigrid(&self) -> bool {
        self.mg.is_some()
    }

    /// Elapsed simulated time in seconds.
    #[must_use]
    pub fn time_seconds(&self) -> f64 {
        self.time
    }

    /// Number of implicit-Euler steps taken since construction (or the
    /// last [`TransientRun::reset`]).
    #[must_use]
    pub fn steps_taken(&self) -> u64 {
        self.steps
    }

    /// Mesh dimensions of the staged problem.
    #[must_use]
    pub fn dim(&self) -> tsc_geometry::Dim3 {
        self.asm.dim()
    }

    /// The current peak temperature and its cell — the per-step sample a
    /// streamed trajectory reports.  Argmax ties resolve to the lowest
    /// flat index, so the hotspot is deterministic.
    #[must_use]
    pub fn peak(&self) -> PeakSample {
        let mut best = 0;
        for (idx, &t) in self.temperatures.iter().enumerate() {
            if t > self.temperatures[best] {
                best = idx;
            }
        }
        PeakSample {
            kelvin: self.temperatures[best],
            hotspot: self.asm.dim().unflat(best),
        }
    }

    /// Rewinds the run to a uniform initial temperature, keeping the
    /// assembled operator, capacity staging, and multigrid hierarchy.
    /// A reset run's trajectory is bitwise identical to a freshly
    /// constructed run's: the reused state is deterministic in the
    /// problem, and the temperature vector is refilled exactly.
    pub fn reset(&mut self, initial: Temperature) {
        self.temperatures.fill(initial.kelvin());
        self.time = 0.0;
        self.steps = 0;
    }

    /// Re-stages only the heat sources (watts per cell) over the
    /// unchanged operator — the delta path for streamed power updates.
    /// Equivalent to [`TransientRun::restage_power`] with a problem that
    /// differs only in power, but skips reassembly and the multigrid
    /// hierarchy rebuild entirely; the resulting right-hand side is
    /// bitwise identical to the full restage (IEEE addition of the same
    /// two addends).
    ///
    /// # Panics
    ///
    /// Panics if `power_watts` does not have one entry per cell.
    pub fn restage_power_delta(&mut self, power_watts: &[f64]) {
        assert_eq!(
            power_watts.len(),
            self.temperatures.len(),
            "power delta must cover every cell"
        );
        self.asm.rhs = self.asm.rhs_with_power(power_watts);
    }

    /// Time step in seconds.
    #[must_use]
    pub fn dt_seconds(&self) -> f64 {
        self.dt
    }

    /// Current temperature field.
    #[must_use]
    pub fn temperatures(&self) -> TemperatureField {
        let mut grid = Grid3::filled(self.asm.dim(), 0.0);
        grid.as_mut_slice().copy_from_slice(&self.temperatures);
        TemperatureField::from_kelvin(grid)
    }

    /// Re-derives heat sources and boundary conditions from a modified
    /// problem (same mesh): the power-gating / task-migration hook.
    ///
    /// # Errors
    ///
    /// [`SolveError::NoBoundary`] when the new problem has no heatsink.
    ///
    /// # Panics
    ///
    /// Panics if the mesh dimensions changed.
    pub fn restage_power(&mut self, problem: &Problem) -> Result<(), SolveError> {
        assert_eq!(
            problem.dim(),
            self.asm.dim(),
            "restaged problem must keep the same mesh"
        );
        self.asm = Assembled::build(problem)?;
        if self.mg.is_some() {
            self.mg = Some(TransientMg::build(
                &self.asm,
                &self.cap_over_dt,
                self.threads,
                self.crossover,
            )?);
        }
        Ok(())
    }

    /// Advances one implicit-Euler step.
    ///
    /// # Errors
    ///
    /// [`SolveError::NotConverged`] if the inner CG solve stalls.
    pub fn step(&mut self) -> Result<SolverStats, SolveError> {
        // rhs = b + (C/dt)·T ; matrix = A + diag(C/dt).
        let mut rhs = self.asm.rhs().to_vec();
        for ((r, c), t) in rhs
            .iter_mut()
            .zip(&self.cap_over_dt)
            .zip(&self.temperatures)
        {
            *r += c * t;
        }
        let params = CgParams {
            tol: self.tol,
            max_iter: self.max_iter,
            threads: self.threads,
            crossover: self.crossover,
            traj_stride: usize::MAX,
        };
        let stats = match &mut self.mg {
            Some(mg) => mg.shifted.cg_core_mg(
                &rhs,
                &mut self.temperatures,
                &params,
                &mg.hierarchy,
                &mut mg.workspace,
            )?,
            None => self.asm.cg_core(
                Some(&self.cap_over_dt),
                &rhs,
                &mut self.temperatures,
                &params,
            )?,
        };
        self.time += self.dt;
        self.steps += 1;
        Ok(stats)
    }

    /// Checks the session guards *before* a step would run: `None` means
    /// the step may proceed.  Kept separate from [`TransientRun::step`]
    /// so a caller can surface the halt as a typed in-band event rather
    /// than a solver error — a guard trip is a policy outcome, not a
    /// numerical failure.
    #[must_use]
    pub fn check_limits(&self, limits: &StepLimits) -> Option<StepHalt> {
        if self.steps >= limits.max_steps {
            return Some(StepHalt::BudgetExhausted { steps: self.steps });
        }
        if let Some(deadline) = limits.deadline {
            // tsc-analyze: allow(no-wallclock-numeric): guards session wall time only, never the numerics
            if Instant::now() >= deadline {
                return Some(StepHalt::DeadlineExpired { steps: self.steps });
            }
        }
        None
    }

    /// Advances `steps` steps, returning the stats of the last one.
    ///
    /// # Errors
    ///
    /// Propagates the first inner-solve failure.
    ///
    /// # Panics
    ///
    /// Panics if `steps` is zero.
    pub fn run(&mut self, steps: usize) -> Result<SolverStats, SolveError> {
        assert!(steps > 0, "need at least one step");
        let mut last = None;
        for _ in 0..steps {
            last = Some(self.step()?);
        }
        // tsc-analyze: allow(no-unwrap): the assert above guarantees at
        // least one loop iteration, so `last` is always Some.
        Ok(last.expect("steps > 0"))
    }
}

/// One trajectory sample: the field's peak and where it sits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeakSample {
    /// Peak temperature in kelvin (bitwise comparable across runs).
    pub kelvin: f64,
    /// The cell holding the peak (lowest flat index on ties).
    pub hotspot: Index3,
}

impl PeakSample {
    /// The peak in celsius, for rendering.
    #[must_use]
    pub fn celsius(&self) -> f64 {
        Temperature::from_kelvin(self.kelvin).celsius()
    }
}

/// Guards on a long-running stepped simulation: a hard step budget and
/// an optional wall-clock deadline.  Both are *session* policy — a trip
/// surfaces as a typed [`StepHalt`], never a solver error.
#[derive(Debug, Clone, Copy)]
pub struct StepLimits {
    /// Maximum steps the run may take in total ([`TransientRun::steps_taken`]).
    pub max_steps: u64,
    /// Absolute wall-clock deadline, if any.
    pub deadline: Option<Instant>,
}

impl StepLimits {
    /// A budget-only guard.
    #[must_use]
    pub fn budget(max_steps: u64) -> Self {
        StepLimits {
            max_steps,
            deadline: None,
        }
    }

    /// Adds a wall-clock deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// Why a guarded run must stop.  Carries the step count at the halt so
/// the caller can report progress alongside the reason.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepHalt {
    /// The step budget is exhausted.
    BudgetExhausted {
        /// Steps taken when the budget tripped.
        steps: u64,
    },
    /// The wall-clock deadline passed.
    DeadlineExpired {
        /// Steps taken when the deadline tripped.
        steps: u64,
    },
}

impl fmt::Display for StepHalt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StepHalt::BudgetExhausted { steps } => {
                write!(f, "step budget exhausted after {steps} steps")
            }
            StepHalt::DeadlineExpired { steps } => {
                write!(f, "session deadline expired after {steps} steps")
            }
        }
    }
}

/// Thermal-runaway alarm logic for streamed trajectories: promotes the
/// PR-4 `ThermalRunaway` fault class into a live in-band signal.
///
/// Fires when the peak crosses the threshold *while rising*, then
/// latches so a simmering hotspot raises one alarm, not one per step;
/// it re-arms only after the peak falls below `threshold − hysteresis`.
/// The alarm is advisory — stepping continues — so a what-if loop can
/// watch an excursion play out.
#[derive(Debug, Clone)]
pub struct RunawayDetector {
    threshold: f64,
    hysteresis: f64,
    latched: bool,
    last: f64,
}

impl RunawayDetector {
    /// Default re-arm hysteresis below the threshold, in kelvin.
    pub const DEFAULT_HYSTERESIS: f64 = 5.0;

    /// A detector with the default hysteresis.
    #[must_use]
    pub fn new(threshold: Temperature) -> Self {
        RunawayDetector {
            threshold: threshold.kelvin(),
            hysteresis: Self::DEFAULT_HYSTERESIS,
            latched: false,
            last: f64::NEG_INFINITY,
        }
    }

    /// Overrides the re-arm hysteresis (kelvin below the threshold).
    ///
    /// # Panics
    ///
    /// Panics if `kelvin` is negative or non-finite.
    #[must_use]
    pub fn with_hysteresis(mut self, kelvin: f64) -> Self {
        assert!(
            kelvin.is_finite() && kelvin >= 0.0,
            "hysteresis must be a non-negative temperature span"
        );
        self.hysteresis = kelvin;
        self
    }

    /// The alarm threshold.
    #[must_use]
    pub fn threshold(&self) -> Temperature {
        Temperature::from_kelvin(self.threshold)
    }

    /// Feeds one trajectory sample; `true` exactly when a new alarm
    /// fires on this sample.
    pub fn observe(&mut self, peak: Temperature) -> bool {
        let t = peak.kelvin();
        let rising = t > self.last;
        self.last = t;
        if self.latched {
            if t < self.threshold - self.hysteresis {
                self.latched = false;
            }
            return false;
        }
        if t >= self.threshold && rising {
            self.latched = true;
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heatsink::Heatsink;
    use crate::solver::CgSolver;
    use tsc_units::{Length, Power, ThermalConductivity};

    fn problem(powered: bool) -> Problem {
        let mut p = Problem::uniform_block(
            4,
            4,
            3,
            Length::from_millimeters(1.0),
            Length::from_millimeters(1.0),
            Length::from_micrometers(100.0),
            ThermalConductivity::new(100.0),
        );
        p.set_bottom_heatsink(Heatsink::two_phase());
        if powered {
            p.add_power(2, 2, 2, Power::from_watts(2.0));
        }
        p
    }

    fn caps(p: &Problem) -> Grid3<f64> {
        Grid3::filled(p.dim(), capacity::SILICON)
    }

    #[test]
    fn converges_to_steady_state() {
        let p = problem(true);
        let steady = CgSolver::new().solve(&p).expect("steady");
        let mut run = TransientRun::new(&p, &caps(&p), 5e-6, Heatsink::two_phase().ambient)
            .expect("well-posed");
        run.run(400).expect("steps");
        let t_end = run.temperatures().max_temperature().kelvin();
        let t_ss = steady.temperatures.max_temperature().kelvin();
        assert!(
            (t_end - t_ss).abs() < 0.01 * (t_ss - 373.15).max(0.1),
            "transient must settle at steady state: {t_end} vs {t_ss}"
        );
    }

    #[test]
    fn heating_is_monotone_from_ambient() {
        let p = problem(true);
        let mut run = TransientRun::new(&p, &caps(&p), 2e-6, Heatsink::two_phase().ambient)
            .expect("well-posed");
        let mut last = run.temperatures().max_temperature().kelvin();
        for _ in 0..20 {
            run.step().expect("step");
            let now = run.temperatures().max_temperature().kelvin();
            assert!(now >= last - 1e-12, "implicit Euler heating is monotone");
            last = now;
        }
    }

    #[test]
    fn lumped_rc_time_constant() {
        // A single giant step (dt >> tau) lands directly on steady state;
        // a step of exactly tau covers 1/(1+dt/tau)... for implicit Euler
        // the single-step update is T1 = (T0 + (dt/C)(q + G·Ta)) / (1 + dt·G/C);
        // with dt -> infinity that is the steady solution. Verify.
        let p = problem(true);
        let steady = CgSolver::new().solve(&p).expect("steady");
        let mut run = TransientRun::new(&p, &caps(&p), 1.0, Heatsink::two_phase().ambient)
            .expect("well-posed"); // 1 s >> all time constants
        run.step().expect("step");
        let t1 = run.temperatures().max_temperature().kelvin();
        let t_ss = steady.temperatures.max_temperature().kelvin();
        assert!((t1 - t_ss).abs() < 0.05, "{t1} vs {t_ss}");
    }

    #[test]
    fn gating_cools_the_stack() {
        let p_on = problem(true);
        let p_off = problem(false);
        let mut run = TransientRun::new(&p_on, &caps(&p_on), 5e-6, Heatsink::two_phase().ambient)
            .expect("well-posed");
        run.run(100).expect("heat up");
        let hot = run.temperatures().max_temperature();
        run.restage_power(&p_off).expect("same mesh");
        run.run(100).expect("cool down");
        let cooled = run.temperatures().max_temperature();
        assert!(cooled < hot, "gating must cool: {hot} -> {cooled}");
        let residual_rise = cooled.kelvin() - Heatsink::two_phase().ambient.kelvin();
        let hot_rise = hot.kelvin() - Heatsink::two_phase().ambient.kelvin();
        assert!(
            residual_rise < 0.25 * hot_rise,
            "gated stack must decay most of its rise: {residual_rise} of {hot_rise}"
        );
    }

    #[test]
    fn smaller_dt_tracks_the_same_trajectory() {
        let p = problem(true);
        let amb = Heatsink::two_phase().ambient;
        let mut coarse = TransientRun::new(&p, &caps(&p), 4e-6, amb).expect("well-posed");
        let mut fine = TransientRun::new(&p, &caps(&p), 1e-6, amb).expect("well-posed");
        coarse.run(5).expect("coarse");
        fine.run(20).expect("fine");
        let tc = coarse.temperatures().max_temperature().kelvin() - amb.kelvin();
        let tf = fine.temperatures().max_temperature().kelvin() - amb.kelvin();
        // First-order scheme: coarse lags fine but within ~25%.
        assert!(
            (tc - tf).abs() / tf.max(1e-9) < 0.25,
            "dt refinement consistency: {tc} vs {tf}"
        );
    }

    #[test]
    fn multigrid_stepping_tracks_jacobi_stepping() {
        let p_on = problem(true);
        let p_off = problem(false);
        let amb = Heatsink::two_phase().ambient;
        let mut plain = TransientRun::new(&p_on, &caps(&p_on), 5e-6, amb).expect("well-posed");
        let mut mg = TransientRun::new(&p_on, &caps(&p_on), 5e-6, amb)
            .expect("well-posed")
            .with_multigrid()
            .expect("spd operator");
        assert!(mg.uses_multigrid());
        for _ in 0..10 {
            plain.step().expect("plain step");
            let stats = mg.step().expect("mg step");
            assert_eq!(
                stats.preconditioner,
                crate::solver::Preconditioner::Multigrid
            );
        }
        // Restage to gated power: the MG hierarchy is rebuilt and both
        // runs keep tracking each other.
        plain.restage_power(&p_off).expect("same mesh");
        mg.restage_power(&p_off).expect("same mesh");
        for _ in 0..10 {
            plain.step().expect("plain step");
            mg.step().expect("mg step");
        }
        let a = plain.temperatures();
        let b = mg.temperatures();
        let max_dev = a
            .iter_kelvin()
            .zip(b.iter_kelvin())
            .map(|(x, y)| (x - y).abs())
            .fold(0.0_f64, f64::max);
        // Each step solves to 1e-9 relative residual with a different
        // preconditioner; twenty steps accumulate O(1e-6) K of drift.
        assert!(
            max_dev < 1e-5,
            "MG and Jacobi trajectories must agree, max |dT| = {max_dev}"
        );
    }

    #[test]
    fn delta_restage_is_bitwise_identical_to_full_restage() {
        let p_on = problem(true);
        let p_off = problem(false);
        let amb = Heatsink::two_phase().ambient;
        let mut full = TransientRun::new(&p_on, &caps(&p_on), 5e-6, amb)
            .expect("well-posed")
            .with_multigrid()
            .expect("spd operator");
        let mut delta = TransientRun::new(&p_on, &caps(&p_on), 5e-6, amb)
            .expect("well-posed")
            .with_multigrid()
            .expect("spd operator");
        full.run(8).expect("heat up");
        delta.run(8).expect("heat up");
        full.restage_power(&p_off).expect("same mesh");
        delta.restage_power_delta(p_off.power_flat());
        for _ in 0..8 {
            full.step().expect("full step");
            delta.step().expect("delta step");
            let same = full
                .temperatures()
                .iter_kelvin()
                .zip(delta.temperatures().iter_kelvin())
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "delta restaging must be bitwise-equal to full");
        }
    }

    #[test]
    fn reset_replays_a_fresh_trajectory_bitwise() {
        let p = problem(true);
        let amb = Heatsink::two_phase().ambient;
        let mut fresh = TransientRun::new(&p, &caps(&p), 5e-6, amb).expect("well-posed");
        let mut reused = TransientRun::new(&p, &caps(&p), 5e-6, amb).expect("well-posed");
        reused.run(13).expect("pre-use");
        reused.reset(amb);
        assert_eq!(reused.steps_taken(), 0);
        assert_eq!(reused.time_seconds(), 0.0);
        for _ in 0..6 {
            fresh.step().expect("fresh step");
            reused.step().expect("reused step");
            assert_eq!(
                fresh.peak().kelvin.to_bits(),
                reused.peak().kelvin.to_bits(),
                "a reset run must replay the fresh trajectory bitwise"
            );
        }
        assert_eq!(fresh.peak().hotspot, reused.peak().hotspot);
    }

    #[test]
    fn step_counter_and_peak_sample_track_the_run() {
        let p = problem(true);
        let mut run =
            TransientRun::new(&p, &caps(&p), 5e-6, Heatsink::two_phase().ambient).expect("ok");
        assert_eq!(run.steps_taken(), 0);
        run.run(3).expect("steps");
        assert_eq!(run.steps_taken(), 3);
        let peak = run.peak();
        assert_eq!(
            peak.kelvin,
            run.temperatures().max_temperature().kelvin(),
            "peak sample must agree with the field argmax"
        );
        // The 2 W source sits at (2,2,2); the hotspot must be there.
        assert_eq!(peak.hotspot, Index3 { i: 2, j: 2, k: 2 });
    }

    #[test]
    fn limits_trip_as_typed_halts() {
        let p = problem(true);
        let mut run =
            TransientRun::new(&p, &caps(&p), 5e-6, Heatsink::two_phase().ambient).expect("ok");
        let limits = StepLimits::budget(2);
        assert_eq!(run.check_limits(&limits), None);
        run.run(2).expect("steps");
        assert_eq!(
            run.check_limits(&limits),
            Some(StepHalt::BudgetExhausted { steps: 2 })
        );
        let expired = StepLimits::budget(u64::MAX)
            .with_deadline(Instant::now() - std::time::Duration::from_millis(1));
        assert_eq!(
            run.check_limits(&expired),
            Some(StepHalt::DeadlineExpired { steps: 2 })
        );
        let generous = StepLimits::budget(u64::MAX)
            .with_deadline(Instant::now() + std::time::Duration::from_secs(3600));
        assert_eq!(run.check_limits(&generous), None);
    }

    #[test]
    fn runaway_detector_fires_latches_and_rearms() {
        let c = Temperature::from_celsius;
        let mut det = RunawayDetector::new(c(120.0)).with_hysteresis(5.0);
        assert!(!det.observe(c(100.0)), "below threshold");
        assert!(!det.observe(c(119.9)), "still below");
        assert!(det.observe(c(121.0)), "crossing while rising fires");
        assert!(!det.observe(c(130.0)), "latched: no re-fire while hot");
        assert!(!det.observe(c(118.0)), "above re-arm point: still latched");
        assert!(
            !det.observe(c(114.0)),
            "below threshold - hysteresis: re-arms"
        );
        assert!(det.observe(c(125.0)), "re-armed detector fires again");
        // Falling *through* the threshold never fires.
        let mut cooling = RunawayDetector::new(c(120.0));
        assert!(cooling.observe(c(150.0)), "first hot sample fires");
        assert!(!cooling.observe(c(100.0)));
        assert!(!cooling.observe(c(90.0)), "falling samples never fire");
    }

    #[test]
    #[should_panic(expected = "power delta must cover every cell")]
    fn delta_restage_rejects_wrong_length() {
        let p = problem(true);
        let mut run =
            TransientRun::new(&p, &caps(&p), 5e-6, Heatsink::two_phase().ambient).expect("ok");
        run.restage_power_delta(&[0.0; 3]);
    }

    #[test]
    #[should_panic(expected = "time step must be positive")]
    fn zero_dt_rejected() {
        let p = problem(true);
        let _ = TransientRun::new(&p, &caps(&p), 0.0, Heatsink::two_phase().ambient);
    }

    #[test]
    fn no_boundary_is_reported() {
        let mut p = problem(true);
        p = {
            // Rebuild without a heatsink.
            let mut q = Problem::uniform_block(
                4,
                4,
                3,
                Length::from_millimeters(1.0),
                Length::from_millimeters(1.0),
                Length::from_micrometers(100.0),
                ThermalConductivity::new(100.0),
            );
            q.add_power(0, 0, 0, Power::from_watts(1.0));
            let _ = p;
            q
        };
        let caps = Grid3::filled(p.dim(), capacity::SILICON);
        let err = TransientRun::new(&p, &caps, 1e-6, Temperature::from_celsius(25.0));
        assert!(matches!(err, Err(SolveError::NoBoundary)));
    }
}
