//! Checkpoint serialization helpers for the `tsc_bench::json` dialect.
//!
//! The dialect's only number type is `f64`, which cannot carry a full
//! `u64` RNG word, and its decimal formatting is not guaranteed to
//! round-trip the last bits of a double. Checkpoints therefore encode
//! both as 16-hex-digit strings (the same convention the transient
//! session stream uses for bitwise peak temperatures), so a resumed
//! run restarts from *exactly* the serialized state.

use tsc_bench::json::Json;

/// A `u64` as a 16-hex-digit JSON string.
#[must_use]
pub fn hex_u64(v: u64) -> Json {
    Json::Str(format!("{v:016x}"))
}

/// Parses a [`hex_u64`] value.
///
/// # Errors
///
/// Returns a message when the value is not a 16-hex-digit string.
pub fn parse_hex_u64(value: &Json) -> Result<u64, String> {
    let s = value
        .as_str()
        .ok_or_else(|| "expected a hex string".to_string())?;
    if s.len() != 16 {
        return Err(format!("expected 16 hex digits, got {:?}", s));
    }
    u64::from_str_radix(s, 16).map_err(|e| format!("bad hex word {s:?}: {e}"))
}

/// An `f64` as its raw bits in 16-hex-digit form (exact round-trip).
#[must_use]
pub fn bits_f64(v: f64) -> Json {
    hex_u64(v.to_bits())
}

/// Parses a [`bits_f64`] value.
///
/// # Errors
///
/// Returns a message when the value is not a 16-hex-digit string.
pub fn parse_bits_f64(value: &Json) -> Result<f64, String> {
    parse_hex_u64(value).map(f64::from_bits)
}

/// A `usize` slice as a JSON array of numbers.
#[must_use]
pub fn usize_array(values: &[usize]) -> Json {
    Json::Array(values.iter().map(|&v| Json::from(v)).collect())
}

/// Parses a [`usize_array`] value.
///
/// # Errors
///
/// Returns a message when any element is not an integral number.
pub fn parse_usize_array(value: &Json) -> Result<Vec<usize>, String> {
    value
        .as_array()
        .ok_or_else(|| "expected an array".to_string())?
        .iter()
        .map(|v| v.as_usize().ok_or_else(|| format!("bad index {v:?}")))
        .collect()
}

/// A `bool` slice as a JSON array.
#[must_use]
pub fn bool_array(values: &[bool]) -> Json {
    Json::Array(values.iter().map(|&v| Json::from(v)).collect())
}

/// Parses a [`bool_array`] value.
///
/// # Errors
///
/// Returns a message when any element is not a boolean.
pub fn parse_bool_array(value: &Json) -> Result<Vec<bool>, String> {
    value
        .as_array()
        .ok_or_else(|| "expected an array".to_string())?
        .iter()
        .map(|v| v.as_bool().ok_or_else(|| format!("bad flag {v:?}")))
        .collect()
}

/// Fetches a required field from a checkpoint object.
///
/// # Errors
///
/// Returns a message naming the missing field.
pub fn require<'a>(obj: &'a Json, key: &str) -> Result<&'a Json, String> {
    obj.get(key)
        .ok_or_else(|| format!("checkpoint missing field {key:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_words_round_trip() {
        for v in [0_u64, 1, u64::MAX, 0x9E37_79B9_7F4A_7C15] {
            assert_eq!(parse_hex_u64(&hex_u64(v)).expect("round trip"), v);
        }
    }

    #[test]
    fn f64_bits_round_trip_exactly() {
        for v in [0.0, -0.0, 1.5, f64::MIN_POSITIVE, 1.0 / 3.0, -2.5e300] {
            let back = parse_bits_f64(&bits_f64(v)).expect("round trip");
            assert_eq!(back.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn arrays_round_trip_through_serialization() {
        let idx = vec![3_usize, 1, 2, 0];
        let flags = vec![true, false, true];
        let doc = Json::object()
            .field("idx", usize_array(&idx))
            .field("flags", bool_array(&flags));
        let parsed = tsc_bench::json::parse(&doc.pretty()).expect("parses");
        assert_eq!(
            parse_usize_array(require(&parsed, "idx").expect("idx")).expect("idx"),
            idx
        );
        assert_eq!(
            parse_bool_array(require(&parsed, "flags").expect("flags")).expect("flags"),
            flags
        );
    }

    #[test]
    fn malformed_words_are_rejected() {
        assert!(parse_hex_u64(&Json::Str("abc".into())).is_err());
        assert!(parse_hex_u64(&Json::Num(5.0)).is_err());
        assert!(parse_hex_u64(&Json::Str("zzzzzzzzzzzzzzzz".into())).is_err());
    }
}
