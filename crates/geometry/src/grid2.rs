//! Dense 2-D fields over uniform meshes.

use crate::point::{Index2, Point};
use crate::rect::Rect;

/// A dense row-major 2-D field: power maps, temperature maps, per-cell
/// conductivity multipliers.
///
/// The grid itself is index-space; methods taking a [`Rect`] `domain`
/// interpret the grid as covering that physical rectangle uniformly.
///
/// ```
/// use tsc_geometry::Grid2;
/// let mut g = Grid2::filled(4, 3, 1.0_f64);
/// g[(2, 1)] = 7.0;
/// assert_eq!(g[(2, 1)], 7.0);
/// assert_eq!(g.iter().copied().fold(0.0, f64::max), 7.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Grid2<T> {
    nx: usize,
    ny: usize,
    data: Vec<T>,
}

impl<T: Clone> Grid2<T> {
    /// Creates an `nx × ny` grid filled with `value`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn filled(nx: usize, ny: usize, value: T) -> Self {
        assert!(nx > 0 && ny > 0, "grid dimensions must be positive");
        Self {
            nx,
            ny,
            data: vec![value; nx * ny],
        }
    }

    /// Creates a grid from a generator called with each `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn from_fn(nx: usize, ny: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        assert!(nx > 0 && ny > 0, "grid dimensions must be positive");
        let mut data = Vec::with_capacity(nx * ny);
        for j in 0..ny {
            for i in 0..nx {
                data.push(f(i, j));
            }
        }
        Self { nx, ny, data }
    }
}

impl<T> Grid2<T> {
    /// Cells in x.
    #[must_use]
    pub const fn nx(&self) -> usize {
        self.nx
    }

    /// Cells in y.
    #[must_use]
    pub const fn ny(&self) -> usize {
        self.ny
    }

    /// Total cell count.
    #[must_use]
    pub const fn len(&self) -> usize {
        self.nx * self.ny
    }

    /// Always `false` (constructors reject empty grids); provided for
    /// API completeness.
    #[must_use]
    pub const fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrowing iterator over cells in row-major order.
    pub fn iter(&self) -> core::slice::Iter<'_, T> {
        self.data.iter()
    }

    /// Mutable iterator over cells in row-major order.
    pub fn iter_mut(&mut self) -> core::slice::IterMut<'_, T> {
        self.data.iter_mut()
    }

    /// Iterator yielding `(Index2, &T)`.
    pub fn enumerate(&self) -> impl Iterator<Item = (Index2, &T)> {
        let nx = self.nx;
        self.data
            .iter()
            .enumerate()
            .map(move |(f, v)| (Index2::new(f % nx, f / nx), v))
    }

    /// Checked access.
    #[must_use]
    pub fn get(&self, i: usize, j: usize) -> Option<&T> {
        if i < self.nx && j < self.ny {
            self.data.get(j * self.nx + i)
        } else {
            None
        }
    }

    /// Raw row-major slice.
    #[must_use]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Applies `f` to every cell, producing a new grid.
    #[must_use]
    pub fn map<U>(&self, f: impl Fn(&T) -> U) -> Grid2<U> {
        Grid2 {
            nx: self.nx,
            ny: self.ny,
            data: self.data.iter().map(f).collect(),
        }
    }

    /// Physical rectangle covered by cell `(i, j)` when the grid spans
    /// `domain`.
    ///
    /// # Panics
    ///
    /// Panics if `(i, j)` is out of bounds.
    #[must_use]
    pub fn cell_rect(&self, domain: &Rect, i: usize, j: usize) -> Rect {
        assert!(i < self.nx && j < self.ny, "cell ({i}, {j}) out of bounds");
        let dx = domain.width() / self.nx as f64;
        let dy = domain.height() / self.ny as f64;
        Rect::from_origin_size(
            domain.min_x() + dx * i as f64,
            domain.min_y() + dy * j as f64,
            dx,
            dy,
        )
    }

    /// Center of cell `(i, j)` within `domain`.
    ///
    /// # Panics
    ///
    /// Panics if `(i, j)` is out of bounds.
    #[must_use]
    pub fn cell_center(&self, domain: &Rect, i: usize, j: usize) -> Point {
        self.cell_rect(domain, i, j).center()
    }

    /// Index of the cell containing physical point `p` within `domain`,
    /// or `None` when outside.
    #[must_use]
    pub fn locate(&self, domain: &Rect, p: Point) -> Option<Index2> {
        if !domain.contains(p) {
            return None;
        }
        let fx = (p.x - domain.min_x()) / domain.width();
        let fy = (p.y - domain.min_y()) / domain.height();
        let i = ((fx * self.nx as f64) as usize).min(self.nx - 1);
        let j = ((fy * self.ny as f64) as usize).min(self.ny - 1);
        Some(Index2::new(i, j))
    }
}

impl<T: Clone> Grid2<T> {
    /// Sets every cell whose center falls inside `region` (interpreted
    /// within `domain`) to `value`. Returns the number of painted cells.
    pub fn paint_rect(&mut self, domain: &Rect, region: &Rect, value: T) -> usize {
        let mut painted = 0;
        for j in 0..self.ny {
            for i in 0..self.nx {
                if region.contains(self.cell_center(domain, i, j)) {
                    self.data[j * self.nx + i] = value.clone();
                    painted += 1;
                }
            }
        }
        painted
    }
}

impl Grid2<f64> {
    /// Adds `value` to every cell overlapping `region`, weighted by the
    /// overlapped area fraction of each cell — alias-free deposition that
    /// conserves `value × region area` exactly (for regions inside the
    /// domain) at any resolution.
    pub fn deposit_rect(&mut self, domain: &Rect, region: &Rect, value: f64) {
        let Some(clipped) = domain.intersection(region) else {
            return;
        };
        // Index range of possibly-overlapping cells.
        let fx0 = (clipped.min_x() - domain.min_x()) / domain.width();
        let fx1 = (clipped.max_x() - domain.min_x()) / domain.width();
        let fy0 = (clipped.min_y() - domain.min_y()) / domain.height();
        let fy1 = (clipped.max_y() - domain.min_y()) / domain.height();
        let i0 = ((fx0 * self.nx as f64).floor() as usize).min(self.nx - 1);
        let i1 = ((fx1 * self.nx as f64).ceil() as usize).min(self.nx);
        let j0 = ((fy0 * self.ny as f64).floor() as usize).min(self.ny - 1);
        let j1 = ((fy1 * self.ny as f64).ceil() as usize).min(self.ny);
        for j in j0..j1 {
            for i in i0..i1 {
                let cell = self.cell_rect(domain, i, j);
                if let Some(ov) = cell.intersection(&clipped) {
                    let frac = ov.area().square_meters() / cell.area().square_meters();
                    self.data[j * self.nx + i] += value * frac;
                }
            }
        }
    }

    /// Largest value (NaN-free inputs assumed).
    #[must_use]
    pub fn max_value(&self) -> f64 {
        self.data.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Smallest value.
    #[must_use]
    pub fn min_value(&self) -> f64 {
        self.data.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Arithmetic mean.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.data.iter().sum::<f64>() / self.data.len() as f64
    }

    /// Sum of all cells.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Index of the maximum cell.
    #[must_use]
    pub fn argmax(&self) -> Index2 {
        let (flat, _) =
            self.data
                .iter()
                .enumerate()
                .fold((0, f64::NEG_INFINITY), |(bi, bv), (i, &v)| {
                    if v > bv {
                        (i, v)
                    } else {
                        (bi, bv)
                    }
                });
        Index2::new(flat % self.nx, flat / self.nx)
    }

    /// Bilinear sample at a fractional cell coordinate `(u, v)` where
    /// `u ∈ [0, nx-1]`, `v ∈ [0, ny-1]` (clamped).
    #[must_use]
    pub fn sample(&self, u: f64, v: f64) -> f64 {
        let u = u.clamp(0.0, (self.nx - 1) as f64);
        let v = v.clamp(0.0, (self.ny - 1) as f64);
        let i0 = u.floor() as usize;
        let j0 = v.floor() as usize;
        let i1 = (i0 + 1).min(self.nx - 1);
        let j1 = (j0 + 1).min(self.ny - 1);
        let fu = u - i0 as f64;
        let fv = v - j0 as f64;
        let at = |i: usize, j: usize| self.data[j * self.nx + i];
        at(i0, j0) * (1.0 - fu) * (1.0 - fv)
            + at(i1, j0) * fu * (1.0 - fv)
            + at(i0, j1) * (1.0 - fu) * fv
            + at(i1, j1) * fu * fv
    }

    /// Resamples onto a new `nx × ny` resolution by bilinear interpolation.
    ///
    /// # Panics
    ///
    /// Panics if either target dimension is zero.
    #[must_use]
    pub fn resampled(&self, nx: usize, ny: usize) -> Grid2<f64> {
        assert!(nx > 0 && ny > 0, "grid dimensions must be positive");
        Grid2::from_fn(nx, ny, |i, j| {
            let u = if nx == 1 {
                0.0
            } else {
                i as f64 / (nx - 1) as f64 * (self.nx - 1) as f64
            };
            let v = if ny == 1 {
                0.0
            } else {
                j as f64 / (ny - 1) as f64 * (self.ny - 1) as f64
            };
            self.sample(u, v)
        })
    }
}

impl<T> core::ops::Index<(usize, usize)> for Grid2<T> {
    type Output = T;
    fn index(&self, (i, j): (usize, usize)) -> &T {
        assert!(i < self.nx && j < self.ny, "cell ({i}, {j}) out of bounds");
        &self.data[j * self.nx + i]
    }
}

impl<T> core::ops::IndexMut<(usize, usize)> for Grid2<T> {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut T {
        assert!(i < self.nx && j < self.ny, "cell ({i}, {j}) out of bounds");
        &mut self.data[j * self.nx + i]
    }
}

impl<T> core::ops::Index<Index2> for Grid2<T> {
    type Output = T;
    fn index(&self, ij: Index2) -> &T {
        &self[(ij.i, ij.j)]
    }
}

impl<T> core::ops::IndexMut<Index2> for Grid2<T> {
    fn index_mut(&mut self, ij: Index2) -> &mut T {
        &mut self[(ij.i, ij.j)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsc_units::Length;

    fn um(v: f64) -> Length {
        Length::from_micrometers(v)
    }

    #[test]
    fn from_fn_row_major() {
        let g = Grid2::from_fn(3, 2, |i, j| (i + 10 * j) as f64);
        assert_eq!(g.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        assert_eq!(g[(2, 1)], 12.0);
    }

    #[test]
    fn paint_rect_counts_cells() {
        let domain = Rect::from_origin_size(Length::ZERO, Length::ZERO, um(10.0), um(10.0));
        let mut g = Grid2::filled(10, 10, 0.0);
        let region = Rect::from_origin_size(um(0.0), um(0.0), um(5.0), um(5.0));
        let painted = g.paint_rect(&domain, &region, 1.0);
        assert_eq!(painted, 25);
        assert_eq!(g.sum(), 25.0);
    }

    #[test]
    fn locate_points() {
        let domain = Rect::from_origin_size(Length::ZERO, Length::ZERO, um(8.0), um(4.0));
        let g = Grid2::filled(8, 4, 0.0);
        let ij = g
            .locate(&domain, Point::new(um(3.5), um(1.5)))
            .expect("inside");
        assert_eq!(ij, Index2::new(3, 1));
        assert!(g.locate(&domain, Point::new(um(9.0), um(1.0))).is_none());
        // A point exactly on the max boundary snaps to the last cell.
        let edge = g
            .locate(&domain, Point::new(um(8.0), um(4.0)))
            .expect("boundary");
        assert_eq!(edge, Index2::new(7, 3));
    }

    #[test]
    fn statistics() {
        let g = Grid2::from_fn(4, 4, |i, j| (i * j) as f64);
        assert_eq!(g.max_value(), 9.0);
        assert_eq!(g.min_value(), 0.0);
        assert_eq!(g.argmax(), Index2::new(3, 3));
    }

    #[test]
    fn bilinear_sampling_interpolates() {
        let g = Grid2::from_fn(2, 2, |i, j| (i + j) as f64); // 0 1 / 1 2
        assert!((g.sample(0.5, 0.5) - 1.0).abs() < 1e-12);
        assert!((g.sample(1.0, 1.0) - 2.0).abs() < 1e-12);
        // Clamping beyond the domain.
        assert!((g.sample(5.0, 5.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn resampling_preserves_constants() {
        let g = Grid2::filled(5, 7, 3.25);
        let r = g.resampled(13, 3);
        assert!(r.iter().all(|&v| (v - 3.25).abs() < 1e-12));
        assert_eq!((r.nx(), r.ny()), (13, 3));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_panics() {
        let g = Grid2::filled(2, 2, 0.0);
        let _ = g[(2, 0)];
    }

    #[test]
    fn map_changes_type() {
        let g = Grid2::filled(2, 2, 2.0_f64);
        let h = g.map(|&v| v as i64 * 3);
        assert_eq!(h.as_slice(), &[6, 6, 6, 6]);
    }
}
