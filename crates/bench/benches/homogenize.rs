//! Benches of the BEOL homogenization (Fig. 7) kernels, on the in-repo
//! measured-median harness (`tsc_bench::timing`).

use tsc_bench::timing::Bench;
use tsc_homogenize::pillar::PillarDesign;
use tsc_homogenize::{extract_k, slice, Axis};
use tsc_materials::{THERMAL_DIELECTRIC_DESIGN, ULTRA_LOW_K_ILD};
use tsc_units::Length;

fn coarse_lower() -> slice::SliceGeometry {
    slice::SliceGeometry {
        resolution: Length::from_nanometers(125.0),
        extent: Length::from_micrometers(1.5),
        ..slice::SliceGeometry::default_lower()
    }
}

fn coarse_upper() -> slice::SliceGeometry {
    slice::SliceGeometry {
        resolution: Length::from_nanometers(80.0),
        extent: Length::from_micrometers(1.28),
        ..slice::SliceGeometry::default_upper()
    }
}

fn main() {
    let b = Bench::group("slice_generation");
    b.run("lower_beol_slice_build", 10, || {
        slice::lower_beol(ULTRA_LOW_K_ILD.conductivity, &coarse_lower())
    });
    b.run("upper_beol_slice_build", 10, || {
        slice::upper_beol(THERMAL_DIELECTRIC_DESIGN.conductivity, &coarse_upper())
    });

    let lower = slice::lower_beol(ULTRA_LOW_K_ILD.conductivity, &coarse_lower());
    let upper = slice::upper_beol(ULTRA_LOW_K_ILD.conductivity, &coarse_upper());
    let b = Bench::group("extract_k");
    b.run("lower_vertical", 10, || {
        extract_k(&lower, Axis::Z).expect("converges")
    });
    b.run("lower_lateral", 10, || {
        extract_k(&lower, Axis::X).expect("converges")
    });
    b.run("upper_vertical", 10, || {
        extract_k(&upper, Axis::Z).expect("converges")
    });

    let design = PillarDesign::asap7_100nm();
    let b = Bench::group("pillar_models");
    b.run("pillar_series_model", 20, || design.effective_vertical_k());
    let model = design.voxel_model(
        ULTRA_LOW_K_ILD.conductivity,
        Length::from_nanometers(500.0),
        Length::from_micrometers(1.0),
        15,
    );
    b.run("pillar_voxel_extraction", 10, || {
        extract_k(&model, Axis::Z).expect("converges")
    });
}
