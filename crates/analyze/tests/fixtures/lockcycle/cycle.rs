//! Deliberately-deadlockable fixture: two locks acquired in opposite
//! orders on two code paths. The lock-order pass must report exactly one
//! cycle (`Alpha.a_state -> Beta.b_state -> Alpha.a_state`) and the gate
//! binary must exit nonzero when pointed here with `--root`.

use std::sync::Mutex;

pub struct Alpha {
    pub a_state: Mutex<u32>,
}

pub struct Beta {
    pub b_state: Mutex<u32>,
}

pub fn forward(x: &Alpha, y: &Beta) -> u32 {
    let a = x.a_state.lock().unwrap();
    let b = y.b_state.lock().unwrap();
    *a + *b
}

pub fn backward(x: &Alpha, y: &Beta) -> u32 {
    let b = y.b_state.lock().unwrap();
    let a = x.a_state.lock().unwrap();
    *a + *b
}
