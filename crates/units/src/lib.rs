//! Unit-safe physical quantities for thermal/electrical chip simulation.
//!
//! Every physical value exchanged between the crates of this workspace is a
//! newtype over `f64` with an explicit SI storage convention, so that a
//! thermal conductivity can never be confused with a heat-transfer
//! coefficient, or a temperature with a temperature *difference* — the two
//! classic unit bugs in thermal simulators.
//!
//! # Conventions
//!
//! * Lengths are stored in **meters**, powers in **watts**, temperatures in
//!   **kelvin** (with Celsius constructors/accessors).
//! * Quantities are `Copy` and support the arithmetic that is physically
//!   meaningful: you can add two [`Power`]s, scale a [`Length`], divide two
//!   [`Area`]s to get a plain ratio, and multiply an [`Area`] by a
//!   [`HeatFlux`] to get a [`Power`] — but you cannot add a `Power` to an
//!   `Area`.
//! * Cross-quantity products/quotients live in [`ops`] and each encodes one
//!   physical law (e.g. `q = h · ΔT`).
//!
//! # Example
//!
//! ```
//! use tsc_units::{Length, HeatFlux, HeatTransferCoefficient};
//!
//! // A 1 cm x 1 cm die dissipating 636 W/cm^2 through a two-phase heatsink.
//! let side = Length::from_micrometers(10_000.0);
//! let area = side * side;
//! let flux = HeatFlux::from_watts_per_square_cm(636.0);
//! let power = flux * area;
//! assert!((power.watts() - 636.0).abs() < 1e-9);
//!
//! // Temperature rise across the heatsink: ΔT = q'' / h.
//! let h = HeatTransferCoefficient::new(1.0e6);
//! let rise = flux / h;
//! assert!((rise.kelvin() - 6.36).abs() < 1e-9);
//! ```

// No crate outside tsc-thermal may contain `unsafe` (enforced
// statically here and by `cargo run -p tsc-analyze`).
#![forbid(unsafe_code)]

/// Declares a `Copy` newtype quantity over `f64` with same-unit arithmetic.
///
/// Generates: constructors (`new`), raw accessor, `Add`/`Sub` with `Self`,
/// `Mul`/`Div` by `f64`, `Div<Self> -> f64` (dimensionless ratio), `Neg`,
/// `Sum`, ordering helpers (`min`/`max`/`clamp`/`abs`), and `Display`.
macro_rules! quantity {
    (
        $(#[$meta:meta])*
        $name:ident, $unit:literal, $ctor_doc:literal
    ) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(f64);

        impl $name {
            #[doc = $ctor_doc]
            #[must_use]
            pub const fn new(raw: f64) -> Self {
                Self(raw)
            }

            /// Zero value of this quantity.
            pub const ZERO: Self = Self(0.0);

            /// Raw value in the SI storage unit (
            #[doc = $unit]
            /// ).
            #[must_use]
            pub const fn get(self) -> f64 {
                self.0
            }

            /// Absolute value.
            #[must_use]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// The smaller of `self` and `other`.
            #[must_use]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// The larger of `self` and `other`.
            #[must_use]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Clamps `self` into `[lo, hi]`.
            ///
            /// # Panics
            ///
            /// Panics if `lo > hi` or either bound is NaN.
            #[must_use]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                Self(self.0.clamp(lo.0, hi.0))
            }

            /// `true` when the raw value is finite (not NaN/∞).
            #[must_use]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Approximate equality within `tol` (absolute, same unit).
            #[must_use]
            pub fn approx_eq(self, other: Self, tol: f64) -> bool {
                (self.0 - other.0).abs() <= tol
            }
        }

        impl core::ops::Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl core::ops::AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl core::ops::Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl core::ops::SubAssign for $name {
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl core::ops::Neg for $name {
            type Output = Self;
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl core::ops::Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl core::ops::Mul<$name> for f64 {
            type Output = $name;
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl core::ops::Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl core::ops::Div for $name {
            type Output = f64;
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl core::iter::Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|v| v.0).sum())
            }
        }

        impl<'a> core::iter::Sum<&'a $name> for $name {
            fn sum<I: Iterator<Item = &'a Self>>(iter: I) -> Self {
                Self(iter.map(|v| v.0).sum())
            }
        }

        impl core::fmt::Display for $name {
            fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                write!(f, "{} {}", self.0, $unit)
            }
        }
    };
}

mod electrical;
mod length;
pub mod ops;
mod power;
mod ratio;
mod temperature;
mod thermal;

pub use electrical::{
    Capacitance, Delay, ElectricalResistance, Frequency, RelativePermittivity, VACUUM_PERMITTIVITY,
};
pub use length::{Area, Length, Volume};
pub use power::{HeatFlux, Power, VolumetricHeat};
pub use ratio::Ratio;
pub use temperature::{TempDelta, Temperature};
pub use thermal::{
    AreaThermalResistance, HeatTransferCoefficient, ThermalConductance, ThermalConductivity,
    ThermalResistance,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantities_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Length>();
        assert_send_sync::<Power>();
        assert_send_sync::<Temperature>();
        assert_send_sync::<ThermalConductivity>();
    }

    #[test]
    fn same_unit_arithmetic() {
        let a = Power::from_watts(2.0);
        let b = Power::from_watts(3.0);
        assert_eq!((a + b).watts(), 5.0);
        assert_eq!((b - a).watts(), 1.0);
        assert_eq!((a * 2.0).watts(), 4.0);
        assert_eq!((b / 3.0).watts(), 1.0);
        assert!((b / a - 1.5).abs() < 1e-12);
        assert_eq!((-a).watts(), -2.0);
    }

    #[test]
    fn sum_over_iterator() {
        let total: Power = (1..=4).map(|i| Power::from_watts(f64::from(i))).sum();
        assert_eq!(total.watts(), 10.0);
    }

    #[test]
    fn min_max_clamp() {
        let lo = Length::from_nanometers(100.0);
        let hi = Length::from_nanometers(300.0);
        let x = Length::from_nanometers(500.0);
        assert_eq!(x.clamp(lo, hi), hi);
        assert_eq!(lo.min(hi), lo);
        assert_eq!(lo.max(hi), hi);
    }

    #[test]
    fn display_includes_unit() {
        let k = ThermalConductivity::new(105.7);
        assert_eq!(format!("{k}"), "105.7 W/m/K");
    }
}
