//! Concurrency regression tests: request coalescing, queue backpressure,
//! waiter-side deadlines, and graceful shutdown draining accepted work.
//!
//! All tests run with a single worker so scheduling is deterministic: a
//! "blocker" job occupies the worker while the behaviour under test is
//! staged behind it in the queue.

mod common;

use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use common::{one_shot, TestClient};
use tsc_serve::{Server, ServerConfig};

/// A solve expensive enough (~hundreds of ms on one core) to hold the
/// single worker while other requests are staged.
const BLOCKER: &[u8] = br#"{"design": "gemmini", "tiers": 3, "lateral_cells": 12}"#;
/// A cheap, distinct solve used as the staged request.
const SMALL: &[u8] = br#"{"design": "gemmini-memory", "tiers": 2, "lateral_cells": 6}"#;

fn single_worker_server(queue_cap: usize) -> Server {
    Server::start(ServerConfig {
        workers: 1,
        queue_cap,
        pool_cap: 8,
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port")
}

/// Wait until the single worker has picked up a job.
fn wait_for_inflight(server: &Server) {
    let start = Instant::now();
    while server.metrics().inflight.get() == 0 {
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "worker never picked up the blocker"
        );
        thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn identical_concurrent_solves_coalesce_to_one_backend_solve() {
    const K: usize = 8;
    let server = single_worker_server(32);
    let addr = server.addr();

    // Occupy the worker so every coalescing candidate arrives while the
    // shared slot is still registered.
    let blocker = thread::spawn(move || one_shot(addr, "POST", "/v1/solve", &[], BLOCKER));
    wait_for_inflight(&server);

    // K identical requests on pre-connected sockets, released together.
    let barrier = Arc::new(std::sync::Barrier::new(K));
    let clients: Vec<_> = (0..K)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            let mut client = TestClient::connect(addr);
            thread::spawn(move || {
                barrier.wait();
                client.request("POST", "/v1/solve", &[], SMALL)
            })
        })
        .collect();

    let bodies: Vec<String> = clients
        .into_iter()
        .map(|c| {
            let resp = c.join().expect("client thread");
            assert_eq!(resp.status, 200, "body: {}", resp.body_str());
            resp.body_str()
        })
        .collect();
    assert_eq!(blocker.join().expect("blocker thread").status, 200);

    // All K bodies are bitwise identical — they are clones of one result.
    for body in &bodies[1..] {
        assert_eq!(body, &bodies[0], "coalesced responses must be identical");
    }

    // Exactly one backend solve for the K identical requests (plus the
    // blocker), and K-1 coalesced waiters.
    assert_eq!(server.metrics().backend_solves_total.get(), 2);
    assert_eq!(server.metrics().coalesced_total.get(), (K - 1) as u64);

    server.shutdown();
}

#[test]
fn full_queue_rejects_with_429_but_never_drops_accepted_jobs() {
    let server = single_worker_server(1);
    let addr = server.addr();

    let blocker = thread::spawn(move || one_shot(addr, "POST", "/v1/solve", &[], BLOCKER));
    wait_for_inflight(&server);

    // The queue (capacity 1) now takes exactly one staged job.
    let staged = thread::spawn(move || one_shot(addr, "POST", "/v1/solve", &[], SMALL));
    let start = Instant::now();
    while server.metrics().queue_depth.get() == 0 {
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "staged job never queued"
        );
        thread::sleep(Duration::from_millis(2));
    }

    // A third, distinct request must be shed with 429 + Retry-After.
    let rejected = one_shot(
        addr,
        "POST",
        "/v1/solve",
        &[],
        br#"{"design": "rocket", "tiers": 2, "lateral_cells": 6}"#,
    );
    assert_eq!(rejected.status, 429);
    assert_eq!(rejected.header("retry-after"), Some("1"));

    // The accepted (staged) job was not dropped by the rejection.
    assert_eq!(blocker.join().expect("blocker").status, 200);
    assert_eq!(staged.join().expect("staged").status, 200);
    assert_eq!(server.metrics().rejected_queue_full.get(), 1);
    assert_eq!(server.metrics().backend_solves_total.get(), 2);

    server.shutdown();
}

#[test]
fn queued_request_past_its_deadline_gets_504_yet_still_executes() {
    let server = single_worker_server(8);
    let addr = server.addr();

    let blocker = thread::spawn(move || one_shot(addr, "POST", "/v1/solve", &[], BLOCKER));
    wait_for_inflight(&server);

    // Deadline far shorter than the blocker: expires while queued.
    let resp = one_shot(addr, "POST", "/v1/solve", &[("X-Deadline-Ms", "1")], SMALL);
    assert_eq!(resp.status, 504);
    assert_eq!(blocker.join().expect("blocker").status, 200);
    assert_eq!(server.metrics().deadline_timeouts.get(), 1);

    // The timed-out job still executes (accepted work is never dropped):
    // the worker drains it after the blocker.
    let start = Instant::now();
    while server.metrics().backend_solves_total.get() < 2 {
        assert!(
            start.elapsed() < Duration::from_secs(60),
            "timed-out job was dropped"
        );
        thread::sleep(Duration::from_millis(5));
    }

    server.shutdown();
}

#[test]
fn graceful_shutdown_drains_in_flight_work() {
    let server = single_worker_server(8);
    let addr = server.addr();

    let inflight = thread::spawn(move || one_shot(addr, "POST", "/v1/solve", &[], BLOCKER));
    wait_for_inflight(&server);

    // Shut down while the solve is running: the client must still get its
    // 200 — accepted work drains before the workers exit.
    server.shutdown();
    let resp = inflight.join().expect("in-flight client");
    assert_eq!(resp.status, 200, "body: {}", resp.body_str());

    // And the listener is gone.
    thread::sleep(Duration::from_millis(50));
    assert!(std::net::TcpStream::connect(addr).is_err());
}
