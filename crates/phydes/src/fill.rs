//! Timing-aware dummy metal fill and dummy thermal vias — the
//! conventional-flow cooling knob (Sec. IIIB, Fig. 7b).
//!
//! Innovus' timing-aware fill inserts floating metal where routing
//! leaves room; the paper calibrates it against TSMC fill statistics
//! (mean density within 5 %) and shows (Fig. 7b) that *lowering placement
//! density — i.e. spending area — buys fill density*, which buys BEOL
//! conductivity, which buys cooling. The price is coupling capacitance
//! (delay) and footprint.
//!
//! This module reproduces those published relations:
//!
//! * [`FillModel::achievable_fill`] — fill density vs area slack, a
//!   linear fit of Fig. 7b anchored at 44 % baseline fill;
//! * [`FillModel::vertical_conductivity_gain`] — dummy *vias* convert a
//!   fraction of the extra fill into quasi-continuous vertical columns;
//! * [`FillModel::coupling_capacitance`] — extra sidewall load on signal
//!   wires from the inserted floating metal.

use tsc_units::{Ratio, ThermalConductivity};

/// The calibrated dummy-fill model.
#[derive(Debug, Clone, PartialEq)]
pub struct FillModel {
    /// Fill density achieved with no area slack (Fig. 7b left edge).
    pub baseline_fill: Ratio,
    /// Extra fill per unit area slack (Fig. 7b slope: ~0.10 fill per
    /// ~23 % area → ≈0.44 per unit slack).
    pub fill_per_slack: f64,
    /// Hard cap on total fill density (routability limit).
    pub max_fill: Ratio,
    /// Fraction of *extra* fill realized as continuous dummy-via columns
    /// (thermal fill is via-rich, but vias cannot always stack).
    pub via_continuity: f64,
    /// Extra signal-wire capacitance per unit of extra fill density.
    pub cap_per_fill: f64,
}

impl FillModel {
    /// The model calibrated to the paper: Fig. 7b slope, and via
    /// continuity / capacitance coefficients set so the dummy-via flow
    /// reaches 12 Gemmini tiers at 78 % footprint / 17 % delay (Table I).
    #[must_use]
    pub fn calibrated() -> Self {
        Self {
            baseline_fill: Ratio::from_percent(44.0),
            fill_per_slack: 0.44,
            max_fill: Ratio::from_percent(85.0),
            via_continuity: 0.06,
            cap_per_fill: 0.9,
        }
    }

    /// Total achievable fill density at a given area slack (footprint
    /// penalty spent on fill).
    ///
    /// # Panics
    ///
    /// Panics if `area_slack` is negative.
    #[must_use]
    pub fn achievable_fill(&self, area_slack: Ratio) -> Ratio {
        assert!(
            area_slack.fraction() >= 0.0,
            "area slack cannot be negative, got {area_slack}"
        );
        let f = self.baseline_fill.fraction() + self.fill_per_slack * area_slack.fraction();
        Ratio::from_fraction(f).min(self.max_fill)
    }

    /// Fill density *beyond* the baseline at a given slack — the part
    /// that buys thermal benefit.
    #[must_use]
    pub fn extra_fill(&self, area_slack: Ratio) -> Ratio {
        self.achievable_fill(area_slack) - self.baseline_fill
    }

    /// Effective vertical BEOL conductivity after dummy-via fill at the
    /// given area slack: extra fill × via continuity of quasi-continuous
    /// copper columns blended with the baseline by the parallel rule.
    #[must_use]
    pub fn vertical_conductivity_gain(
        &self,
        base: ThermalConductivity,
        copper: ThermalConductivity,
        area_slack: Ratio,
    ) -> ThermalConductivity {
        let f_cont = self.via_continuity * self.extra_fill(area_slack).fraction();
        ThermalConductivity::new((1.0 - f_cont) * base.get() + f_cont * copper.get())
    }

    /// Lateral conductivity also improves with fill (floating plates
    /// spread heat in-plane about 3× better than via columns help
    /// vertically, since plates are continuous within a layer).
    #[must_use]
    pub fn lateral_conductivity_gain(
        &self,
        base: ThermalConductivity,
        copper: ThermalConductivity,
        area_slack: Ratio,
    ) -> ThermalConductivity {
        let f_lat = 3.0 * self.via_continuity * self.extra_fill(area_slack).fraction();
        ThermalConductivity::new((1.0 - f_lat) * base.get() + f_lat * copper.get())
    }

    /// Extra signal capacitance fraction caused by the extra fill.
    #[must_use]
    pub fn coupling_capacitance(&self, area_slack: Ratio) -> f64 {
        self.cap_per_fill * self.extra_fill(area_slack).fraction()
    }
}

impl Default for FillModel {
    fn default() -> Self {
        Self::calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7b_anchors() {
        // Fig. 7b: ~0.44 fill at the tight floorplan, ~0.54 at ~23% more
        // area.
        let m = FillModel::calibrated();
        assert!((m.achievable_fill(Ratio::ZERO).percent() - 44.0).abs() < 1e-9);
        let grown = m.achievable_fill(Ratio::from_percent(23.0));
        assert!((grown.percent() - 54.0).abs() < 0.5, "got {grown}");
    }

    #[test]
    fn fill_saturates() {
        let m = FillModel::calibrated();
        let huge = m.achievable_fill(Ratio::from_percent(500.0));
        assert!(huge.approx_eq(m.max_fill, 1e-12));
    }

    #[test]
    fn conductivity_gain_monotone_in_slack() {
        let m = FillModel::calibrated();
        let base = ThermalConductivity::new(0.35);
        let cu = ThermalConductivity::new(105.0);
        let mut last = 0.0;
        for slack in [0.0, 10.0, 34.0, 78.0] {
            let k = m
                .vertical_conductivity_gain(base, cu, Ratio::from_percent(slack))
                .get();
            assert!(k >= last, "k must grow with slack");
            last = k;
        }
        assert!(
            (last - 2.5).abs() < 0.6,
            "78% slack lands near 2.5 W/m/K, got {last}"
        );
    }

    #[test]
    fn zero_slack_means_no_thermal_benefit() {
        let m = FillModel::calibrated();
        let base = ThermalConductivity::new(0.35);
        let cu = ThermalConductivity::new(105.0);
        let k = m.vertical_conductivity_gain(base, cu, Ratio::ZERO);
        assert!((k.get() - 0.35).abs() < 1e-12);
        assert_eq!(m.coupling_capacitance(Ratio::ZERO), 0.0);
    }

    #[test]
    fn lateral_gain_exceeds_vertical_gain() {
        let m = FillModel::calibrated();
        let base = ThermalConductivity::new(0.35);
        let cu = ThermalConductivity::new(105.0);
        let slack = Ratio::from_percent(50.0);
        assert!(
            m.lateral_conductivity_gain(base, cu, slack).get()
                > m.vertical_conductivity_gain(base, cu, slack).get()
        );
    }

    #[test]
    #[should_panic(expected = "cannot be negative")]
    fn negative_slack_rejected() {
        let _ = FillModel::calibrated().achievable_fill(Ratio::from_percent(-1.0));
    }
}
