//! Shared raw-TCP test client for the serve integration suites.
//!
//! Deliberately independent of the server's own HTTP code: responses are
//! parsed with a separate minimal reader so a server-side framing bug
//! cannot cancel out in the tests.

// Each integration-test binary compiles this module separately, and not
// every suite uses every helper (the transient suite only needs request
// formatting — its NDJSON framing is incompatible with `TestClient`).
#![allow(dead_code)]

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use tsc_bench::json::{self, Json};

/// A parsed response.  Shared across suites; not every suite reads every
/// field.
#[derive(Debug)]
pub struct TestResponse {
    pub status: u16,
    #[allow(dead_code)]
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl TestResponse {
    #[allow(dead_code)]
    pub fn header(&self, name: &str) -> Option<&str> {
        let want = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| k.to_ascii_lowercase() == want)
            .map(|(_, v)| v.as_str())
    }

    pub fn body_str(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// One persistent connection; supports several requests (keep-alive) and
/// reading multiple pipelined responses.
pub struct TestClient {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl TestClient {
    pub fn connect(addr: SocketAddr) -> TestClient {
        let stream = TcpStream::connect(addr).expect("connect to test server");
        stream
            .set_read_timeout(Some(Duration::from_millis(200)))
            .expect("set read timeout");
        TestClient {
            stream,
            buf: Vec::new(),
        }
    }

    pub fn send_raw(&mut self, bytes: &[u8]) {
        self.stream.write_all(bytes).expect("write request");
    }

    /// Half-close the write side (simulates a client that truncates).
    /// Shared across suites; not every suite exercises truncation.
    #[allow(dead_code)]
    pub fn shutdown_write(&mut self) {
        let _ = self.stream.shutdown(std::net::Shutdown::Write);
    }

    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &[u8],
    ) -> TestResponse {
        self.send_raw(&format_request(method, path, headers, body));
        self.read_response(Duration::from_secs(120))
            .expect("response within deadline")
    }

    /// Read one response, waiting at most `deadline` for completion.
    /// `None` if the server closed the connection without a (complete)
    /// response or the deadline passed.
    pub fn read_response(&mut self, deadline: Duration) -> Option<TestResponse> {
        let start = Instant::now();
        let mut chunk = [0u8; 4096];
        loop {
            if let Some((response, consumed)) = try_parse_response(&self.buf) {
                self.buf.drain(..consumed);
                return Some(response);
            }
            if start.elapsed() > deadline {
                return None;
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => return None,
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
                Err(_) => return None,
            }
        }
    }
}

pub fn format_request(method: &str, path: &str, headers: &[(&str, &str)], body: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(format!("{method} {path} HTTP/1.1\r\nHost: test\r\n").as_bytes());
    for (k, v) in headers {
        out.extend_from_slice(format!("{k}: {v}\r\n").as_bytes());
    }
    if !body.is_empty() || method == "POST" {
        out.extend_from_slice(format!("Content-Length: {}\r\n", body.len()).as_bytes());
    }
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(body);
    out
}

fn try_parse_response(buf: &[u8]) -> Option<(TestResponse, usize)> {
    let head_end = buf.windows(4).position(|w| w == b"\r\n\r\n")? + 4;
    let head = std::str::from_utf8(&buf[..head_end - 4]).ok()?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next()?;
    let status: u16 = status_line.split(' ').nth(1)?.parse().ok()?;
    let headers: Vec<(String, String)> = lines
        .filter_map(|line| {
            let (k, v) = line.split_once(':')?;
            Some((k.trim().to_string(), v.trim().to_string()))
        })
        .collect();
    let content_length: usize = headers
        .iter()
        .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
        .and_then(|(_, v)| v.parse().ok())
        .unwrap_or(0);
    let total = head_end + content_length;
    if buf.len() < total {
        return None;
    }
    Some((
        TestResponse {
            status,
            headers,
            body: buf[head_end..total].to_vec(),
        },
        total,
    ))
}

/// One-shot request on a fresh connection.
pub fn one_shot(
    addr: SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &[u8],
) -> TestResponse {
    TestClient::connect(addr).request(method, path, headers, body)
}

/// A raw NDJSON client for `/v1/transient` streaming sessions.
/// `TestClient` cannot read these: the stream is close-delimited, not
/// `Content-Length`-framed.
pub struct SessionClient {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl SessionClient {
    /// Connect and send the opening `POST /v1/transient`.
    pub fn open(addr: SocketAddr, body: &str, headers: &[(&str, &str)]) -> SessionClient {
        Self::open_raw(addr, "POST", "/v1/transient", headers, body.as_bytes())
    }

    /// Connect and send an arbitrary stream-opening request (the jobs
    /// suite uses `GET /v1/jobs/{id}/events`).
    pub fn open_raw(
        addr: SocketAddr,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &[u8],
    ) -> SessionClient {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_millis(200)))
            .expect("read timeout");
        let request = format_request(method, path, headers, body);
        stream.write_all(&request).expect("send open request");
        SessionClient {
            stream,
            buf: Vec::new(),
        }
    }

    fn fill(&mut self, deadline: Duration, until: impl Fn(&[u8]) -> Option<usize>) -> Vec<u8> {
        let start = Instant::now();
        let mut chunk = [0u8; 4096];
        loop {
            if let Some(end) = until(&self.buf) {
                return self.buf.drain(..end).collect();
            }
            assert!(
                start.elapsed() < deadline,
                "no data within {deadline:?}; buffered: {:?}",
                String::from_utf8_lossy(&self.buf)
            );
            match self.stream.read(&mut chunk) {
                Ok(0) => panic!(
                    "server closed early; buffered: {:?}",
                    String::from_utf8_lossy(&self.buf)
                ),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
                Err(e) => panic!("read failed: {e}"),
            }
        }
    }

    /// Read the HTTP response head; returns the status code.
    pub fn read_head(&mut self, deadline: Duration) -> u16 {
        let head = self.fill(deadline, |buf| {
            buf.windows(4).position(|w| w == b"\r\n\r\n").map(|p| p + 4)
        });
        let text = String::from_utf8_lossy(&head);
        let status = text
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("bad status line: {text:?}"));
        if status == 200 {
            assert!(
                text.to_ascii_lowercase().contains("application/x-ndjson"),
                "streaming head must advertise NDJSON: {text:?}"
            );
        }
        status
    }

    pub fn send(&mut self, line: &str) {
        self.stream
            .write_all(format!("{line}\n").as_bytes())
            .expect("send command");
    }

    /// Read the next event line as JSON.
    pub fn next_event(&mut self, deadline: Duration) -> Json {
        let line = self.fill(deadline, |buf| {
            buf.iter().position(|&b| b == b'\n').map(|p| p + 1)
        });
        let text = String::from_utf8(line).expect("event is UTF-8");
        json::parse(text.trim()).unwrap_or_else(|e| panic!("bad event {text:?}: {e}"))
    }

    /// True once the server closes the stream (close-delimited framing).
    pub fn at_eof(&mut self, deadline: Duration) -> bool {
        let start = Instant::now();
        let mut chunk = [0u8; 256];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => return true,
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
                Err(_) => return true,
            }
            if start.elapsed() > deadline {
                return false;
            }
        }
    }
}

/// Extract a required string field from a session event.
pub fn field_str(event: &Json, key: &str) -> String {
    event
        .get(key)
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("missing {key:?} in {}", event.pretty()))
        .to_string()
}

/// Extract a required numeric field from a session event.
pub fn field_num(event: &Json, key: &str) -> f64 {
    event
        .get(key)
        .and_then(Json::as_f64)
        .unwrap_or_else(|| panic!("missing {key:?} in {}", event.pretty()))
}

/// The `event` discriminator of a session event.
pub fn event_kind(event: &Json) -> String {
    field_str(event, "event")
}
