//! Property tests for the [`SolveContext`] reuse cache: with warm
//! starting disabled, a context-mediated solve must be *bitwise*
//! identical to a direct [`CgSolver::solve`] — across mesh dimensions,
//! power perturbations, and repeated cache hits — because the cache may
//! only skip redundant assembly work, never change arithmetic. The warm
//! path is also checked (to physical tolerance, plus its stats
//! contract), since a warm start legitimately changes the iterate
//! sequence.

use tsc_rng::Rng64;
use tsc_thermal::{CgSolver, Heatsink, Problem, SolveContext};
use tsc_units::{Length, Power, ThermalConductivity};
use tsc_verify::assert_close;

fn problem(nx: usize, ny: usize, nz: usize, powers: &[(usize, usize, usize, f64)]) -> Problem {
    let mut p = Problem::uniform_block(
        nx,
        ny,
        nz,
        Length::from_millimeters(1.0),
        Length::from_millimeters(1.0),
        Length::from_micrometers(10.0 * nz as f64),
        ThermalConductivity::new(110.0),
    );
    p.set_bottom_heatsink(Heatsink::two_phase());
    for &(i, j, k, w) in powers {
        p.add_power(i, j, k, Power::from_watts(w));
    }
    p
}

fn random_powers(
    rng: &mut Rng64,
    nx: usize,
    ny: usize,
    nz: usize,
    count: usize,
) -> Vec<(usize, usize, usize, f64)> {
    (0..count)
        .map(|_| {
            (
                rng.gen_range(0..nx),
                rng.gen_range(0..ny),
                rng.gen_range(0..nz),
                0.2 + rng.gen_f64() * 2.0,
            )
        })
        .collect()
}

fn assert_bitwise_equal(a: &tsc_thermal::Solution, b: &tsc_thermal::Solution, what: &str) {
    let mismatch = a
        .temperatures
        .iter_kelvin()
        .zip(b.temperatures.iter_kelvin())
        .position(|(x, y)| x.to_bits() != y.to_bits());
    assert!(
        mismatch.is_none(),
        "{what}: fields differ bitwise at flat cell {mismatch:?}"
    );
}

#[test]
fn cold_context_solves_match_direct_solves_bitwise() {
    let solver = CgSolver::new();
    let mut rng = Rng64::seed_from_u64(0x5eed);
    for (nx, ny, nz) in [(6, 6, 4), (9, 5, 3), (4, 12, 6)] {
        let mut ctx = SolveContext::new().with_warm_start(false);
        for round in 0..3 {
            let powers = random_powers(&mut rng, nx, ny, nz, 5);
            let p = problem(nx, ny, nz, &powers);
            let via_ctx = ctx.solve(&p, &solver).expect("context solve");
            let direct = solver.solve(&p).expect("direct solve");
            assert_bitwise_equal(&via_ctx, &direct, &format!("{nx}x{ny}x{nz} round {round}"));
        }
        let stats = ctx.stats();
        assert_eq!(stats.solves, 3);
        assert_eq!(stats.warm_starts, 0, "warm starting was disabled");
    }
}

#[test]
fn power_only_changes_reuse_the_operator_and_stay_bitwise() {
    // Same geometry, power deltas only: the operator must be reused
    // (assembled once) and the fields must still match direct solves
    // bitwise with warm starting off.
    let solver = CgSolver::new();
    let mut rng = Rng64::seed_from_u64(0xcafe);
    let (nx, ny, nz) = (8, 8, 5);
    let mut ctx = SolveContext::new().with_warm_start(false);
    for round in 0..4 {
        let powers = random_powers(&mut rng, nx, ny, nz, 3 + round);
        let p = problem(nx, ny, nz, &powers);
        let via_ctx = ctx.solve(&p, &solver).expect("context solve");
        let direct = solver.solve(&p).expect("direct solve");
        assert_bitwise_equal(&via_ctx, &direct, &format!("power delta round {round}"));
    }
    let stats = ctx.stats();
    assert_eq!(stats.solves, 4);
    assert_eq!(stats.assemblies, 1, "power deltas must not re-assemble");
    assert_eq!(stats.operator_reuses, 3);
}

#[test]
fn warm_started_solves_agree_physically_and_count_in_stats() {
    let solver = CgSolver::new();
    let (nx, ny, nz) = (8, 8, 5);
    let mut ctx = SolveContext::new(); // warm starting on (default)
    let p1 = problem(nx, ny, nz, &[(4, 4, 4, 1.5)]);
    let p2 = problem(nx, ny, nz, &[(4, 4, 4, 1.6)]);
    let first = ctx.solve(&p1, &solver).expect("first solve");
    let second = ctx.solve(&p2, &solver).expect("warm solve");
    let direct = solver.solve(&p2).expect("direct solve");
    // Warm starting changes the iterate path, so only physical
    // agreement is required — to well under a millikelvin at the
    // solver's tolerance.
    for ((w, d), cell) in second
        .temperatures
        .iter_kelvin()
        .zip(direct.temperatures.iter_kelvin())
        .zip(0..)
    {
        assert_close!(w, d, abs = 1e-3, "warm vs direct at flat cell {}", cell);
    }
    assert!(
        first.temperatures.max_temperature() < second.temperatures.max_temperature(),
        "more power, hotter stack"
    );
    let stats = ctx.stats();
    assert_eq!(stats.solves, 2);
    assert_eq!(stats.warm_starts, 1);
    assert_eq!(stats.assemblies, 1);
}

#[test]
fn ambient_map_changes_invalidate_the_cached_operator() {
    // The PR's MMS boundary hook feeds per-column ambient maps into the
    // operator key: changing the map must re-assemble, not silently
    // reuse stale boundary data.
    let solver = CgSolver::new();
    let (nx, ny, nz) = (6, 6, 4);
    let mut ctx = SolveContext::new().with_warm_start(false);
    let mut p = problem(nx, ny, nz, &[(3, 3, 3, 1.0)]);
    let base = ctx.solve(&p, &solver).expect("base solve");
    p.set_bottom_ambient_map(tsc_geometry::Grid2::from_fn(nx, ny, |i, _| {
        300.0 + 5.0 * i as f64
    }));
    let tilted = ctx.solve(&p, &solver).expect("tilted solve");
    let stats = ctx.stats();
    assert_eq!(stats.assemblies, 2, "ambient-map change must re-assemble");
    let direct = solver.solve(&p).expect("direct solve");
    assert_bitwise_equal(&tilted, &direct, "tilted ambient");
    assert!(
        (tilted.temperatures.max_temperature().kelvin()
            - base.temperatures.max_temperature().kelvin())
        .abs()
            > 0.1,
        "the tilted ambient visibly changes the field"
    );
}
