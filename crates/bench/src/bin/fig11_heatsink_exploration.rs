//! Fig. 11 — heatsink exploration: two-phase (boiling, 100 °C ambient)
//! vs Si-integrated microfluidics (room-temperature water), at both the
//! 125 °C and 85 °C junction limits.

use tsc_bench::{banner, compare, series};
use tsc_core::flows::{CoolingStrategy, FlowConfig};
use tsc_core::scaling::{max_tiers, tier_curve};
use tsc_designs::gemmini;
use tsc_thermal::Heatsink;
use tsc_units::{Ratio, Temperature};

fn main() -> Result<(), tsc_thermal::SolveError> {
    banner("Fig. 11: Gemmini peak temperature vs tiers, two heatsinks");
    let d = gemmini::design();
    let base = |strategy, heatsink| FlowConfig {
        strategy,
        heatsink,
        area_budget: Ratio::from_percent(10.0),
        delay_budget: Ratio::from_percent(2.8),
        lateral_cells: 14,
        ..FlowConfig::default()
    };

    for (hs_name, hs) in [
        ("two-phase (h=1e6, 100 °C)", Heatsink::two_phase()),
        ("microfluidic (h=1e5, 25 °C)", Heatsink::microfluidic()),
    ] {
        for strategy in [
            CoolingStrategy::ConventionalDummyVias,
            CoolingStrategy::Scaffolding,
        ] {
            let curve = tier_curve(&d, &base(strategy, hs), 14)?;
            series(
                &format!("{hs_name} / {strategy}"),
                curve.iter().map(|p| (p.tiers as f64, p.junction_celsius)),
            );
        }
    }

    banner("supported tiers (Fig. 11 / Observation 3 anchors)");
    let count = |strategy, hs, limit_c: f64| -> Result<usize, tsc_thermal::SolveError> {
        let cfg = FlowConfig {
            t_limit: Temperature::from_celsius(limit_c),
            ..base(strategy, hs)
        };
        max_tiers(&d, &cfg, 14)
    };
    compare(
        "two-phase, scaffolding, Tj<125 °C",
        "12 tiers",
        format!(
            "{} tiers",
            count(CoolingStrategy::Scaffolding, Heatsink::two_phase(), 125.0)?
        ),
    );
    compare(
        "two-phase, conventional, Tj<125 °C",
        "3 tiers",
        format!(
            "{} tiers",
            count(
                CoolingStrategy::ConventionalDummyVias,
                Heatsink::two_phase(),
                125.0
            )?
        ),
    );
    compare(
        "microfluidic, scaffolding, Tj<125 °C",
        "8 tiers",
        format!(
            "{} tiers",
            count(
                CoolingStrategy::Scaffolding,
                Heatsink::microfluidic(),
                125.0
            )?
        ),
    );
    compare(
        "microfluidic, conventional, Tj<125 °C",
        "5 tiers",
        format!(
            "{} tiers",
            count(
                CoolingStrategy::ConventionalDummyVias,
                Heatsink::microfluidic(),
                125.0
            )?
        ),
    );
    compare(
        "microfluidic, scaffolding, Tj<85 °C",
        "5 tiers",
        format!(
            "{} tiers",
            count(CoolingStrategy::Scaffolding, Heatsink::microfluidic(), 85.0)?
        ),
    );
    compare(
        "microfluidic, conventional, Tj<85 °C",
        "3 tiers",
        format!(
            "{} tiers",
            count(
                CoolingStrategy::ConventionalDummyVias,
                Heatsink::microfluidic(),
                85.0
            )?
        ),
    );
    // The two-phase sink cannot serve an 85 °C limit at all: its coolant
    // boils at 100 °C.
    compare(
        "two-phase sink at Tj<85 °C",
        "impossible (boiling water)",
        format!(
            "{} tiers",
            count(CoolingStrategy::Scaffolding, Heatsink::two_phase(), 85.0)?
        ),
    );
    Ok(())
}
