//! Physics regressions for streamed transient stepping: the session API
//! in `tsc-serve` promises that driving a pooled [`TransientRun`] one
//! step at a time, with delta-encoded power restaging between steps, is
//! *exactly* the offline simulation — these tests pin that contract at
//! the solver level, bitwise where the arithmetic allows it.

use tsc_geometry::Grid3;
use tsc_thermal::transient::{capacity, RunawayDetector, StepLimits, TransientRun};
use tsc_thermal::{CgSolver, Heatsink, Problem};
use tsc_units::{Length, Power, Temperature, ThermalConductivity};

/// A small powered block with a bottom heatsink; `watts` at (2,2,2).
fn problem(watts: f64) -> Problem {
    let mut p = Problem::uniform_block(
        4,
        4,
        3,
        Length::from_millimeters(1.0),
        Length::from_millimeters(1.0),
        Length::from_micrometers(100.0),
        ThermalConductivity::new(100.0),
    );
    p.set_bottom_heatsink(Heatsink::two_phase());
    if watts > 0.0 {
        p.add_power(2, 2, 2, Power::from_watts(watts));
    }
    p
}

fn caps(p: &Problem) -> Grid3<f64> {
    Grid3::filled(p.dim(), capacity::SILICON)
}

fn ambient() -> Temperature {
    Heatsink::two_phase().ambient
}

/// A DVFS-style schedule: per-step watts driving the restage deltas.
const SCHEDULE: [f64; 12] = [2.0, 2.0, 2.0, 0.5, 0.5, 0.5, 2.0, 2.0, 0.5, 0.5, 2.0, 2.0];

#[test]
fn streamed_steps_match_offline_run_bitwise() {
    // "Streamed": one step at a time, peak sampled after each, power
    // restaged by delta between steps — the exact server-session loop.
    let p0 = problem(SCHEDULE[0]);
    let mut streamed = TransientRun::new(&p0, &caps(&p0), 5e-6, ambient())
        .expect("well-posed")
        .with_multigrid()
        .expect("spd operator");
    let mut trajectory = Vec::new();
    for &watts in &SCHEDULE {
        streamed.restage_power_delta(problem(watts).power_flat());
        streamed.step().expect("streamed step");
        trajectory.push(streamed.peak().kelvin.to_bits());
    }

    // "Offline": the same schedule through full-problem restaging and
    // chunked `run` calls over the constant-power segments.
    let mut offline = TransientRun::new(&p0, &caps(&p0), 5e-6, ambient())
        .expect("well-posed")
        .with_multigrid()
        .expect("spd operator");
    let mut replayed = Vec::new();
    let mut i = 0;
    while i < SCHEDULE.len() {
        let mut j = i;
        while j < SCHEDULE.len() && SCHEDULE[j] == SCHEDULE[i] {
            j += 1;
        }
        offline
            .restage_power(&problem(SCHEDULE[i]))
            .expect("same mesh");
        for _ in i..j {
            offline.step().expect("offline step");
            replayed.push(offline.peak().kelvin.to_bits());
        }
        i = j;
    }

    assert_eq!(
        trajectory, replayed,
        "streamed trajectory must be bitwise-identical to the offline run"
    );
    assert_eq!(streamed.steps_taken(), SCHEDULE.len() as u64);
    let final_match = streamed
        .temperatures()
        .iter_kelvin()
        .zip(offline.temperatures().iter_kelvin())
        .all(|(a, b)| a.to_bits() == b.to_bits());
    assert!(final_match, "final fields must agree bitwise");
}

#[test]
fn delta_restage_equals_full_restage_without_multigrid() {
    // The Jacobi-CG path shares the rhs plumbing but not the hierarchy
    // rebuild; pin the equivalence there too.
    let p_hi = problem(2.0);
    let p_lo = problem(0.25);
    let mut full = TransientRun::new(&p_hi, &caps(&p_hi), 5e-6, ambient()).expect("ok");
    let mut delta = TransientRun::new(&p_hi, &caps(&p_hi), 5e-6, ambient()).expect("ok");
    full.run(5).expect("heat");
    delta.run(5).expect("heat");
    full.restage_power(&p_lo).expect("same mesh");
    delta.restage_power_delta(p_lo.power_flat());
    full.run(5).expect("cool");
    delta.run(5).expect("cool");
    let same = full
        .temperatures()
        .iter_kelvin()
        .zip(delta.temperatures().iter_kelvin())
        .all(|(a, b)| a.to_bits() == b.to_bits());
    assert!(same, "delta and full restaging must agree bitwise");
}

#[test]
fn guarded_stepping_settles_to_steady_state() {
    // The session loop's shape — check limits, step, sample — must still
    // converge to the steady solver's answer when the budget is ample.
    let p = problem(2.0);
    let steady = CgSolver::new().solve(&p).expect("steady");
    let mut run = TransientRun::new(&p, &caps(&p), 5e-6, ambient()).expect("ok");
    let limits = StepLimits::budget(500);
    let mut halted = None;
    for _ in 0..600 {
        if let Some(halt) = run.check_limits(&limits) {
            halted = Some(halt);
            break;
        }
        run.step().expect("step");
    }
    let halt = halted.expect("budget must trip before the loop cap");
    assert_eq!(run.steps_taken(), 500);
    assert!(halt.to_string().contains("step budget exhausted"));
    let t_end = run.peak().kelvin;
    let t_ss = steady.temperatures.max_temperature().kelvin();
    assert!(
        (t_end - t_ss).abs() < 0.01 * (t_ss - ambient().kelvin()).max(0.1),
        "guarded stepping must settle at steady state: {t_end} vs {t_ss}"
    );
}

#[test]
fn runaway_schedule_raises_exactly_one_alarm_per_excursion() {
    // Drive the block hot with a big power step, confirm the detector
    // fires on the real trajectory (not synthetic samples), then gate
    // the power and confirm it re-arms only after the hysteresis band.
    let p_hot = problem(40.0);
    let p_off = problem(0.0);
    let mut run = TransientRun::new(&p_hot, &caps(&p_hot), 5e-6, ambient()).expect("ok");
    let steady_peak = CgSolver::new()
        .solve(&p_hot)
        .expect("steady")
        .temperatures
        .max_temperature();
    let threshold = Temperature::from_kelvin(
        ambient().kelvin() + 0.5 * (steady_peak.kelvin() - ambient().kelvin()),
    );
    let mut det = RunawayDetector::new(threshold);
    let mut alarms = 0;
    for _ in 0..200 {
        run.step().expect("step");
        if det.observe(Temperature::from_kelvin(run.peak().kelvin)) {
            alarms += 1;
        }
    }
    assert_eq!(alarms, 1, "one excursion, one alarm");

    run.restage_power_delta(p_off.power_flat());
    for _ in 0..400 {
        run.step().expect("cool step");
        assert!(
            !det.observe(Temperature::from_kelvin(run.peak().kelvin)),
            "cooling must not re-fire"
        );
    }
    // Heat again: the cooled stack re-armed the detector.
    run.restage_power_delta(p_hot.power_flat());
    let mut refired = false;
    for _ in 0..200 {
        run.step().expect("reheat step");
        refired |= det.observe(Temperature::from_kelvin(run.peak().kelvin));
    }
    assert!(refired, "a second excursion after re-arm must alarm again");
}
