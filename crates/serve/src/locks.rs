//! Lock primitives for the serving tier: unified poisoning recovery and
//! the rank-checked mutex behind the `lock-order` feature.
//!
//! **Poisoning.** Every guard in this crate is taken through
//! [`lock_or_recover`] (directly or via [`RankedMutex::lock`]). A
//! poisoned lock means some other thread panicked mid-critical-section;
//! the serving tier's invariants are all reconstructible (queues drain,
//! pools refill, tables repopulate), so recovery is always "take the
//! inner guard and keep going" — but each recovery increments a global
//! counter exported as `tsc_lock_poisoned_total`, so operators can see
//! it happened.
//!
//! **Lock ranks.** The static lock-order pass (`tsc-analyze`) proves the
//! acquisition graph acyclic for the nestings it can see; the `lock-order`
//! feature closes the dynamic gap (trait objects, callbacks, future code
//! paths) by checking an explicit total order at runtime. Each
//! [`RankedMutex`] carries a rank from the [`rank`] table; a thread-local
//! stack of held ranks asserts strictly increasing acquisition. Violations
//! panic immediately with both lock names — a deterministic failure in
//! the concurrency suites instead of a probabilistic deadlock in
//! production. With the feature off, `RankedMutex<T>` compiles to exactly
//! a `Mutex<T>` (a unit test pins the size parity) and the check costs
//! nothing.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// Process-wide count of guards recovered from a poisoned state.
static POISONED: AtomicU64 = AtomicU64::new(0);

/// Total poisoning recoveries since process start (the
/// `tsc_lock_poisoned_total` metric).
#[must_use]
pub fn poisoned_total() -> u64 {
    POISONED.load(Ordering::Relaxed)
}

/// Takes the guard, recovering from poisoning. See the module docs for
/// why recovery is always safe in this crate.
pub fn lock_or_recover<'a, T>(lock: &'a Mutex<T>) -> MutexGuard<'a, T> {
    match lock.lock() {
        Ok(g) => g,
        Err(poisoned) => {
            POISONED.fetch_add(1, Ordering::Relaxed);
            poisoned.into_inner()
        }
    }
}

/// The serving tier's lock-rank table, lower = acquired first
/// (outermost). Ranks are spaced by 10 so future locks can slot between
/// existing ones without renumbering.
///
/// The order encodes the tier's layering: routing decisions happen
/// before admission, admission before execution, execution before
/// result publication, and shutdown signalling nests inside anything
/// (it is the innermost thing any path touches while holding state).
pub mod rank {
    /// `RouterShared.table` — shard routing table (outermost).
    pub const ROUTER_TABLE: u16 = 10;
    /// `RouterShared.jobs` — job-id → shard affinity map (routing
    /// decisions precede everything else on the shard).
    pub const ROUTER_JOBS: u16 = 15;
    /// `Shared.coalesce` — in-flight request coalescing map.
    pub const COALESCE: u16 = 20;
    /// `JobsHost.table` — the optimization-job table.  Sits above the
    /// admission queue: the pump enqueues checked-out slices while
    /// holding it.
    pub const JOB_TABLE: u16 = 25;
    /// `JobQueue.inner` — admission queue state.
    pub const QUEUE_INNER: u16 = 30;
    /// `LruPool.entries` — context pool entries.
    pub const POOL_ENTRIES: u16 = 40;
    /// `Slot.result` — per-request result slot.
    pub const SLOT_RESULT: u16 = 50;
    /// `Shared.shutdown_flag` / `RouterShared.shutdown_flag` (innermost).
    pub const SHUTDOWN: u16 = 60;
}

#[cfg(feature = "lock-order")]
thread_local! {
    /// Ranks (and names, for diagnostics) of locks this thread holds,
    /// in acquisition order.
    static HELD: std::cell::RefCell<Vec<(u16, &'static str)>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// A `Mutex<T>` that participates in the lock-rank protocol when the
/// `lock-order` feature is on, and is bit-for-bit a plain `Mutex<T>`
/// otherwise.
pub struct RankedMutex<T> {
    inner: Mutex<T>,
    #[cfg(feature = "lock-order")]
    rank: u16,
    #[cfg(feature = "lock-order")]
    name: &'static str,
}

impl<T> RankedMutex<T> {
    /// Wraps `value` with a rank from the [`rank`] table. `name` is used
    /// only in violation diagnostics.
    #[must_use]
    pub fn new(value: T, rank: u16, name: &'static str) -> Self {
        #[cfg(not(feature = "lock-order"))]
        let _ = (rank, name);
        RankedMutex {
            inner: Mutex::new(value),
            #[cfg(feature = "lock-order")]
            rank,
            #[cfg(feature = "lock-order")]
            name,
        }
    }

    /// Acquires the lock, recovering from poisoning, asserting the rank
    /// protocol first (so a violation panics even when the wrong order
    /// happens not to deadlock on this run).
    pub fn lock(&self) -> RankedGuard<'_, T> {
        #[cfg(feature = "lock-order")]
        self.check_order();
        let guard = lock_or_recover(&self.inner);
        #[cfg(feature = "lock-order")]
        HELD.with(|h| h.borrow_mut().push((self.rank, self.name)));
        RankedGuard {
            guard: Some(guard),
            #[cfg(feature = "lock-order")]
            rank: self.rank,
        }
    }

    #[cfg(feature = "lock-order")]
    fn check_order(&self) {
        HELD.with(|h| {
            if let Some(&(top_rank, top_name)) = h.borrow().last() {
                assert!(
                    self.rank > top_rank,
                    "lock-order violation: acquiring `{}` (rank {}) while holding \
                     `{}` (rank {}) — ranks must be strictly increasing; see the \
                     rank table in tsc_serve::locks",
                    self.name,
                    self.rank,
                    top_name,
                    top_rank,
                );
            }
        });
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for RankedMutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RankedMutex")
            .field("inner", &self.inner)
            .finish()
    }
}

/// Guard for a [`RankedMutex`]; derefs to `T` like a `MutexGuard`.
///
/// The inner `Option` is always `Some` while the guard is live: it
/// exists so [`wait`](Self::wait)/[`wait_timeout`](Self::wait_timeout)
/// can move the std guard out into the `Condvar` and back without ever
/// releasing the rank bookkeeping slot.
pub struct RankedGuard<'a, T> {
    guard: Option<MutexGuard<'a, T>>,
    #[cfg(feature = "lock-order")]
    rank: u16,
}

impl<'a, T> RankedGuard<'a, T> {
    /// Atomically releases the lock into `cv.wait` and re-locks on
    /// wakeup. The held-rank entry stays on the stack across the wait:
    /// conservatively, the thread still "owns" the lock slot, so a
    /// wrongly-ordered acquisition by this thread after wakeup is still
    /// caught.
    #[must_use]
    pub fn wait(mut self, cv: &Condvar) -> Self {
        let inner = self.guard.take().expect("guard live");
        self.guard = Some(match cv.wait(inner) {
            Ok(g) => g,
            Err(poisoned) => {
                POISONED.fetch_add(1, Ordering::Relaxed);
                poisoned.into_inner()
            }
        });
        self
    }

    /// [`wait`](Self::wait) with a timeout; the boolean is true when the
    /// wait timed out.
    #[must_use]
    pub fn wait_timeout(mut self, cv: &Condvar, dur: Duration) -> (Self, bool) {
        let inner = self.guard.take().expect("guard live");
        let (guard, timed_out) = match cv.wait_timeout(inner, dur) {
            Ok((g, t)) => (g, t.timed_out()),
            Err(poisoned) => {
                POISONED.fetch_add(1, Ordering::Relaxed);
                let (g, t) = poisoned.into_inner();
                (g, t.timed_out())
            }
        };
        self.guard = Some(guard);
        (self, timed_out)
    }
}

impl<'a, T> std::ops::Deref for RankedGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard live")
    }
}

impl<'a, T> std::ops::DerefMut for RankedGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard live")
    }
}

#[cfg(feature = "lock-order")]
impl<'a, T> Drop for RankedGuard<'a, T> {
    fn drop(&mut self) {
        HELD.with(|h| {
            let mut held = h.borrow_mut();
            // Guards are dropped LIFO in this codebase, but don't assume
            // it: remove the matching entry wherever it sits so an
            // out-of-order drop can't corrupt the stack.
            if let Some(pos) = held.iter().rposition(|&(r, _)| r == self.rank) {
                held.remove(pos);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recover_counts_poisonings() {
        let lock = std::sync::Arc::new(Mutex::new(0_u32));
        let before = poisoned_total();
        let l2 = lock.clone();
        let _ = std::thread::spawn(move || {
            let _g = l2.lock().expect("first lock");
            panic!("poison it");
        })
        .join();
        let g = lock_or_recover(&lock);
        assert_eq!(*g, 0);
        assert!(poisoned_total() > before, "recovery must be counted");
    }

    #[test]
    fn ranked_mutex_basic_roundtrip() {
        let m = RankedMutex::new(41_u32, rank::QUEUE_INNER, "test.lock");
        {
            let mut g = m.lock();
            *g += 1;
        }
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn in_order_nesting_is_accepted() {
        let outer = RankedMutex::new((), rank::ROUTER_TABLE, "outer");
        let inner = RankedMutex::new((), rank::SHUTDOWN, "inner");
        let _a = outer.lock();
        let _b = inner.lock();
    }

    #[cfg(feature = "lock-order")]
    #[test]
    fn out_of_order_nesting_panics() {
        let outer = RankedMutex::new((), rank::SHUTDOWN, "held.high");
        let inner = RankedMutex::new((), rank::ROUTER_TABLE, "acquired.low");
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _a = outer.lock();
            let _b = inner.lock();
        }));
        let err = result.expect_err("must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(
            msg.contains("lock-order violation"),
            "unexpected panic payload: {msg}"
        );
    }

    #[cfg(feature = "lock-order")]
    #[test]
    fn rank_slot_survives_condvar_wait() {
        // After a (timed-out) wait, the guard still occupies its rank
        // slot, so a lower-rank acquisition must still panic.
        let m = RankedMutex::new(0_u32, rank::SLOT_RESULT, "waiting");
        let low = RankedMutex::new((), rank::COALESCE, "low");
        let cv = Condvar::new();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let g = m.lock();
            let (_g, timed_out) = g.wait_timeout(&cv, Duration::from_millis(1));
            assert!(timed_out);
            let _b = low.lock();
        }));
        assert!(
            result.is_err(),
            "low-rank acquisition after wait must panic"
        );
    }

    #[cfg(not(feature = "lock-order"))]
    #[test]
    fn compiled_out_means_plain_mutex_layout() {
        assert_eq!(
            std::mem::size_of::<RankedMutex<u8>>(),
            std::mem::size_of::<Mutex<u8>>(),
            "without the feature the wrapper must add zero bytes"
        );
        assert_eq!(
            std::mem::size_of::<RankedGuard<'static, u8>>(),
            std::mem::size_of::<Option<MutexGuard<'static, u8>>>(),
        );
    }
}
