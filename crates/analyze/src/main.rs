//! The `tsc-analyze` gate binary.
//!
//! ```text
//! cargo run -p tsc-analyze                                   # lint pass
//! cargo run -p tsc-analyze --features race-check -- --race-check
//!                                                            # lint + dynamic race checks
//! ```
//!
//! Exit status: `0` clean, `1` violations or race-check failures,
//! `2` usage / environment errors.

#![forbid(unsafe_code)]

use std::process::ExitCode;
use tsc_analyze::{lint_workspace, walk};

fn main() -> ExitCode {
    let mut race_check = false;
    let mut lint = true;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--race-check" => race_check = true,
            "--no-lint" => lint = false,
            "--help" | "-h" => {
                println!(
                    "tsc-analyze: in-repo static-analysis gate\n\n\
                     USAGE: tsc-analyze [--race-check] [--no-lint]\n\n\
                     --race-check  also run the dynamic write-set race checker and the\n\
                     \x20             schedule-perturbation harness (requires building with\n\
                     \x20             `--features race-check`)\n\
                     --no-lint     skip the source lint pass"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("tsc-analyze: unknown argument `{other}` (see --help)");
                return ExitCode::from(2);
            }
        }
    }

    let mut failed = false;

    if lint {
        let root = walk::workspace_root();
        match lint_workspace(&root) {
            Ok(report) => {
                for (file, v) in &report.violations {
                    let rel = file.strip_prefix(&root).unwrap_or(file);
                    eprintln!("{}:{}: [{}] {}", rel.display(), v.line, v.rule, v.message);
                }
                if report.clean() {
                    println!("tsc-analyze: lint clean ({} files)", report.files);
                } else {
                    eprintln!(
                        "tsc-analyze: {} violation(s) across {} files",
                        report.violations.len(),
                        report.files
                    );
                    failed = true;
                }
            }
            Err(e) => {
                eprintln!("tsc-analyze: cannot walk workspace: {e}");
                return ExitCode::from(2);
            }
        }
    }

    if race_check {
        #[cfg(feature = "race-check")]
        {
            match tsc_analyze::dynamic::run() {
                Ok(summary) => println!("{summary}"),
                Err(e) => {
                    eprintln!("tsc-analyze: race check FAILED: {e}");
                    failed = true;
                }
            }
        }
        #[cfg(not(feature = "race-check"))]
        {
            eprintln!(
                "tsc-analyze: built without the race checker — rerun as\n  \
                 cargo run -p tsc-analyze --features race-check -- --race-check"
            );
            return ExitCode::from(2);
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
