//! Property tests of the k-extraction kernel: for any laminate or
//! inclusion geometry the extracted conductivity must respect the
//! classical Voigt/Reuss bounds and basic symmetries.

use proptest::prelude::*;
use tsc_homogenize::{extract_k, Axis, VoxelModel};
use tsc_units::{Length, ThermalConductivity};

fn nm(v: f64) -> Length {
    Length::from_nanometers(v)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn laminate_within_voigt_reuss(
        k_a in 0.1f64..300.0,
        k_b in 0.1f64..300.0,
        split in 1usize..7,
    ) {
        // An 8-layer stack split into two materials at a random plane.
        let mut m = VoxelModel::new(4, 4, 8, nm(400.0), nm(400.0), nm(800.0),
            ThermalConductivity::new(k_a));
        m.paint_z_range(split, 8, ThermalConductivity::new(k_b));
        let f_a = split as f64 / 8.0;
        let voigt = f_a * k_a + (1.0 - f_a) * k_b;
        let reuss = 1.0 / (f_a / k_a + (1.0 - f_a) / k_b);
        let kz = extract_k(&m, Axis::Z).expect("converges").get();
        let kx = extract_k(&m, Axis::X).expect("converges").get();
        // Cross-plane equals Reuss, in-plane equals Voigt (exact for
        // laminates), both within numerical tolerance.
        prop_assert!((kz - reuss).abs() / reuss < 0.02, "kz {kz} vs Reuss {reuss}");
        prop_assert!((kx - voigt).abs() / voigt < 0.02, "kx {kx} vs Voigt {voigt}");
    }

    #[test]
    fn homogeneous_block_is_isotropic(k in 0.05f64..500.0) {
        let m = VoxelModel::new(3, 4, 5, nm(300.0), nm(400.0), nm(500.0),
            ThermalConductivity::new(k));
        for axis in [Axis::X, Axis::Y, Axis::Z] {
            let got = extract_k(&m, axis).expect("converges").get();
            prop_assert!((got - k).abs() / k < 1e-6, "{axis}: {got} vs {k}");
        }
    }

    #[test]
    fn inclusions_move_k_toward_inclusion(
        k_bg in 0.1f64..10.0,
        k_inc in 20.0f64..300.0,
        side in 1usize..3,
    ) {
        // A centered high-k column raises vertical k but never beyond the
        // parallel-rule (Voigt) bound.
        let n = 5usize;
        let mut m = VoxelModel::new(n, n, 4, nm(500.0), nm(500.0), nm(400.0),
            ThermalConductivity::new(k_bg));
        let lo = (n - side) / 2;
        m.paint_box(lo..lo + side, lo..lo + side, 0..4, ThermalConductivity::new(k_inc));
        let f = (side * side) as f64 / (n * n) as f64;
        let voigt = f * k_inc + (1.0 - f) * k_bg;
        let kz = extract_k(&m, Axis::Z).expect("converges").get();
        prop_assert!(kz > k_bg, "inclusion must help: {kz} vs {k_bg}");
        prop_assert!(kz <= voigt * (1.0 + 1e-6), "Voigt bound: {kz} vs {voigt}");
    }

    #[test]
    fn swapping_materials_swaps_nothing_at_half_fill(
        k_a in 0.5f64..50.0,
        k_b in 0.5f64..50.0,
    ) {
        // A 50/50 laminate's k_eff is symmetric in the two materials.
        let build = |top: f64, bottom: f64| {
            let mut m = VoxelModel::new(4, 4, 8, nm(400.0), nm(400.0), nm(800.0),
                ThermalConductivity::new(bottom));
            m.paint_z_range(4, 8, ThermalConductivity::new(top));
            m
        };
        let k1 = extract_k(&build(k_a, k_b), Axis::Z).expect("converges").get();
        let k2 = extract_k(&build(k_b, k_a), Axis::Z).expect("converges").get();
        prop_assert!((k1 - k2).abs() / k1 < 1e-6, "{k1} vs {k2}");
    }
}
