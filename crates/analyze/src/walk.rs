//! Workspace discovery: which `.rs` files exist and how each one is
//! classified for the lint pass.

use crate::rules::{FileClass, NUMERIC_CRATES};
use std::path::{Path, PathBuf};

/// Locates the workspace root from the analyzer's own manifest directory
/// (`crates/analyze` → two levels up), so `cargo run -p tsc-analyze`
/// works from any working directory.
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map_or_else(|| PathBuf::from("."), Path::to_path_buf)
}

/// Every `.rs` file in the workspace that the lint pass covers: the
/// member crates plus the root package's `src/`, `tests/` and
/// `examples/`. Deliberately-bad lint fixtures (any path containing a
/// `fixtures` component) are excluded, as is `target/`.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in std::fs::read_dir(&crates_dir)? {
            let p = entry?.path();
            if p.is_dir() {
                collect_rs(&p, &mut files)?;
            }
        }
    }
    for top in ["src", "tests", "examples"] {
        let p = root.join(top);
        if p.is_dir() {
            collect_rs(&p, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

/// Every `.rs` file under an arbitrary directory tree — the `--root`
/// mode, used to point the gate at fixture trees that are not laid out
/// as a cargo workspace. `target/` directories are still skipped, but
/// `fixtures/` components are *not* (the whole point is analysing them).
pub fn rs_files_under(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    fn collect(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
        for entry in std::fs::read_dir(dir)? {
            let p = entry?.path();
            let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if p.is_dir() {
                if name == "target" {
                    continue;
                }
                collect(&p, out)?;
            } else if name.ends_with(".rs") {
                out.push(p);
            }
        }
        Ok(())
    }
    let mut files = Vec::new();
    collect(root, &mut files)?;
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let p = entry?.path();
        let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if p.is_dir() {
            if name == "target" || name == "fixtures" {
                continue;
            }
            collect_rs(&p, out)?;
        } else if name.ends_with(".rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Classifies a workspace-relative (or absolute) path for the rules.
pub fn classify(root: &Path, file: &Path) -> FileClass {
    let rel = file.strip_prefix(root).unwrap_or(file);
    let comps: Vec<&str> = rel
        .components()
        .filter_map(|c| c.as_os_str().to_str())
        .collect();
    let crate_name = match comps.as_slice() {
        ["crates", name, ..] => Some(*name),
        _ => None,
    };
    let tail: &[&str] = match comps.as_slice() {
        ["crates", _, rest @ ..] => rest,
        rest => rest,
    };
    let is_library = tail.first() == Some(&"src") && tail.get(1) != Some(&"bin");
    FileClass {
        is_library,
        is_numeric: crate_name.is_some_and(|c| NUMERIC_CRATES.contains(&c)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_by_path_shape() {
        let root = Path::new("/ws");
        let lib = classify(root, Path::new("/ws/crates/thermal/src/solver.rs"));
        assert!(lib.is_library && lib.is_numeric);
        let bin = classify(root, Path::new("/ws/crates/bench/src/bin/fig.rs"));
        assert!(!bin.is_library && !bin.is_numeric);
        let test = classify(root, Path::new("/ws/crates/core/tests/flow.rs"));
        assert!(!test.is_library && test.is_numeric);
        let root_src = classify(root, Path::new("/ws/src/lib.rs"));
        assert!(root_src.is_library && !root_src.is_numeric);
        let example = classify(root, Path::new("/ws/examples/quickstart.rs"));
        assert!(!example.is_library);
    }

    #[test]
    fn walker_skips_fixtures_and_finds_this_file() {
        let root = workspace_root();
        let files = workspace_files(&root).expect("workspace is readable");
        assert!(files
            .iter()
            .any(|f| f.ends_with("crates/analyze/src/walk.rs")));
        assert!(
            files
                .iter()
                .all(|f| !f.to_string_lossy().contains("fixtures")),
            "fixture snippets are deliberately bad and must not be linted"
        );
    }
}
