//! Effective-conductivity extraction: the numerical experiment of Fig. 7a.

use crate::voxel::VoxelModel;
use tsc_thermal::{CgSolver, Heatsink, Problem, SolveError};
use tsc_units::{HeatTransferCoefficient, Temperature, ThermalConductivity};

/// The extraction direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axis {
    /// In-plane, along wires of even metal layers.
    X,
    /// In-plane, along wires of odd metal layers.
    Y,
    /// Cross-plane (stacking direction).
    Z,
}

impl core::fmt::Display for Axis {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            Self::X => "x",
            Self::Y => "y",
            Self::Z => "z",
        })
    }
}

/// Near-ideal film coefficient used to emulate fixed-temperature faces.
/// Its series resistance (1/h = 1e-12 m²K/W) is negligible against any
/// realistic BEOL slab (≥1e-9 m²K/W).
const DIRICHLET_H: f64 = 1.0e12;

/// Extracts the effective conductivity of a voxel model along `axis`:
/// hold the two opposite faces at 300 K and 301 K, solve, measure the
/// through-flux `Q`, and return `k_eff = Q·L/(A·ΔT)`.
///
/// # Errors
///
/// Propagates [`SolveError`] if the fine-grid solve fails to converge.
///
/// ```
/// use tsc_homogenize::{extract_k, Axis, VoxelModel};
/// use tsc_units::{Length, ThermalConductivity};
///
/// let nm = Length::from_nanometers;
/// let m = VoxelModel::new(3, 3, 3, nm(300.0), nm(300.0), nm(300.0),
///     ThermalConductivity::new(7.5));
/// let k = extract_k(&m, Axis::Z)?;
/// assert!((k.get() - 7.5).abs() < 1e-6); // homogeneous block is exact
/// # Ok::<(), tsc_thermal::SolveError>(())
/// ```
pub fn extract_k(model: &VoxelModel, axis: Axis) -> Result<ThermalConductivity, SolveError> {
    let m = model.rotated_to_z(axis);
    let dim = m.dim();
    let (sx, sy, sz) = m.extents();
    let dz = sz / dim.nz as f64;
    let mut p = Problem::new(
        dim.nx,
        dim.ny,
        sx / dim.nx as f64,
        sy / dim.ny as f64,
        vec![dz; dim.nz],
        ThermalConductivity::new(1.0),
    );
    let kz = m.kz_field();
    let kxy = m.kxy_field();
    for k in 0..dim.nz {
        for j in 0..dim.ny {
            for i in 0..dim.nx {
                p.set_conductivity(
                    i,
                    j,
                    k,
                    ThermalConductivity::new(kz[(i, j, k)]),
                    ThermalConductivity::new(kxy[(i, j, k)]),
                );
            }
        }
    }
    let cold = Temperature::from_kelvin(300.0);
    let hot = Temperature::from_kelvin(301.0);
    p.set_bottom_heatsink(Heatsink::new(
        HeatTransferCoefficient::new(DIRICHLET_H),
        cold,
    ));
    p.set_top_heatsink(Heatsink::new(
        HeatTransferCoefficient::new(DIRICHLET_H),
        hot,
    ));

    let sol = CgSolver::new().with_tolerance(1e-11).solve(&p)?;
    // Heat enters at the hot (top) face and leaves at the cold (bottom)
    // face; the bottom boundary power is the through-flux.
    let q = p.boundary_power_bottom(&sol.temperatures).watts();
    let area = (sx * sy).square_meters();
    // Subtract the two emulation-film drops (q/(h·A) each) so the
    // extracted value reflects conduction alone.
    let film_drop = 2.0 * q / (DIRICHLET_H * area);
    let delta_t = (hot - cold).kelvin() - film_drop;
    Ok(ThermalConductivity::new(q * sz.meters() / (area * delta_t)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsc_units::Length;

    fn nm(v: f64) -> Length {
        Length::from_nanometers(v)
    }

    #[test]
    fn homogeneous_block_recovers_k_along_all_axes() {
        let m = VoxelModel::new(
            4,
            5,
            6,
            nm(400.0),
            nm(500.0),
            nm(600.0),
            ThermalConductivity::new(13.6),
        );
        for axis in [Axis::X, Axis::Y, Axis::Z] {
            let k = extract_k(&m, axis).expect("converges");
            assert!((k.get() - 13.6).abs() < 1e-5, "axis {axis}: {k}");
        }
    }

    #[test]
    fn laminate_matches_series_and_parallel_rules() {
        // 50/50 laminate of 100 and 1 W/m/K stacked along z.
        let mut m = VoxelModel::new(
            4,
            4,
            8,
            nm(400.0),
            nm(400.0),
            nm(800.0),
            ThermalConductivity::new(1.0),
        );
        m.paint_z_range(4, 8, ThermalConductivity::new(100.0));
        let kz = extract_k(&m, Axis::Z).expect("z");
        let kx = extract_k(&m, Axis::X).expect("x");
        let series = 1.0 / (0.5 / 1.0 + 0.5 / 100.0);
        let parallel = 0.5 * 1.0 + 0.5 * 100.0;
        assert!((kz.get() - series).abs() / series < 0.01, "kz {kz}");
        assert!((kx.get() - parallel).abs() / parallel < 0.01, "kx {kx}");
    }

    #[test]
    fn continuous_column_dominates_vertical() {
        // A 1/16-area continuous metal column through poor dielectric.
        let mut m = VoxelModel::new(
            4,
            4,
            6,
            nm(400.0),
            nm(400.0),
            nm(600.0),
            ThermalConductivity::new(0.2),
        );
        m.paint_box(1..2, 1..2, 0..6, ThermalConductivity::new(105.0));
        let kz = extract_k(&m, Axis::Z).expect("z");
        let expected = 0.2 * (15.0 / 16.0) + 105.0 / 16.0;
        assert!(
            (kz.get() - expected).abs() / expected < 0.05,
            "kz {kz} vs parallel-rule {expected}"
        );
    }

    #[test]
    fn broken_column_conducts_poorly() {
        // The same column with one missing voxel layer collapses toward
        // the dielectric value — the physics behind via continuity.
        let mut m = VoxelModel::new(
            4,
            4,
            6,
            nm(400.0),
            nm(400.0),
            nm(600.0),
            ThermalConductivity::new(0.2),
        );
        m.paint_box(1..2, 1..2, 0..3, ThermalConductivity::new(105.0));
        m.paint_box(1..2, 1..2, 4..6, ThermalConductivity::new(105.0));
        let kz = extract_k(&m, Axis::Z).expect("z");
        let continuous = 0.2 * (15.0 / 16.0) + 105.0 / 16.0;
        assert!(
            kz.get() < continuous / 3.0,
            "a broken column must lose most of its conduction: {kz}"
        );
    }

    #[test]
    fn anisotropic_voxels_respected() {
        let mut m = VoxelModel::new(
            3,
            3,
            3,
            nm(300.0),
            nm(300.0),
            nm(300.0),
            ThermalConductivity::new(1.0),
        );
        m.paint_box_anisotropic(
            0..3,
            0..3,
            0..3,
            ThermalConductivity::new(30.0),
            ThermalConductivity::new(105.7),
        );
        let kz = extract_k(&m, Axis::Z).expect("z");
        let kx = extract_k(&m, Axis::X).expect("x");
        assert!((kz.get() - 30.0).abs() < 1e-4);
        assert!((kx.get() - 105.7).abs() < 1e-3);
    }
}
