//! Extension study (beyond the paper): closing the electrothermal loop.
//!
//! The paper's 125 °C budget exists because leakage grows steeply with
//! temperature. With the loop closed (leakage doubling every 20 K above
//! the 100 °C staging point), every configuration runs hotter, supported
//! tier counts shrink, and past a critical tier count the conventional
//! stack enters thermal runaway — it has no steady state at all.

use tsc_bench::{banner, compare};
use tsc_core::beol::BeolProperties;
use tsc_core::pillars::uniform_routable_map;
use tsc_core::stack::{build, StackConfig};
use tsc_designs::gemmini;
use tsc_thermal::electrothermal::{solve_electrothermal, ElectrothermalError, LeakageModel};
use tsc_thermal::{CgSolver, Heatsink};
use tsc_units::{Ratio, TempDelta, Temperature};

fn stack(n: usize, scaffolded: bool) -> tsc_thermal::Problem {
    let d = gemmini::design();
    let (beol, map) = if scaffolded {
        (
            BeolProperties::scaffolded(),
            Some(uniform_routable_map(&d, Ratio::from_percent(10.0), 12)),
        )
    } else {
        (
            BeolProperties::with_dummy_fill(Ratio::from_percent(10.0)),
            None,
        )
    };
    let mut cfg = StackConfig::uniform(n, beol, Heatsink::two_phase()).with_lateral_cells(12);
    if let Some(m) = map {
        cfg = cfg.with_pillar_map(m);
    }
    build(&d, &cfg).problem
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("extension: electrothermal loop (leakage doubles every 20 K)");
    let model = LeakageModel::seven_nm();
    let limit = Temperature::from_celsius(125.0);

    for (name, scaffolded) in [("scaffolding @10 %", true), ("conventional @10 %", false)] {
        let mut open_max = 0;
        let mut closed_max = 0;
        let mut runaway_at = None;
        for n in 1..=16 {
            let p = stack(n, scaffolded);
            let open = CgSolver::new().solve(&p)?.temperatures.max_temperature();
            if open <= limit {
                open_max = n;
            }
            match solve_electrothermal(&p, &model, TempDelta::new(0.05), 60) {
                Ok(sol) => {
                    if sol.temperatures.max_temperature() <= limit {
                        closed_max = n;
                    }
                }
                Err(ElectrothermalError::ThermalRunaway { .. }) => {
                    runaway_at.get_or_insert(n);
                }
                Err(e) => return Err(e.into()),
            }
        }
        compare(
            &format!("{name}: tiers <125 °C, open loop"),
            "(the paper's numbers)",
            format!("{open_max}"),
        );
        compare(
            &format!("{name}: tiers <125 °C, closed loop"),
            "(extension)",
            format!("{closed_max}"),
        );
        compare(
            &format!("{name}: thermal runaway begins at"),
            "(extension)",
            match runaway_at {
                Some(n) => format!("{n} tiers"),
                None => "never (≤16 tiers)".to_string(),
            },
        );
    }

    banner("converged leakage overhead at the 12-tier scaffolding point");
    let p = stack(12, true);
    let open_power = p.total_power();
    let closed = solve_electrothermal(&p, &model, TempDelta::new(0.05), 60)?;
    compare(
        "total power, open vs closed loop",
        "(leakage adds a few %)",
        format!(
            "{:.2} W -> {:.2} W (+{:.1} %)",
            open_power.watts(),
            closed.total_power.watts(),
            (closed.total_power.watts() / open_power.watts() - 1.0) * 100.0
        ),
    );
    compare(
        "fixed-point iterations",
        "-",
        format!("{}", closed.iterations),
    );
    Ok(())
}
