//! The material palette: anisotropic conductivities bundled with
//! permittivity, and a lookup table for mesh builders.

use tsc_units::{RelativePermittivity, ThermalConductivity};

/// Anisotropic thermal conductivity: one vertical (cross-plane, z) and one
/// lateral (in-plane, x/y) value.
///
/// ```
/// use tsc_materials::Anisotropic;
/// use tsc_units::ThermalConductivity;
/// let k = Anisotropic::isotropic(ThermalConductivity::new(180.0));
/// assert_eq!(k.vertical.get(), k.lateral.get());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Anisotropic {
    /// Cross-plane (z, stacking-direction) conductivity.
    pub vertical: ThermalConductivity,
    /// In-plane (x/y) conductivity.
    pub lateral: ThermalConductivity,
}

impl Anisotropic {
    /// Creates an anisotropic pair.
    #[must_use]
    pub const fn new(vertical: ThermalConductivity, lateral: ThermalConductivity) -> Self {
        Self { vertical, lateral }
    }

    /// Creates an isotropic pair.
    #[must_use]
    pub const fn isotropic(k: ThermalConductivity) -> Self {
        Self {
            vertical: k,
            lateral: k,
        }
    }

    /// Anisotropy ratio `lateral / vertical`.
    #[must_use]
    pub fn ratio(self) -> f64 {
        self.lateral / self.vertical
    }
}

/// A material: a name, anisotropic thermal conductivity, and (for
/// dielectrics) a relative permittivity.
#[derive(Debug, Clone, PartialEq)]
pub struct Material {
    /// Identifier, e.g. `"ultra-low-k ILD"`.
    pub name: &'static str,
    /// Thermal conductivity.
    pub conductivity: Anisotropic,
    /// Relative permittivity; `None` for conductors/semiconductors where
    /// it is irrelevant to the delay model.
    pub permittivity: Option<RelativePermittivity>,
}

impl Material {
    /// Creates a dielectric material.
    #[must_use]
    pub const fn dielectric(
        name: &'static str,
        conductivity: Anisotropic,
        permittivity: RelativePermittivity,
    ) -> Self {
        Self {
            name,
            conductivity,
            permittivity: Some(permittivity),
        }
    }

    /// Creates a non-dielectric material.
    #[must_use]
    pub const fn conductor(name: &'static str, conductivity: Anisotropic) -> Self {
        Self {
            name,
            conductivity,
            permittivity: None,
        }
    }
}

impl core::fmt::Display for Material {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{} (k⊥={}, k∥={})",
            self.name, self.conductivity.vertical, self.conductivity.lateral
        )
    }
}

/// Porous ultra-low-k inter-layer dielectric: ε ≈ 2, k ≈ 0.2 W/m/K (the
/// meta-analysis estimate of Sec. II).
pub const ULTRA_LOW_K_ILD: Material = Material::dielectric(
    "ultra-low-k ILD",
    Anisotropic::isotropic(ThermalConductivity::new(0.2)),
    RelativePermittivity::ULTRA_LOW_K,
);

/// The scaffolding thermal dielectric at the *conservative* end of the
/// Sec. II sweep: 105.7 W/m/K in-plane (160 nm grains), 30 W/m/K
/// through-plane (demonstrated boundary resistance), ε = 4.
pub const THERMAL_DIELECTRIC_CONSERVATIVE: Material = Material::dielectric(
    "thermal dielectric (conservative)",
    Anisotropic::new(
        ThermalConductivity::new(30.0),
        ThermalConductivity::new(105.7),
    ),
    RelativePermittivity::THERMAL_DIELECTRIC,
);

/// The scaffolding thermal dielectric at the *optimistic* end: 500 W/m/K
/// in-plane (large grains), 105.7 W/m/K through-plane (ideal boundary).
pub const THERMAL_DIELECTRIC_OPTIMISTIC: Material = Material::dielectric(
    "thermal dielectric (optimistic)",
    Anisotropic::new(
        ThermalConductivity::new(105.7),
        ThermalConductivity::new(500.0),
    ),
    RelativePermittivity::THERMAL_DIELECTRIC,
);

/// The *design point* used in the paper's physical-design flow and its
/// Fig. 7c homogenization table: the 160 nm-grain film (105.7 W/m/K
/// in-plane) at a near-ideal film boundary resistance of ≈2.4e-10 m²K/W,
/// which puts the 240 nm layer's through-plane value at ≈88 W/m/K
/// (`EtcModel::through_plane_conductivity`), ε = 4. These are the inputs
/// that reproduce the paper's extracted 93.59/101.73 W/m/K upper-layer
/// table entries.
pub const THERMAL_DIELECTRIC_DESIGN: Material = Material::dielectric(
    "thermal dielectric (design point)",
    Anisotropic::new(
        ThermalConductivity::new(88.0),
        ThermalConductivity::new(105.7),
    ),
    RelativePermittivity::THERMAL_DIELECTRIC,
);

/// 100 nm monolithic-3D device silicon (30 vertical / 65 lateral, Fig. 1).
pub const DEVICE_SILICON_THIN: Material = Material::conductor(
    "device silicon (0.1 µm)",
    Anisotropic::new(
        ThermalConductivity::new(30.0),
        ThermalConductivity::new(65.0),
    ),
);

/// 10 µm handle silicon (Fig. 1).
pub const BULK_SILICON: Material = Material::conductor(
    "handle silicon (10 µm)",
    Anisotropic::isotropic(ThermalConductivity::new(180.0)),
);

/// Narrow lower-level (V0–V7) copper.
pub const COPPER_LOWER: Material = Material::conductor(
    "copper (V0-V7)",
    Anisotropic::isotropic(ThermalConductivity::new(105.0)),
);

/// Wide upper-level (M8–M9) copper.
pub const COPPER_UPPER: Material = Material::conductor(
    "copper (M8-M9)",
    Anisotropic::isotropic(ThermalConductivity::new(242.0)),
);

/// Still air (encapsulation gaps, worst-case fill).
pub const AIR: Material = Material::dielectric(
    "air",
    Anisotropic::isotropic(ThermalConductivity::new(0.026)),
    RelativePermittivity::new(1.0),
);

/// A lookup table over the standard palette plus user additions.
///
/// ```
/// use tsc_materials::MaterialDb;
/// let db = MaterialDb::standard();
/// let ild = db.get("ultra-low-k ILD").expect("in palette");
/// assert_eq!(ild.conductivity.lateral.get(), 0.2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MaterialDb {
    materials: Vec<Material>,
}

impl MaterialDb {
    /// An empty database.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The standard palette used throughout the workspace.
    #[must_use]
    pub fn standard() -> Self {
        Self {
            materials: vec![
                ULTRA_LOW_K_ILD,
                THERMAL_DIELECTRIC_CONSERVATIVE,
                THERMAL_DIELECTRIC_OPTIMISTIC,
                THERMAL_DIELECTRIC_DESIGN,
                DEVICE_SILICON_THIN,
                BULK_SILICON,
                COPPER_LOWER,
                COPPER_UPPER,
                AIR,
            ],
        }
    }

    /// Registers a material; replaces an existing entry of the same name
    /// and returns it.
    pub fn insert(&mut self, material: Material) -> Option<Material> {
        if let Some(pos) = self.materials.iter().position(|m| m.name == material.name) {
            let old = self.materials[pos].clone();
            self.materials[pos] = material;
            Some(old)
        } else {
            self.materials.push(material);
            None
        }
    }

    /// Looks up a material by name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&Material> {
        self.materials.iter().find(|m| m.name == name)
    }

    /// Number of registered materials.
    #[must_use]
    pub fn len(&self) -> usize {
        self.materials.len()
    }

    /// `true` when no materials are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.materials.is_empty()
    }

    /// Borrowing iterator over all materials.
    pub fn iter(&self) -> core::slice::Iter<'_, Material> {
        self.materials.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_palette_is_complete() {
        let db = MaterialDb::standard();
        for name in [
            "ultra-low-k ILD",
            "thermal dielectric (conservative)",
            "thermal dielectric (optimistic)",
            "thermal dielectric (design point)",
            "device silicon (0.1 µm)",
            "handle silicon (10 µm)",
            "copper (V0-V7)",
            "copper (M8-M9)",
            "air",
        ] {
            assert!(db.get(name).is_some(), "missing {name}");
        }
        assert_eq!(db.len(), 9);
    }

    #[test]
    fn insert_replaces_same_name() {
        let mut db = MaterialDb::standard();
        let before = db.len();
        let custom = Material::conductor(
            "air",
            Anisotropic::isotropic(ThermalConductivity::new(0.03)),
        );
        let old = db.insert(custom).expect("replaced");
        assert_eq!(old.conductivity.lateral.get(), 0.026);
        assert_eq!(db.len(), before);
        assert_eq!(db.get("air").expect("air").conductivity.lateral.get(), 0.03);
    }

    #[test]
    fn dielectric_constants_match_paper() {
        assert_eq!(ULTRA_LOW_K_ILD.permittivity.expect("ε").get(), 2.0);
        assert_eq!(
            THERMAL_DIELECTRIC_CONSERVATIVE
                .permittivity
                .expect("ε")
                .get(),
            4.0
        );
    }

    #[test]
    fn thermal_dielectric_anisotropy() {
        // Through-plane never exceeds in-plane in the Sec. II model.
        for m in [
            THERMAL_DIELECTRIC_CONSERVATIVE,
            THERMAL_DIELECTRIC_OPTIMISTIC,
        ] {
            assert!(m.conductivity.ratio() >= 1.0, "{m}");
        }
    }

    #[test]
    fn anisotropy_ratio() {
        assert!((DEVICE_SILICON_THIN.conductivity.ratio() - 65.0 / 30.0).abs() < 1e-12);
    }

    #[test]
    fn display_shows_both_directions() {
        let s = format!("{DEVICE_SILICON_THIN}");
        assert!(s.contains("30") && s.contains("65"), "{s}");
    }
}
