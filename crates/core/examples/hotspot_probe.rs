use tsc_core::flows::{run_flow, CoolingStrategy, FlowConfig};
use tsc_designs::gemmini;
use tsc_units::Ratio;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let d = gemmini::design();
    for (s, a, del) in [
        (CoolingStrategy::VerticalOnly, 34.0, 7.0),
        (CoolingStrategy::Scaffolding, 10.0, 3.0),
    ] {
        let cfg = FlowConfig {
            strategy: s,
            tiers: 12,
            area_budget: Ratio::from_percent(a),
            delay_budget: Ratio::from_percent(del),
            lateral_cells: 16,
            ..FlowConfig::default()
        };
        let r = run_flow(&d, &cfg)?;
        let hot = r.solution.solution.temperatures.hottest_cell();
        let die = d.die.width().millimeters();
        println!(
            "{s}: Tj {:.2} °C at cell ({}, {}, z{}) of 16 (die {die} mm); tier profile tops: {:?}",
            r.junction_temperature.celsius(),
            hot.i,
            hot.j,
            hot.k,
            r.solution
                .tier_profile()
                .iter()
                .map(|t| (t.celsius() * 10.0).round() / 10.0)
                .collect::<Vec<_>>()
        );
    }
    Ok(())
}
