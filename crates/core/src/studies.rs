//! Observation-4 studies: hard-macro hotspots and inter-tier pillar
//! misalignment.
//!
//! * **Macro hotspot** (Obs. 4b): pillars cannot enter a hard macro, so
//!   a 25 µm × 25 µm SRAM block relies on its four surrounding pillars.
//!   With ultra-low-k upper layers the macro center rises ~15 °C above
//!   the well-pillared surroundings; the thermal dielectric's lateral
//!   conduction cuts that to ~5 °C.
//! * **Misalignment** (Obs. 4c): heterogeneous tiers cannot always stack
//!   their pillars perfectly. Without the dielectric, an adjacent-tier
//!   pillar must sit within ~300 nm to keep the per-tier rise within
//!   3 °C of the aligned case; the dielectric relaxes the tolerance to
//!   ~1 µm (Fig. 2a).

use crate::beol::{self, BeolProperties};
use tsc_geometry::{Grid2, Point, Rect};
use tsc_homogenize::pillar::PillarDesign;
use tsc_materials::Anisotropic;
use tsc_thermal::{CgSolver, Heatsink, Preconditioner, Problem, SolveContext, SolveError};
use tsc_units::{HeatFlux, Length, Ratio, TempDelta, ThermalConductivity};

/// The MG-preconditioned solver the study hot loops share.
fn study_solver() -> CgSolver {
    CgSolver::new()
        .with_tolerance(1e-9)
        .with_preconditioner(Preconditioner::Multigrid)
}

// ---------------------------------------------------------------------
// Macro hotspot study
// ---------------------------------------------------------------------

/// Configuration of the macro-hotspot study.
#[derive(Debug, Clone)]
pub struct MacroStudyConfig {
    /// Side of the (square) hard macro.
    pub macro_side: Length,
    /// Tier count of the surrounding stack.
    pub tiers: usize,
    /// Pillar density in the pillared (non-macro) region.
    pub pillar_density: Ratio,
    /// Uniform dissipated flux (macro and logic alike).
    pub flux: HeatFlux,
    /// Domain side (macro centered within).
    pub domain: Length,
    /// Lateral cells.
    pub cells: usize,
}

impl Default for MacroStudyConfig {
    fn default() -> Self {
        Self {
            macro_side: Length::from_micrometers(25.0),
            tiers: 6,
            pillar_density: Ratio::from_percent(10.0),
            flux: HeatFlux::from_watts_per_square_cm(53.0),
            domain: Length::from_micrometers(100.0),
            cells: 40,
        }
    }
}

/// Builds and solves the macro study for a given upper dielectric;
/// returns the macro-center excess rise over the pillared surroundings.
///
/// # Errors
///
/// Propagates solver failures.
pub fn macro_hotspot(cfg: &MacroStudyConfig, upper: Anisotropic) -> Result<TempDelta, SolveError> {
    macro_hotspot_with(cfg, upper, &mut SolveContext::new())
}

/// [`macro_hotspot`] against a caller-owned [`SolveContext`]: the two
/// dielectric variants share the mesh, so the second solve warm-starts
/// from the first.
///
/// # Errors
///
/// Propagates solver failures.
pub fn macro_hotspot_with(
    cfg: &MacroStudyConfig,
    upper: Anisotropic,
    ctx: &mut SolveContext,
) -> Result<TempDelta, SolveError> {
    let n = cfg.cells;
    let beol = BeolProperties {
        upper,
        ..BeolProperties::conventional()
    };
    let heatsink = Heatsink::two_phase();
    // Slabs: handle + tiers * (device, lower, upper, ilv).
    let mut dz = vec![Length::from_micrometers(10.0)];
    let mut device_layers = Vec::new();
    let mut beol_layers = Vec::new();
    for _ in 0..cfg.tiers {
        let base = dz.len();
        dz.push(Length::from_nanometers(100.0));
        dz.push(beol::lower_thickness());
        dz.push(beol::upper_thickness());
        dz.push(beol::ilv_thickness());
        device_layers.push(base);
        beol_layers.extend([base + 1, base + 2, base + 3]);
    }
    let mut p = Problem::new(
        n,
        n,
        cfg.domain / n as f64,
        cfg.domain / n as f64,
        dz,
        ThermalConductivity::new(1.0),
    );
    p.set_layer_conductivity(
        0,
        tsc_materials::BULK_SILICON.conductivity.vertical,
        tsc_materials::BULK_SILICON.conductivity.lateral,
    );
    for &k in &device_layers {
        p.set_layer_conductivity(
            k,
            tsc_materials::DEVICE_SILICON_THIN.conductivity.vertical,
            tsc_materials::DEVICE_SILICON_THIN.conductivity.lateral,
        );
        p.set_layer_conductivity(k + 1, beol.lower.vertical, beol.lower.lateral);
        p.set_layer_conductivity(k + 2, beol.upper.vertical, beol.upper.lateral);
        p.set_layer_conductivity(k + 3, beol.ilv.vertical, beol.ilv.lateral);
    }
    // Uniform flux on every device layer.
    let flux_map = Grid2::filled(n, n, cfg.flux.watts_per_square_meter());
    for &k in &device_layers {
        p.add_flux_map(k, &flux_map);
    }
    // Pillars everywhere except the centered macro (plus four corner
    // pillar clusters hugging the macro, per the placement rule).
    let domain_rect = Rect::from_origin_size(Length::ZERO, Length::ZERO, cfg.domain, cfg.domain);
    let c = cfg.domain / 2.0;
    let macro_rect = Rect::centered(Point::new(c, c), cfg.macro_side, cfg.macro_side);
    let mut density = Grid2::filled(n, n, cfg.pillar_density.fraction());
    density.paint_rect(&domain_rect, &macro_rect, 0.0);
    let k_pillar = PillarDesign::asap7_100nm().effective_vertical_k();
    for &k in &beol_layers {
        for j in 0..n {
            for i in 0..n {
                let f = density[(i, j)];
                if f > 0.0 {
                    p.blend_vertical_inclusion(i, j, k, f, k_pillar);
                }
            }
        }
    }
    p.set_bottom_heatsink(heatsink);
    let sol = ctx.solve(&p, &study_solver())?;

    // Excess of the macro center over the far-field pillared region, on
    // the top tier (worst case).
    // tsc-analyze: allow(no-unwrap): the stack builder above always
    // registers at least one device layer.
    let top = *device_layers.last().expect("tiers > 0");
    let layer = sol.temperatures.layer_kelvin(top);
    let center = layer[(n / 2, n / 2)];
    let far = layer[(2, 2)];
    Ok(TempDelta::new(center - far))
}

/// Runs the macro study for both dielectrics and reports
/// `(ultra-low-k excess, thermal-dielectric excess)`.
///
/// # Errors
///
/// Propagates solver failures.
pub fn macro_hotspot_pair(cfg: &MacroStudyConfig) -> Result<(TempDelta, TempDelta), SolveError> {
    let mut ctx = SolveContext::new();
    Ok((
        macro_hotspot_with(cfg, beol::upper_ultra_low_k(), &mut ctx)?,
        macro_hotspot_with(cfg, beol::upper_thermal_dielectric(), &mut ctx)?,
    ))
}

// ---------------------------------------------------------------------
// Misalignment study
// ---------------------------------------------------------------------

/// Configuration of the pillar-misalignment study.
#[derive(Debug, Clone)]
pub struct MisalignConfig {
    /// Pillar block side (a small pillar constellation).
    pub pillar_side: Length,
    /// Heat flux crossing the misaligned interface — for a 12-tier
    /// stack, every tier boundary near the sink carries the combined
    /// flux of the tiers above (≈636 W/cm² at the Gemmini design point).
    pub flux: HeatFlux,
    /// Domain side.
    pub domain: Length,
    /// Lateral cells (fine: sub-100 nm resolution advised).
    pub cells: usize,
}

impl Default for MisalignConfig {
    fn default() -> Self {
        Self {
            pillar_side: Length::from_nanometers(800.0),
            flux: HeatFlux::from_watts_per_square_cm(636.0),
            domain: Length::from_micrometers(4.0),
            cells: 50,
        }
    }
}

/// Three-tier stack: the top tier dissipates, its heat descends through
/// tier 2's pillar (offset by `offset` along +x) and then tier 1's
/// centered pillar — the heat must jog sideways between the two columns
/// through the inter-tier layers. Returns the junction rise above
/// ambient.
///
/// The `scaffolded` flag swaps the upper dielectric *and* the bond
/// encapsulation to thermal dielectric ("thermal dielectric between
/// tiers"), which is what carries the jog.
///
/// # Errors
///
/// Propagates solver failures.
pub fn misaligned_rise(
    cfg: &MisalignConfig,
    scaffolded: bool,
    offset: Length,
) -> Result<TempDelta, SolveError> {
    misaligned_rise_with(cfg, scaffolded, offset, &mut SolveContext::new())
}

/// [`misaligned_rise`] against a caller-owned [`SolveContext`]: offset
/// scans move a pillar block over a fixed mesh, so each solve
/// warm-starts from the previous offset's field.
///
/// # Errors
///
/// Propagates solver failures.
pub fn misaligned_rise_with(
    cfg: &MisalignConfig,
    scaffolded: bool,
    offset: Length,
    ctx: &mut SolveContext,
) -> Result<TempDelta, SolveError> {
    let n = cfg.cells;
    let beol = if scaffolded {
        BeolProperties::scaffolded()
    } else {
        BeolProperties::conventional()
    };
    let heatsink = Heatsink::two_phase();
    let mut dz = vec![Length::from_micrometers(10.0)];
    let mut device_layers = Vec::new();
    let mut tier_beols = Vec::new();
    for _ in 0..3 {
        let base = dz.len();
        dz.push(Length::from_nanometers(100.0));
        dz.push(beol::lower_thickness());
        dz.push(beol::upper_thickness());
        dz.push(beol::ilv_thickness());
        device_layers.push(base);
        tier_beols.push([base + 1, base + 2, base + 3]);
    }
    let mut p = Problem::new(
        n,
        n,
        cfg.domain / n as f64,
        cfg.domain / n as f64,
        dz,
        ThermalConductivity::new(1.0),
    );
    p.set_layer_conductivity(
        0,
        tsc_materials::BULK_SILICON.conductivity.vertical,
        tsc_materials::BULK_SILICON.conductivity.lateral,
    );
    for (t, &dev) in device_layers.iter().enumerate() {
        p.set_layer_conductivity(
            dev,
            tsc_materials::DEVICE_SILICON_THIN.conductivity.vertical,
            tsc_materials::DEVICE_SILICON_THIN.conductivity.lateral,
        );
        let [lo, up, ilv] = tier_beols[t];
        p.set_layer_conductivity(lo, beol.lower.vertical, beol.lower.lateral);
        p.set_layer_conductivity(up, beol.upper.vertical, beol.upper.lateral);
        p.set_layer_conductivity(ilv, beol.ilv.vertical, beol.ilv.lateral);
    }
    // Only the top tier dissipates: its heat must descend through both
    // pillar columns below.
    let flux_map = Grid2::filled(n, n, cfg.flux.watts_per_square_meter());
    // tsc-analyze: allow(no-unwrap): this study builds a fixed
    // three-tier stack, so device_layers is never empty.
    p.add_flux_map(*device_layers.last().expect("three tiers"), &flux_map);
    // Pillar blocks: tier 0 centered, tier 1 offset; the top tier's own
    // BEOL carries no heat downward and needs no pillar.
    let domain_rect = Rect::from_origin_size(Length::ZERO, Length::ZERO, cfg.domain, cfg.domain);
    let c = cfg.domain / 2.0;
    let k_pillar = PillarDesign::asap7_100nm().effective_vertical_k();
    let blocks = [
        (
            0usize,
            Rect::centered(Point::new(c, c), cfg.pillar_side, cfg.pillar_side),
        ),
        (
            1usize,
            Rect::centered(Point::new(c + offset, c), cfg.pillar_side, cfg.pillar_side),
        ),
    ];
    for (tier, rect) in blocks {
        let mut bm = Grid2::filled(n, n, 0.0);
        bm.paint_rect(&domain_rect, &rect, 1.0);
        for &k in &tier_beols[tier] {
            for j in 0..n {
                for i in 0..n {
                    if bm[(i, j)] > 0.0 {
                        p.blend_vertical_inclusion(i, j, k, bm[(i, j)], k_pillar);
                    }
                }
            }
        }
    }
    p.set_bottom_heatsink(heatsink);
    let sol = ctx.solve(&p, &study_solver())?;
    // tsc-analyze: allow(no-unwrap): this study builds a fixed
    // three-tier stack, so device_layers is never empty.
    let top = *device_layers.last().expect("three tiers");
    Ok(sol.temperatures.layer_max(top) - heatsink.ambient)
}

/// The extra rise caused by misalignment relative to the aligned case.
///
/// # Errors
///
/// Propagates solver failures.
pub fn misalignment_penalty(
    cfg: &MisalignConfig,
    scaffolded: bool,
    offset: Length,
) -> Result<TempDelta, SolveError> {
    let mut ctx = SolveContext::new();
    let aligned = misaligned_rise_with(cfg, scaffolded, Length::ZERO, &mut ctx)?;
    let shifted = misaligned_rise_with(cfg, scaffolded, offset, &mut ctx)?;
    Ok(shifted - aligned)
}

/// The largest offset whose misalignment penalty stays within `budget`,
/// scanned over `offsets` (ascending). Returns the last tolerable one.
///
/// # Errors
///
/// Propagates solver failures.
pub fn tolerable_misalignment(
    cfg: &MisalignConfig,
    scaffolded: bool,
    offsets: &[Length],
    budget: TempDelta,
) -> Result<Length, SolveError> {
    let mut ctx = SolveContext::new();
    let aligned = misaligned_rise_with(cfg, scaffolded, Length::ZERO, &mut ctx)?;
    let mut best = Length::ZERO;
    for &off in offsets {
        let rise = misaligned_rise_with(cfg, scaffolded, off, &mut ctx)?;
        if (rise - aligned).kelvin() <= budget.kelvin() {
            best = off;
        } else {
            break;
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thermal_dielectric_shrinks_macro_hotspot() {
        let cfg = MacroStudyConfig {
            cells: 30,
            ..MacroStudyConfig::default()
        };
        let (ulk, td) = macro_hotspot_pair(&cfg).expect("solves");
        assert!(
            ulk.kelvin() > 2.0 * td.kelvin(),
            "dielectric must cut the macro excess substantially: {ulk} -> {td}"
        );
        assert!(ulk.kelvin() > 1.0, "a 25 µm macro hole matters: {ulk}");
        assert!(td.kelvin() > 0.0, "some excess remains: {td}");
    }

    #[test]
    fn macro_excess_grows_with_macro_size() {
        let small = MacroStudyConfig {
            macro_side: Length::from_micrometers(10.0),
            cells: 30,
            ..MacroStudyConfig::default()
        };
        let big = MacroStudyConfig {
            macro_side: Length::from_micrometers(40.0),
            cells: 30,
            ..MacroStudyConfig::default()
        };
        let s = macro_hotspot(&small, beol::upper_ultra_low_k()).expect("solves");
        let b = macro_hotspot(&big, beol::upper_ultra_low_k()).expect("solves");
        assert!(b.kelvin() > s.kelvin());
    }

    #[test]
    fn misalignment_penalty_grows_with_offset() {
        let cfg = MisalignConfig {
            cells: 30,
            ..MisalignConfig::default()
        };
        let p300 =
            misalignment_penalty(&cfg, false, Length::from_nanometers(300.0)).expect("solves");
        let p1000 =
            misalignment_penalty(&cfg, false, Length::from_micrometers(1.0)).expect("solves");
        assert!(
            p1000.kelvin() > p300.kelvin(),
            "larger offsets must cost more: {p300} vs {p1000}"
        );
        assert!(p300.kelvin() >= 0.0);
    }

    #[test]
    fn dielectric_relaxes_alignment_tolerance() {
        // The Fig. 2a claim: tolerance grows from ~300 nm to ~1 µm.
        let cfg = MisalignConfig {
            cells: 30,
            ..MisalignConfig::default()
        };
        let offsets: Vec<Length> = [0.1, 0.3, 0.6, 1.0, 1.4]
            .iter()
            .map(|&um| Length::from_micrometers(um))
            .collect();
        let budget = TempDelta::new(1.0);
        let tol_ulk = tolerable_misalignment(&cfg, false, &offsets, budget).expect("solves");
        let tol_td = tolerable_misalignment(&cfg, true, &offsets, budget).expect("solves");
        assert!(
            tol_td.micrometers() > 2.0 * tol_ulk.micrometers(),
            "dielectric must relax tolerance substantially: {tol_ulk} vs {tol_td}"
        );
        // The paper's anchors: ~300 nm without vs ~1 µm with the
        // dielectric.
        assert!(
            (0.1..=0.6).contains(&tol_ulk.micrometers()),
            "ULK tolerance ≈ 300 nm, got {tol_ulk}"
        );
        assert!(
            tol_td.micrometers() >= 1.0,
            "dielectric tolerance ≈ 1 µm, got {tol_td}"
        );
    }
}
