//! Calibration dashboard: junction temperatures per strategy/budget.

use tsc_core::flows::{run_flow, CoolingStrategy, FlowConfig};
use tsc_designs::gemmini;
use tsc_units::Ratio;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let d = gemmini::design();
    let cases = [
        (CoolingStrategy::Scaffolding, 12, 10.0, 3.0),
        (CoolingStrategy::VerticalOnly, 12, 10.0, 7.0),
        (CoolingStrategy::VerticalOnly, 12, 20.0, 7.0),
        (CoolingStrategy::VerticalOnly, 12, 34.0, 7.0),
        (CoolingStrategy::ConventionalDummyVias, 12, 10.0, 3.0),
        (CoolingStrategy::ConventionalDummyVias, 12, 78.0, 17.0),
        (CoolingStrategy::ConventionalDummyVias, 3, 10.0, 3.0),
        (CoolingStrategy::ConventionalDummyVias, 4, 10.0, 3.0),
        (CoolingStrategy::ConventionalDummyVias, 5, 10.0, 3.0),
    ];
    for (strategy, tiers, area, delay) in cases {
        let cfg = FlowConfig {
            strategy,
            tiers,
            area_budget: Ratio::from_percent(area),
            delay_budget: Ratio::from_percent(delay),
            lateral_cells: 16,
            ..FlowConfig::default()
        };
        let r = run_flow(&d, &cfg)?;
        println!(
            "{strategy:<28} N={tiers:>2} area≤{area:>4}% delay≤{delay:>4}%  spend {:>5.1}%  delay {:>4.1}%  Tj {:>7.2} °C  {}",
            r.footprint_penalty.percent(),
            r.delay_penalty.percent(),
            r.junction_temperature.celsius(),
            if r.meets_limit { "OK" } else { "FAIL" },
        );
    }
    Ok(())
}
