//! Criterion benches of the physical-design kernels: sequence-pair
//! evaluation, SA floorplanning, fill/delay models, scheduling.

use criterion::{criterion_group, criterion_main, Criterion};
use tsc_core::flows::{timing_impact, CoolingStrategy};
use tsc_phydes::anneal::Schedule;
use tsc_phydes::fill::FillModel;
use tsc_phydes::floorplan::{floorplan, place_sequence_pair, FloorplanConfig, Module, Net};
use tsc_phydes::schedule::{assign, Task, TierRanking};
use tsc_phydes::timing::DelayModel;
use tsc_units::{Length, Power, Ratio, TempDelta};

fn modules(n: usize) -> Vec<Module> {
    (0..n)
        .map(|i| {
            let side = Length::from_micrometers(40.0 + (i % 7) as f64 * 15.0);
            Module::soft(
                format!("m{i}"),
                side,
                side,
                Power::from_milliwatts(1.0 + i as f64),
            )
        })
        .collect()
}

fn nets(n: usize) -> Vec<Net> {
    (1..n).map(|i| Net { a: i - 1, b: i }).collect()
}

fn bench_sequence_pair(c: &mut Criterion) {
    let ms = modules(20);
    let order: Vec<usize> = (0..20).collect();
    let rot = vec![false; 20];
    c.bench_function("place_sequence_pair_20", |b| {
        b.iter(|| place_sequence_pair(&ms, &order, &order, &rot));
    });
}

fn bench_sa_floorplan(c: &mut Criterion) {
    let ms = modules(10);
    let ns = nets(10);
    let cfg = FloorplanConfig {
        schedule: Schedule::quick(),
        ..FloorplanConfig::default()
    };
    let mut group = c.benchmark_group("sa_floorplan");
    group.sample_size(10);
    group.bench_function("quick_10_modules", |b| {
        b.iter(|| floorplan(&ms, &ns, &cfg));
    });
    group.finish();
}

fn bench_models(c: &mut Criterion) {
    let fill = FillModel::calibrated();
    c.bench_function("fill_model_eval", |b| {
        b.iter(|| fill.coupling_capacitance(Ratio::from_percent(40.0)));
    });
    let delay = DelayModel::calibrated();
    c.bench_function("delay_model_eval", |b| {
        b.iter(|| {
            delay.delay_penalty(&timing_impact(
                CoolingStrategy::Scaffolding,
                Ratio::from_percent(10.0),
            ))
        });
    });
}

fn bench_scheduling(c: &mut Criterion) {
    let rankings: Vec<TierRanking> = (0..12)
        .map(|t| TierRanking {
            tier: t,
            solo_rise: TempDelta::new(1.0 + t as f64),
        })
        .collect();
    let tasks: Vec<Task> = (0..12)
        .map(|i| Task::new(format!("t{i}"), Power::from_watts(f64::from(i as u32))))
        .collect();
    c.bench_function("thermal_aware_assignment_12", |b| {
        b.iter(|| assign(rankings.clone(), &tasks));
    });
}

criterion_group!(
    benches,
    bench_sequence_pair,
    bench_sa_floorplan,
    bench_models,
    bench_scheduling
);
criterion_main!(benches);
