//! Size-dependent thermal conductivity of damascene copper wires.
//!
//! Electron scattering at wire surfaces and grain boundaries suppresses
//! the conductivity of nanoscale copper well below the 400 W/m/K bulk
//! value (Lugo & Oliva \[29\]). The paper's BEOL abstraction uses
//! 105 W/m/K for the narrow lower-level wires (V0–V7) and 242 W/m/K for
//! the wide upper-level wires (M8–M9) — see Fig. 1 and Fig. 7.
//!
//! We model the suppression with a Fuchs-Sondheimer-style reciprocal law
//! `k(w) = k_bulk / (1 + λ_c/w)` calibrated to those two anchor points.

use tsc_units::{Length, ThermalConductivity};

/// Bulk copper thermal conductivity.
pub const BULK: ThermalConductivity = ThermalConductivity::new(400.0);

/// Effective scattering length of the reciprocal suppression law,
/// calibrated so 50 nm-class wires give ~105 W/m/K and 220 nm-class wires
/// ~242 W/m/K.
pub const SCATTERING_LENGTH: Length = Length::new(140.5e-9);

/// Critical dimension of the narrow lower-level (V0–V7) wires in the
/// 7 nm-class stack.
pub const LOWER_WIRE_DIMENSION: Length = Length::new(50.0e-9);

/// Critical dimension of the wide upper-level (M8–M9) wires.
pub const UPPER_WIRE_DIMENSION: Length = Length::new(215.0e-9);

/// Size-dependent copper conductivity `k(w) = k_bulk / (1 + λ_c/w)`.
///
/// # Panics
///
/// Panics if `dimension` is not strictly positive.
///
/// ```
/// use tsc_materials::copper;
/// use tsc_units::Length;
/// let narrow = copper::conductivity(Length::from_nanometers(50.0));
/// let wide = copper::conductivity(Length::from_nanometers(215.0));
/// assert!((narrow.get() - 105.0).abs() < 5.0);
/// assert!((wide.get() - 242.0).abs() < 8.0);
/// ```
#[must_use]
pub fn conductivity(dimension: Length) -> ThermalConductivity {
    assert!(
        dimension.meters() > 0.0,
        "wire dimension must be positive, got {dimension}"
    );
    let k = BULK.get() / (1.0 + SCATTERING_LENGTH.meters() / dimension.meters());
    ThermalConductivity::new(k)
}

/// The paper's fixed abstraction for lower-level (V0–V7) copper.
pub const LOWER_LEVEL: ThermalConductivity = ThermalConductivity::new(105.0);

/// The paper's fixed abstraction for upper-level (M8–M9) copper.
pub const UPPER_LEVEL: ThermalConductivity = ThermalConductivity::new(242.0);

/// Effective conductivity of a 100 nm × 100 nm thermal pillar (stacked
/// stripes with max-density vias): the paper reports 105 W/m/K from
/// COMSOL characterization — the via layers throttle the column to
/// roughly the narrow-wire value.
pub const PILLAR_100NM: ThermalConductivity = ThermalConductivity::new(105.0);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchors_match_paper_values() {
        let narrow = conductivity(LOWER_WIRE_DIMENSION);
        let wide = conductivity(UPPER_WIRE_DIMENSION);
        assert!(
            (narrow.get() - LOWER_LEVEL.get()).abs() < 5.0,
            "narrow wires: {narrow}"
        );
        assert!(
            (wide.get() - UPPER_LEVEL.get()).abs() < 8.0,
            "wide wires: {wide}"
        );
    }

    #[test]
    fn conductivity_monotone_in_width() {
        let mut last = 0.0;
        for nm in [10.0, 30.0, 50.0, 100.0, 215.0, 500.0, 5000.0] {
            let k = conductivity(Length::from_nanometers(nm)).get();
            assert!(k > last);
            last = k;
        }
    }

    #[test]
    fn approaches_bulk_for_wide_wires() {
        let k = conductivity(Length::from_micrometers(100.0));
        assert!(k.get() > 0.99 * BULK.get());
        assert!(k.get() < BULK.get());
    }

    #[test]
    #[should_panic(expected = "wire dimension must be positive")]
    fn zero_width_rejected() {
        let _ = conductivity(Length::ZERO);
    }
}
