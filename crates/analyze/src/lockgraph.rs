//! The cross-file concurrency pass: static lock-order graph, deadlock
//! cycle detection, and the hot-path hygiene lints that ride the same
//! per-function model ([`crate::model`]).
//!
//! **Graph.** Nodes are named lock fields (`JobQueue.inner`,
//! `RouterShared.table`, …), collected from every workspace file outside
//! `#[cfg(test)]` regions. An edge `A → B` means "somewhere, a guard of
//! `A` is live while `B` is acquired" — directly, or through exactly one
//! level of workspace-internal calls (the callee must have a *unique*
//! definition workspace-wide and a non-generic name; `len`, `get`,
//! `push`-style names are denied so a `Vec::len` call never manufactures
//! a false self-edge). A cycle in the graph is a potential deadlock and
//! is reported with both acquisition chains as `file:line` diagnostics;
//! a `// tsc-analyze: allow(lock-order): <reason>` at any edge site
//! removes that edge (and so any cycle through it).
//!
//! **Approximation bias.** Guard scopes are over-approximated (live to
//! the end of their block unless explicitly `drop`ped), which can only
//! add edges; name resolution is under-approximated (an acquisition on a
//! receiver that names no known lock field, e.g. a local
//! `Arc<Mutex<_>>`, is skipped; ambiguous field names resolve same-file
//! first, else require a unique workspace match), which can only drop
//! them. The runtime rank checker (`tsc-serve --features lock-order`)
//! covers the dropped side dynamically.
//!
//! **Lints.**
//! * `no-alloc-hot` — no `Vec::new`/`vec![…]`/`.to_vec()`/`.collect()`/
//!   `Box::new`/`format!` inside hot regions of `engine.rs`/`kernels.rs`
//!   (parallel-region closures and smoother/matvec bodies).
//! * `guard-across-await-free-blocking` — no lock guard held across a
//!   `Condvar` wait on a *different* lock, nor across blocking TCP/HTTP
//!   I/O.
//! * `no-wallclock-numeric` — no `Instant::now`/`SystemTime` in numeric
//!   library code; wall-clock timing belongs in `SolverStats`, where the
//!   determinism audit can see it.

use crate::lexer::{lex, Lexed, TokenKind};
use crate::model::{self, FileModel};
use crate::rules::{Context, FileClass, Violation};
use crate::walk;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Method/function names never followed through for call edges: they are
/// ubiquitous (std containers, local helpers) and following them would
/// manufacture edges out of name collisions.
const COMMON_CALLEES: &[&str] = &[
    "len", "is_empty", "new", "clone", "get", "set", "push", "pop", "insert", "remove", "take",
    "put", "next", "wait", "fill", "drop", "lock", "parse", "render", "capacity", "iter", "close",
    "total", "index", "default",
];

/// One graph node.
#[derive(Debug, Clone)]
pub struct LockNode {
    /// Qualified name, `Struct.field` or a static's name.
    pub name: String,
    /// Workspace-relative declaration site.
    pub file: String,
    pub line: usize,
}

/// One acquisition-under-guard witness for an edge.
#[derive(Debug, Clone)]
pub struct EdgeSite {
    /// Where the outer guard is taken.
    pub hold_file: String,
    pub hold_line: usize,
    /// Where the inner lock is acquired.
    pub acq_file: String,
    pub acq_line: usize,
    /// The called fn the acquisition sits in, when the edge crosses one
    /// level of calls.
    pub via: Option<String>,
}

/// One directed edge with every witness site.
#[derive(Debug, Clone)]
pub struct LockEdge {
    pub from: String,
    pub to: String,
    pub sites: Vec<EdgeSite>,
}

/// The pass output: the graph plus every surviving diagnostic.
#[derive(Debug, Default)]
pub struct ConcurrencyReport {
    pub files: usize,
    pub nodes: Vec<LockNode>,
    pub edges: Vec<LockEdge>,
    /// Surviving violations as `(file, violation)` pairs.
    pub violations: Vec<(PathBuf, Violation)>,
}

impl ConcurrencyReport {
    #[must_use]
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Human-readable graph summary for the gate binary.
    #[must_use]
    pub fn render_graph(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "lock-order graph: {} node(s), {} edge(s)\n",
            self.nodes.len(),
            self.edges.len()
        ));
        for n in &self.nodes {
            out.push_str(&format!("  node {} ({}:{})\n", n.name, n.file, n.line));
        }
        for e in &self.edges {
            let s = &e.sites[0];
            let via = s
                .via
                .as_deref()
                .map(|f| format!(" via {f}()"))
                .unwrap_or_default();
            out.push_str(&format!(
                "  edge {} -> {} (guard at {}:{}, acquires at {}:{}{})\n",
                e.from, e.to, s.hold_file, s.hold_line, s.acq_file, s.acq_line, via
            ));
        }
        out
    }
}

/// One loaded file with everything the passes need.
struct FileEntry {
    path: PathBuf,
    rel: String,
    class: FileClass,
    lexed: Lexed,
    model: FileModel,
    ctx: Context,
}

/// A resolved acquisition: file index, acquisition index, node index.
#[derive(Debug, Clone, Copy)]
struct Resolved {
    file: usize,
    acq: usize,
    node: usize,
}

/// Runs the concurrency pass over the workspace rooted at `root`.
///
/// # Errors
///
/// Propagates I/O errors from walking or reading the tree.
pub fn analyze_workspace(root: &Path) -> std::io::Result<ConcurrencyReport> {
    let files = walk::workspace_files(root)?;
    analyze_files(root, &files)
}

/// Runs the concurrency pass over an explicit file set (the `--root`
/// mode, used to point the gate at fixture trees).
///
/// # Errors
///
/// Propagates file-read errors.
pub fn analyze_files(root: &Path, files: &[PathBuf]) -> std::io::Result<ConcurrencyReport> {
    let mut entries = Vec::with_capacity(files.len());
    for file in files {
        let src = std::fs::read_to_string(file)?;
        let lexed = lex(&src);
        let model = model::build(&lexed);
        let ctx = Context::build(&lexed.tokens, &lexed.comments);
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .display()
            .to_string();
        entries.push(FileEntry {
            path: file.clone(),
            rel,
            class: walk::classify(root, file),
            lexed,
            model,
            ctx,
        });
    }

    let mut report = ConcurrencyReport {
        files: entries.len(),
        ..ConcurrencyReport::default()
    };

    let nodes = collect_nodes(&entries);
    let resolved = resolve_acquisitions(&entries, &nodes);
    let edges = collect_edges(&entries, &nodes, &resolved);
    report_cycles(&entries, &nodes, &edges, &mut report);
    report.nodes = nodes
        .iter()
        .map(|(name, file, line)| LockNode {
            name: name.clone(),
            file: entries[*file].rel.clone(),
            line: *line,
        })
        .collect();
    report.edges = edges;

    for (i, entry) in entries.iter().enumerate() {
        lint_guard_across_blocking(entry, &resolved, i, &mut report);
        lint_no_alloc_hot_entry(entry, &mut report);
        lint_no_wallclock_numeric(entry, &mut report);
    }
    report
        .violations
        .sort_by(|a, b| (&a.0, a.1.line, a.1.rule).cmp(&(&b.0, b.1.line, b.1.rule)));
    Ok(report)
}

/// Every lock field declared outside test regions:
/// `(qualified name, file index, line)`.
fn collect_nodes(entries: &[FileEntry]) -> Vec<(String, usize, usize)> {
    let mut nodes = Vec::new();
    for (i, e) in entries.iter().enumerate() {
        // Locks declared inside integration-test or bench trees are
        // harness scaffolding, not workspace shared state.
        if Path::new(&e.rel)
            .components()
            .any(|c| c.as_os_str() == "tests" || c.as_os_str() == "benches")
        {
            continue;
        }
        for f in &e.model.lock_fields {
            if e.ctx.in_test(f.line) {
                continue;
            }
            let q = f.qualified();
            if !nodes.iter().any(|(n, _, _)| *n == q) {
                nodes.push((q, i, f.line));
            }
        }
    }
    nodes.sort();
    nodes
}

/// Resolve each non-test acquisition's written field name to a node:
/// a lock field declared in the *same file* wins; otherwise the name
/// must match exactly one lock field workspace-wide. Unresolvable
/// receivers (locals, std handles) are skipped — see the module docs.
fn resolve_acquisitions(entries: &[FileEntry], nodes: &[(String, usize, usize)]) -> Vec<Resolved> {
    let mut out = Vec::new();
    for (fi, e) in entries.iter().enumerate() {
        for (ai, a) in e.model.acquisitions.iter().enumerate() {
            if e.ctx.in_test(a.line) {
                continue;
            }
            let same_file: Vec<usize> = nodes
                .iter()
                .enumerate()
                .filter(|(_, (n, nf, _))| {
                    *nf == fi && (n == &a.field || n.ends_with(&format!(".{}", a.field)))
                })
                .map(|(i, _)| i)
                .collect();
            let node = match same_file.as_slice() {
                [one] => Some(*one),
                [] => {
                    let global: Vec<usize> = nodes
                        .iter()
                        .enumerate()
                        .filter(|(_, (n, _, _))| {
                            n == &a.field || n.ends_with(&format!(".{}", a.field))
                        })
                        .map(|(i, _)| i)
                        .collect();
                    match global.as_slice() {
                        [one] => Some(*one),
                        _ => None,
                    }
                }
                _ => None,
            };
            if let Some(node) = node {
                out.push(Resolved {
                    file: fi,
                    acq: ai,
                    node,
                });
            }
        }
    }
    out
}

/// Fn-name registry for one-level call edges: names defined exactly once
/// workspace-wide and not on the deny list.
fn unique_fns(entries: &[FileEntry]) -> BTreeMap<String, (usize, usize)> {
    let mut counts: BTreeMap<&str, Vec<(usize, usize)>> = BTreeMap::new();
    for (fi, e) in entries.iter().enumerate() {
        for (gi, f) in e.model.fns.iter().enumerate() {
            counts.entry(f.name.as_str()).or_default().push((fi, gi));
        }
    }
    counts
        .into_iter()
        .filter(|(name, defs)| defs.len() == 1 && !COMMON_CALLEES.contains(name))
        .map(|(name, defs)| (name.to_string(), defs[0]))
        .collect()
}

fn collect_edges(
    entries: &[FileEntry],
    nodes: &[(String, usize, usize)],
    resolved: &[Resolved],
) -> Vec<LockEdge> {
    let fns = unique_fns(entries);
    let mut edges: Vec<LockEdge> = Vec::new();
    let mut add = |from: usize, to: usize, site: EdgeSite| {
        let (fname, tname) = (&nodes[from].0, &nodes[to].0);
        match edges
            .iter_mut()
            .find(|e| &e.from == fname && &e.to == tname)
        {
            Some(e) => e.sites.push(site),
            None => edges.push(LockEdge {
                from: fname.clone(),
                to: tname.clone(),
                sites: vec![site],
            }),
        }
    };

    for outer in resolved {
        let e = &entries[outer.file];
        let a = &e.model.acquisitions[outer.acq];
        // A waived hold site removes every edge out of it.
        if e.ctx.suppressed(a.line, "lock-order") {
            continue;
        }

        // Direct: another resolved acquisition inside the guard scope.
        for inner in resolved.iter().filter(|r| r.file == outer.file) {
            let b = &e.model.acquisitions[inner.acq];
            if b.token > a.token && b.token < a.scope_end && !e.ctx.suppressed(b.line, "lock-order")
            {
                add(
                    outer.node,
                    inner.node,
                    EdgeSite {
                        hold_file: e.rel.clone(),
                        hold_line: a.line,
                        acq_file: e.rel.clone(),
                        acq_line: b.line,
                        via: None,
                    },
                );
            }
        }

        // One level of calls: a uniquely-defined callee invoked inside
        // the guard scope contributes its own resolved acquisitions.
        for call in &e.model.calls {
            if call.token <= a.token || call.token >= a.scope_end {
                continue;
            }
            let Some(&(cf, cg)) = fns.get(&call.callee) else {
                continue;
            };
            let callee = &entries[cf].model.fns[cg];
            for inner in resolved.iter().filter(|r| r.file == cf) {
                let b = &entries[cf].model.acquisitions[inner.acq];
                if b.token > callee.body_start
                    && b.token < callee.body_end
                    && !entries[cf].ctx.suppressed(b.line, "lock-order")
                {
                    add(
                        outer.node,
                        inner.node,
                        EdgeSite {
                            hold_file: e.rel.clone(),
                            hold_line: a.line,
                            acq_file: entries[cf].rel.clone(),
                            acq_line: b.line,
                            via: Some(call.callee.clone()),
                        },
                    );
                }
            }
        }
    }
    edges.sort_by(|a, b| (&a.from, &a.to).cmp(&(&b.from, &b.to)));
    edges
}

/// DFS cycle detection over the edge list; every distinct cycle becomes
/// one `lock-order` violation carrying both acquisition chains.
fn report_cycles(
    entries: &[FileEntry],
    nodes: &[(String, usize, usize)],
    edges: &[LockEdge],
    report: &mut ConcurrencyReport,
) {
    let names: Vec<&str> = nodes.iter().map(|(n, _, _)| n.as_str()).collect();
    let adj: Vec<Vec<usize>> = names
        .iter()
        .map(|n| {
            edges
                .iter()
                .filter(|e| e.from == **n)
                .filter_map(|e| names.iter().position(|m| *m == e.to))
                .collect()
        })
        .collect();

    // Colored DFS from every node; a back edge closes a cycle. Cycles
    // are deduplicated by their normalized (smallest-first) rotation.
    let mut seen_cycles: Vec<Vec<usize>> = Vec::new();
    for start in 0..names.len() {
        let mut stack = vec![(start, 0usize)];
        let mut path = vec![start];
        let mut on_path = vec![false; names.len()];
        on_path[start] = true;
        while let Some((node, next)) = stack.last_mut() {
            if let Some(&succ) = adj[*node].get(*next) {
                *next += 1;
                if on_path[succ] {
                    let pos = path.iter().position(|&p| p == succ).unwrap_or(0);
                    let mut cycle: Vec<usize> = path[pos..].to_vec();
                    let min = cycle
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, v)| **v)
                        .map_or(0, |(i, _)| i);
                    cycle.rotate_left(min);
                    if !seen_cycles.contains(&cycle) {
                        seen_cycles.push(cycle);
                    }
                } else if path.len() < names.len() {
                    on_path[succ] = true;
                    path.push(succ);
                    stack.push((succ, 0));
                }
            } else {
                on_path[*node] = false;
                path.pop();
                stack.pop();
            }
        }
    }

    for cycle in seen_cycles {
        let mut chain = String::new();
        let mut first_site: Option<(&EdgeSite, usize)> = None;
        for (k, &n) in cycle.iter().enumerate() {
            let m = cycle[(k + 1) % cycle.len()];
            let Some(edge) = edges
                .iter()
                .find(|e| e.from == names[n] && e.to == names[m])
            else {
                continue;
            };
            let s = &edge.sites[0];
            if first_site.is_none() {
                let fi = entries
                    .iter()
                    .position(|e| e.rel == s.hold_file)
                    .unwrap_or(0);
                first_site = Some((s, fi));
            }
            let via = s
                .via
                .as_deref()
                .map(|f| format!(" via {f}()"))
                .unwrap_or_default();
            chain.push_str(&format!(
                "; {} -> {} (guard {}:{}, acquire {}:{}{})",
                names[n], names[m], s.hold_file, s.hold_line, s.acq_file, s.acq_line, via
            ));
        }
        let names_in_cycle: Vec<&str> = cycle.iter().map(|&n| names[n]).collect();
        let Some((site, fi)) = first_site else {
            continue;
        };
        report.violations.push((
            entries[fi].path.clone(),
            Violation {
                line: site.hold_line,
                rule: "lock-order",
                message: format!(
                    "potential deadlock: lock-order cycle {}{}",
                    names_in_cycle.join(" -> "),
                    chain
                ),
            },
        ));
    }
}

/// `guard-across-await-free-blocking`: a live guard (other than the one
/// being waited on) across a `Condvar` wait, or any live guard across
/// blocking I/O.
fn lint_guard_across_blocking(
    entry: &FileEntry,
    resolved: &[Resolved],
    file_index: usize,
    report: &mut ConcurrencyReport,
) {
    let live_at = |token: usize| {
        resolved
            .iter()
            .filter(|r| r.file == file_index)
            .map(|r| &entry.model.acquisitions[r.acq])
            .filter(move |a| a.token < token && token < a.scope_end)
    };

    for w in &entry.model.waits {
        if entry.ctx.in_test(w.line) {
            continue;
        }
        for a in live_at(w.token) {
            let exempt = a
                .guard
                .as_ref()
                .is_some_and(|g| w.involved.iter().any(|i| i == g));
            if exempt
                || entry
                    .ctx
                    .suppressed(w.line, "guard-across-await-free-blocking")
            {
                continue;
            }
            report.violations.push((
                entry.path.clone(),
                Violation {
                    line: w.line,
                    rule: "guard-across-await-free-blocking",
                    message: format!(
                        "guard of `{}` (taken line {}) is held across a condvar wait on a \
                         different lock — release it first or wait on its own condvar",
                        a.field, a.line
                    ),
                },
            ));
        }
    }

    for io in &entry.model.io_sites {
        if entry.ctx.in_test(io.line) {
            continue;
        }
        for a in live_at(io.token) {
            if entry
                .ctx
                .suppressed(io.line, "guard-across-await-free-blocking")
            {
                continue;
            }
            report.violations.push((
                entry.path.clone(),
                Violation {
                    line: io.line,
                    rule: "guard-across-await-free-blocking",
                    message: format!(
                        "guard of `{}` (taken line {}) is held across blocking `{}` I/O — \
                         drop the guard before touching the network",
                        a.field, a.line, io.what
                    ),
                },
            ));
        }
    }
}

/// `no-alloc-hot` applies to the thermal hot-path files by name.
fn lint_no_alloc_hot_entry(entry: &FileEntry, report: &mut ConcurrencyReport) {
    let name = entry
        .path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("");
    if name != "engine.rs" && name != "kernels.rs" {
        return;
    }
    for v in lint_no_alloc_hot(&entry.lexed, &entry.model, &entry.ctx) {
        report.violations.push((entry.path.clone(), v));
    }
}

/// The allocation patterns `no-alloc-hot` rejects inside hot regions.
/// Exposed for the fixture tests.
#[must_use]
pub fn lint_no_alloc_hot(lexed: &Lexed, model: &FileModel, ctx: &Context) -> Vec<Violation> {
    let tokens = &lexed.tokens;
    let mut out = Vec::new();
    let mut flag = |line: usize, what: &str, via: &str| {
        if !ctx.suppressed(line, "no-alloc-hot") {
            out.push(Violation {
                line,
                rule: "no-alloc-hot",
                message: format!(
                    "`{what}` allocates inside the hot region `{via}` — hoist the buffer into \
                     a workspace (preallocated) or restructure the loop"
                ),
            });
        }
    };
    for region in &model.hot_regions {
        for i in region.start..=region.end.min(tokens.len().saturating_sub(1)) {
            let t = &tokens[i];
            if t.kind != TokenKind::Ident || ctx.in_test(t.line) {
                continue;
            }
            let prev = i.checked_sub(1).map(|p| tokens[p].text.as_str());
            let next = tokens.get(i + 1).map(|n| n.text.as_str());
            let next2 = tokens.get(i + 2).map(|n| n.text.as_str());
            match t.text.as_str() {
                "Vec" if next == Some("::") && next2 == Some("new") => {
                    flag(t.line, "Vec::new", &region.via);
                }
                "Box" if next == Some("::") && next2 == Some("new") => {
                    flag(t.line, "Box::new", &region.via);
                }
                "vec" if next == Some("!") => flag(t.line, "vec!", &region.via),
                "format" if next == Some("!") => flag(t.line, "format!", &region.via),
                "to_vec" if prev == Some(".") && next == Some("(") => {
                    flag(t.line, ".to_vec()", &region.via);
                }
                "collect" if prev == Some(".") && next == Some("(") => {
                    flag(t.line, ".collect()", &region.via);
                }
                _ => {}
            }
        }
    }
    out
}

/// `no-wallclock-numeric`: wall-clock reads in numeric library code.
fn lint_no_wallclock_numeric(entry: &FileEntry, report: &mut ConcurrencyReport) {
    if !(entry.class.is_numeric && entry.class.is_library) {
        return;
    }
    let tokens = &entry.lexed.tokens;
    for i in 0..tokens.len() {
        let t = &tokens[i];
        if t.kind != TokenKind::Ident || entry.ctx.in_test(t.line) {
            continue;
        }
        let hit = match t.text.as_str() {
            "Instant" => {
                tokens.get(i + 1).is_some_and(|n| n.text == "::")
                    && tokens.get(i + 2).is_some_and(|n| n.text == "now")
            }
            "SystemTime" => tokens.get(i + 1).is_some_and(|n| n.text == "::"),
            _ => false,
        };
        if hit && !entry.ctx.suppressed(t.line, "no-wallclock-numeric") {
            report.violations.push((
                entry.path.clone(),
                Violation {
                    line: t.line,
                    rule: "no-wallclock-numeric",
                    message: format!(
                        "`{}` read in numeric library code — wall-clock values must only feed \
                         `SolverStats` timing, never the numerics; waive with the stats-only \
                         argument if that is the case",
                        t.text
                    ),
                },
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn write_tree(files: &[(&str, &str)]) -> tempdir::TempDir {
        let dir = tempdir::TempDir::new();
        for (name, src) in files {
            let path = dir.path.join(name);
            if let Some(parent) = path.parent() {
                std::fs::create_dir_all(parent).expect("mkdir");
            }
            let mut f = std::fs::File::create(&path).expect("create");
            f.write_all(src.as_bytes()).expect("write");
        }
        dir
    }

    fn run(files: &[(&str, &str)]) -> ConcurrencyReport {
        let dir = write_tree(files);
        let paths: Vec<PathBuf> = files.iter().map(|(n, _)| dir.path.join(n)).collect();
        analyze_files(&dir.path, &paths).expect("analyze")
    }

    /// Minimal std-only tempdir (no crates.io in this workspace).
    mod tempdir {
        use std::path::PathBuf;
        use std::sync::atomic::{AtomicU64, Ordering};

        static NEXT: AtomicU64 = AtomicU64::new(0);

        pub struct TempDir {
            pub path: PathBuf,
        }

        impl TempDir {
            pub fn new() -> Self {
                let path = std::env::temp_dir().join(format!(
                    "tsc-analyze-test-{}-{}",
                    std::process::id(),
                    NEXT.fetch_add(1, Ordering::Relaxed)
                ));
                std::fs::create_dir_all(&path).expect("tempdir");
                TempDir { path }
            }
        }

        impl Drop for TempDir {
            fn drop(&mut self) {
                let _ = std::fs::remove_dir_all(&self.path);
            }
        }
    }

    const CYCLE_A: &str = "use std::sync::Mutex;\n\
        pub struct Alpha { pub a_state: Mutex<u32> }\n\
        pub struct Beta { pub b_state: Mutex<u32> }\n\
        pub fn forward(x: &Alpha, y: &Beta) -> u32 {\n\
            let a = x.a_state.lock().unwrap();\n\
            let b = y.b_state.lock().unwrap();\n\
            *a + *b\n\
        }\n\
        pub fn backward(x: &Alpha, y: &Beta) -> u32 {\n\
            let b = y.b_state.lock().unwrap();\n\
            let a = x.a_state.lock().unwrap();\n\
            *a + *b\n\
        }\n";

    #[test]
    fn opposite_nesting_orders_report_a_cycle() {
        let report = run(&[("cycle.rs", CYCLE_A)]);
        assert_eq!(report.nodes.len(), 2);
        let cycles: Vec<_> = report
            .violations
            .iter()
            .filter(|(_, v)| v.rule == "lock-order")
            .collect();
        assert_eq!(cycles.len(), 1, "one deduplicated cycle: {report:?}");
        assert!(cycles[0].1.message.contains("Alpha.a_state"));
        assert!(cycles[0].1.message.contains("Beta.b_state"));
    }

    #[test]
    fn consistent_nesting_is_clean_and_produces_edges() {
        let src = "use std::sync::Mutex;\n\
            pub struct Alpha { pub a_state: Mutex<u32> }\n\
            pub struct Beta { pub b_state: Mutex<u32> }\n\
            pub fn one(x: &Alpha, y: &Beta) -> u32 {\n\
                let a = x.a_state.lock().unwrap();\n\
                let b = y.b_state.lock().unwrap();\n\
                *a + *b\n\
            }\n";
        let report = run(&[("clean.rs", src)]);
        assert!(report.clean(), "{:?}", report.violations);
        assert_eq!(report.edges.len(), 1);
        assert_eq!(report.edges[0].from, "Alpha.a_state");
        assert_eq!(report.edges[0].to, "Beta.b_state");
    }

    #[test]
    fn drop_before_reacquire_breaks_the_edge() {
        let src = "use std::sync::Mutex;\n\
            pub struct Alpha { pub a_state: Mutex<u32> }\n\
            pub struct Beta { pub b_state: Mutex<u32> }\n\
            pub fn one(x: &Alpha, y: &Beta) {\n\
                let a = x.a_state.lock().unwrap();\n\
                drop(a);\n\
                let _b = y.b_state.lock().unwrap();\n\
            }\n\
            pub fn two(x: &Alpha, y: &Beta) {\n\
                let b = y.b_state.lock().unwrap();\n\
                drop(b);\n\
                let _a = x.a_state.lock().unwrap();\n\
            }\n";
        let report = run(&[("dropped.rs", src)]);
        assert!(report.clean(), "{:?}", report.violations);
        assert!(report.edges.is_empty());
    }

    #[test]
    fn one_level_call_edges_close_the_cycle() {
        let a = "use std::sync::Mutex;\n\
            pub struct Alpha { pub a_state: Mutex<u32> }\n\
            pub fn with_a(x: &Alpha, y: &crate::Beta) {\n\
                let a = x.a_state.lock().unwrap();\n\
                grab_b_only(y);\n\
                drop(a);\n\
            }\n";
        let b = "use std::sync::Mutex;\n\
            pub struct Beta { pub b_state: Mutex<u32> }\n\
            pub fn grab_b_only(y: &Beta) {\n\
                let _b = y.b_state.lock().unwrap();\n\
            }\n\
            pub fn with_b(y: &Beta, x: &crate::Alpha) {\n\
                let b = y.b_state.lock().unwrap();\n\
                let _a = x.a_state.lock().unwrap();\n\
                drop(b);\n\
            }\n";
        let report = run(&[("a.rs", a), ("b.rs", b)]);
        let cycles: Vec<_> = report
            .violations
            .iter()
            .filter(|(_, v)| v.rule == "lock-order")
            .collect();
        assert_eq!(cycles.len(), 1, "{report:?}");
        assert!(cycles[0].1.message.contains("via grab_b_only()"));
    }

    #[test]
    fn waiver_at_the_site_suppresses_the_cycle() {
        let src = CYCLE_A.replace(
            "let b = y.b_state.lock().unwrap();\nlet a = x.a_state.lock().unwrap();",
            "// tsc-analyze: allow(lock-order): test harness only ever runs single-threaded\nlet b = y.b_state.lock().unwrap();\nlet a = x.a_state.lock().unwrap();",
        );
        assert_ne!(src, CYCLE_A, "waiver insertion must not be a no-op");
        let report = run(&[("waived.rs", &src)]);
        assert!(
            report
                .violations
                .iter()
                .all(|(_, v)| v.rule != "lock-order"),
            "{:?}",
            report.violations
        );
    }

    #[test]
    fn guard_across_foreign_condvar_wait_fires() {
        let src = "use std::sync::{Condvar, Mutex};\n\
            pub struct S { pub state: Mutex<u32>, pub other: Mutex<u32>, pub cv: Condvar }\n\
            impl S {\n\
                pub fn bad(&self) {\n\
                    let held = self.other.lock().unwrap();\n\
                    let g = self.state.lock().unwrap();\n\
                    let _g = self.cv.wait(g).unwrap();\n\
                    drop(held);\n\
                }\n\
            }\n";
        let report = run(&[("waiting.rs", src)]);
        assert!(report
            .violations
            .iter()
            .any(|(_, v)| v.rule == "guard-across-await-free-blocking"
                && v.message.contains("other")));
    }

    #[test]
    fn waiting_on_your_own_guard_is_fine() {
        let src = "use std::sync::{Condvar, Mutex};\n\
            pub struct S { pub state: Mutex<u32>, pub cv: Condvar }\n\
            impl S {\n\
                pub fn ok(&self) {\n\
                    let mut g = self.state.lock().unwrap();\n\
                    while *g == 0 { g = self.cv.wait(g).unwrap(); }\n\
                }\n\
            }\n";
        let report = run(&[("ok_wait.rs", src)]);
        assert!(report.clean(), "{:?}", report.violations);
    }

    #[test]
    fn guard_across_tcp_io_fires() {
        let src = "use std::sync::Mutex;\n\
            use std::io::Write;\n\
            pub struct S { pub state: Mutex<u32> }\n\
            impl S {\n\
                pub fn bad(&self, stream: &mut std::net::TcpStream) {\n\
                    let g = self.state.lock().unwrap();\n\
                    stream.write_all(b\"x\").unwrap();\n\
                    drop(g);\n\
                }\n\
            }\n";
        let report = run(&[("io.rs", src)]);
        assert!(report
            .violations
            .iter()
            .any(|(_, v)| v.rule == "guard-across-await-free-blocking"
                && v.message.contains("write_all")));
    }

    #[test]
    fn alloc_in_hot_closure_fires_per_pattern() {
        let src = "fn step(plan: &ExecPlan, x: &mut [f64]) {\n\
                plan.map_mut(x, |range, chunk| {\n\
                    let v = Vec::new();\n\
                    let w = vec![0.0; 4];\n\
                    let b = Box::new(1.0);\n\
                    let s = format!(\"{range:?}\");\n\
                    let t = chunk.to_vec();\n\
                    let c: Vec<f64> = chunk.iter().copied().collect();\n\
                    (v, w, b, s, t, c)\n\
                });\n\
            }\n";
        let lexed = lex(src);
        let model = model::build(&lexed);
        let ctx = Context::build(&lexed.tokens, &lexed.comments);
        let hits = lint_no_alloc_hot(&lexed, &model, &ctx);
        assert_eq!(hits.len(), 6, "{hits:?}");
    }

    #[test]
    fn alloc_outside_hot_regions_passes() {
        let src = "fn setup() -> Vec<f64> {\n    let v = Vec::new();\n    v\n}\n";
        let lexed = lex(src);
        let model = model::build(&lexed);
        let ctx = Context::build(&lexed.tokens, &lexed.comments);
        assert!(lint_no_alloc_hot(&lexed, &model, &ctx).is_empty());
    }

    #[test]
    fn wallclock_in_numeric_library_fires_and_waives() {
        let bare = "use std::time::Instant;\npub fn f() { let _t = Instant::now(); }\n";
        let dir = write_tree(&[("crates/thermal/src/x.rs", bare)]);
        let paths = vec![dir.path.join("crates/thermal/src/x.rs")];
        let report = analyze_files(&dir.path, &paths).expect("analyze");
        assert!(report
            .violations
            .iter()
            .any(|(_, v)| v.rule == "no-wallclock-numeric"));

        let waived = "use std::time::Instant;\n\
            pub fn f() {\n\
                // tsc-analyze: allow(no-wallclock-numeric): feeds SolverStats.wall_ms only\n\
                let _t = Instant::now();\n\
            }\n";
        let dir = write_tree(&[("crates/thermal/src/x.rs", waived)]);
        let paths = vec![dir.path.join("crates/thermal/src/x.rs")];
        let report = analyze_files(&dir.path, &paths).expect("analyze");
        assert!(report.clean(), "{:?}", report.violations);
    }
}
