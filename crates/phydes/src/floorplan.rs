//! Sequence-pair floorplanning with thermal-aware simulated annealing —
//! the Corblivar \[31\] substitute of Sec. IIIB.
//!
//! A floorplan is encoded as a *sequence pair* `(Γ⁺, Γ⁻)`: module `a`
//! sits left of `b` when `a` precedes `b` in both sequences, and below
//! `b` when `a` precedes `b` in `Γ⁻` only. Positions follow from longest
//! paths in the induced horizontal/vertical constraint graphs, which
//! guarantees overlap-free placements by construction.
//!
//! The annealing cost blends die area with a fast peak-power-density
//! proxy for temperature, swept by `temperature_weight` exactly as the
//! paper sweeps its cost from 100 % area to 100 % temperature, under a
//! half-perimeter wirelength budget.

use crate::anneal::{anneal, AnnealState, Schedule};
use tsc_geometry::Rect;
use tsc_rng::Rng64;
use tsc_units::{Area, HeatFlux, Length, Power, Ratio};

/// A floorplan module (functional unit or macro).
#[derive(Debug, Clone, PartialEq)]
pub struct Module {
    /// Name, e.g. `"FPU"` or `"systolic-array"`.
    pub name: String,
    /// Module width.
    pub width: Length,
    /// Module height.
    pub height: Length,
    /// Peak power dissipated by the module.
    pub power: Power,
    /// Hard macros cannot be resized/rotated and exclude pillars.
    pub is_macro: bool,
}

impl Module {
    /// Creates a soft module.
    #[must_use]
    pub fn soft(name: impl Into<String>, width: Length, height: Length, power: Power) -> Self {
        Self {
            name: name.into(),
            width,
            height,
            power,
            is_macro: false,
        }
    }

    /// Creates a hard macro.
    #[must_use]
    pub fn hard_macro(
        name: impl Into<String>,
        width: Length,
        height: Length,
        power: Power,
    ) -> Self {
        Self {
            name: name.into(),
            width,
            height,
            power,
            is_macro: true,
        }
    }

    /// Module area.
    #[must_use]
    pub fn area(&self) -> Area {
        self.width * self.height
    }

    /// Peak heat flux of the module.
    #[must_use]
    pub fn flux(&self) -> HeatFlux {
        self.power / self.area()
    }
}

/// A two-pin net between modules (by index), for HPWL accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Net {
    /// First endpoint (module index).
    pub a: usize,
    /// Second endpoint (module index).
    pub b: usize,
}

/// A placed floorplan: module rectangles plus bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub struct Floorplan {
    /// Placements, parallel to the input module list.
    pub placements: Vec<Rect>,
    /// Bounding box of the placement.
    pub bounding_box: Rect,
}

impl Floorplan {
    /// Total half-perimeter wirelength over `nets`.
    #[must_use]
    pub fn hpwl(&self, nets: &[Net]) -> Length {
        nets.iter()
            .map(|n| {
                let ca = self.placements[n.a].center();
                let cb = self.placements[n.b].center();
                ca.manhattan_distance(cb)
            })
            .sum()
    }

    /// Die area (bounding box).
    #[must_use]
    pub fn area(&self) -> Area {
        self.bounding_box.area()
    }

    /// `true` when no two placements overlap (sequence-pair placements
    /// always satisfy this; exposed for validation).
    #[must_use]
    pub fn is_legal(&self) -> bool {
        for i in 0..self.placements.len() {
            for j in (i + 1)..self.placements.len() {
                if self.placements[i].intersects(&self.placements[j]) {
                    return false;
                }
            }
        }
        true
    }
}

/// The peak local power density (W/m²) over a coarse grid, smoothed over
/// a spreading radius — the fast thermal proxy inside the SA loop.
///
/// The proxy correlates with junction temperature: clustered hot modules
/// score worse than spread ones.
#[must_use]
pub fn hotspot_proxy(modules: &[Module], plan: &Floorplan) -> HeatFlux {
    const GRID: usize = 24;
    let bb = plan.bounding_box;
    if bb.area().square_meters() <= 0.0 {
        return HeatFlux::ZERO;
    }
    let mut density = vec![0.0_f64; GRID * GRID];
    let dx = bb.width() / GRID as f64;
    let dy = bb.height() / GRID as f64;
    let cell_area = (dx * dy).square_meters();
    for (m, r) in modules.iter().zip(&plan.placements) {
        // Deposit module power over covered cells.
        for gj in 0..GRID {
            for gi in 0..GRID {
                let cell = Rect::from_origin_size(
                    bb.min_x() + dx * gi as f64,
                    bb.min_y() + dy * gj as f64,
                    dx,
                    dy,
                );
                if let Some(ov) = cell.intersection(r) {
                    let share = ov.area().square_meters() / r.area().square_meters();
                    density[gj * GRID + gi] += m.power.watts() * share / cell_area;
                }
            }
        }
    }
    // Repeated smoothing passes approximate lateral spreading in the
    // stack (a spreading radius of a few grid cells): the proxy then
    // rewards *separating* hot modules, not just shrinking them.
    let mut smooth = density;
    for _ in 0..6 {
        let mut next = vec![0.0_f64; GRID * GRID];
        for j in 0..GRID {
            for i in 0..GRID {
                let mut acc = 0.0;
                let mut w = 0.0;
                for (di, dj, wt) in [
                    (0i64, 0i64, 2.0),
                    (1, 0, 1.0),
                    (-1, 0, 1.0),
                    (0, 1, 1.0),
                    (0, -1, 1.0),
                ] {
                    let ii = i as i64 + di;
                    let jj = j as i64 + dj;
                    if (0..GRID as i64).contains(&ii) && (0..GRID as i64).contains(&jj) {
                        acc += wt * smooth[jj as usize * GRID + ii as usize];
                        w += wt;
                    }
                }
                next[j * GRID + i] = acc / w;
            }
        }
        smooth = next;
    }
    HeatFlux::new(smooth.iter().copied().fold(0.0, f64::max))
}

/// Configuration of the thermal-aware floorplanner.
#[derive(Debug, Clone, PartialEq)]
pub struct FloorplanConfig {
    /// Weight of the temperature proxy in the cost, in `[0, 1]`:
    /// `0` = pure area (timing-driven), `1` = pure temperature.
    pub temperature_weight: Ratio,
    /// HPWL budget as a multiple of the initial plan's HPWL (the paper
    /// keeps wirelength growth within 5 %).
    pub wirelength_budget: Ratio,
    /// Annealing schedule.
    pub schedule: Schedule,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FloorplanConfig {
    fn default() -> Self {
        Self {
            temperature_weight: Ratio::ZERO,
            wirelength_budget: Ratio::from_percent(105.0),
            schedule: Schedule::standard(),
            seed: 7,
        }
    }
}

/// An owned sequence-pair candidate: the serializable core of a
/// floorplanning state (what a job checkpoint persists).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpCandidate {
    /// The Γ⁺ sequence (a permutation of `0..n`).
    pub gamma_pos: Vec<usize>,
    /// The Γ⁻ sequence (a permutation of `0..n`).
    pub gamma_neg: Vec<usize>,
    /// Per-module rotation flags (always `false` for hard macros).
    pub rotated: Vec<bool>,
}

impl SpCandidate {
    /// The identity candidate: both sequences `0..n`, nothing rotated
    /// (a single row).
    #[must_use]
    pub fn identity(n: usize) -> Self {
        Self {
            gamma_pos: (0..n).collect(),
            gamma_neg: (0..n).collect(),
            rotated: vec![false; n],
        }
    }
}

/// An owned floorplanning problem: modules, nets, and the fixed cost
/// normalizers, detached from any borrow so long-running jobs can hold
/// it across step slices and threads.
///
/// The cost function and neighbourhood are exactly those the in-process
/// [`floorplan`] annealer explores; this type exists so external
/// schedulers (parallel-tempered jobs) can drive the same search in an
/// owned, checkpointable form.
#[derive(Debug, Clone)]
pub struct FloorplanProblem {
    modules: Vec<Module>,
    nets: Vec<Net>,
    temperature_weight: f64,
    area_norm: f64,
    flux_norm: f64,
    hpwl_limit: f64,
}

impl FloorplanProblem {
    /// Builds the problem with the same normalizers [`floorplan`] uses:
    /// area normalized by total module area, flux by the identity
    /// placement's hotspot proxy. The HPWL budget is taken relative to
    /// the identity placement (jobs skip the pure-area reference pass;
    /// pass `f64::INFINITY` via a large `wirelength_budget` to disable
    /// the budget entirely).
    ///
    /// # Panics
    ///
    /// Panics if `modules` is empty or `temperature_weight` is outside
    /// `[0, 1]`.
    #[must_use]
    pub fn new(
        modules: Vec<Module>,
        nets: Vec<Net>,
        temperature_weight: Ratio,
        wirelength_budget: Ratio,
    ) -> Self {
        assert!(!modules.is_empty(), "floorplan needs at least one module");
        assert!(
            temperature_weight.is_proper(),
            "temperature weight must be within [0, 1]"
        );
        let n = modules.len();
        let initial = SpCandidate::identity(n);
        let initial_plan = place_sequence_pair(
            &modules,
            &initial.gamma_pos,
            &initial.gamma_neg,
            &initial.rotated,
        );
        let total_area: f64 = modules.iter().map(|m| m.area().square_meters()).sum();
        let flux_norm = hotspot_proxy(&modules, &initial_plan)
            .watts_per_square_meter()
            .max(1e-9);
        let hpwl_limit =
            initial_plan.hpwl(&nets).meters().max(1e-12) * wirelength_budget.fraction();
        Self {
            modules,
            nets,
            temperature_weight: temperature_weight.fraction(),
            area_norm: total_area.max(1e-18),
            flux_norm,
            hpwl_limit,
        }
    }

    /// The problem's modules.
    #[must_use]
    pub fn modules(&self) -> &[Module] {
        &self.modules
    }

    /// The identity starting candidate.
    #[must_use]
    pub fn initial(&self) -> SpCandidate {
        SpCandidate::identity(self.modules.len())
    }

    /// Proposes a neighbour with the same three moves the in-process
    /// annealer uses (swap Γ⁺, swap both, rotate a soft module).
    #[must_use]
    pub fn neighbour(&self, cand: &SpCandidate, rng: &mut Rng64) -> SpCandidate {
        let mut s = cand.clone();
        let n = s.gamma_pos.len();
        if n < 2 {
            return s;
        }
        let i = rng.gen_range(0..n);
        let j = rng.gen_range(0..n);
        match rng.gen_range(0..3) {
            0 => s.gamma_pos.swap(i, j),
            1 => {
                s.gamma_pos.swap(i, j);
                s.gamma_neg.swap(i, j);
            }
            _ => {
                let m = rng.gen_range(0..n);
                if !self.modules[m].is_macro {
                    s.rotated[m] = !s.rotated[m];
                }
            }
        }
        s
    }

    /// The blended area/temperature cost with the HPWL overshoot
    /// penalty — identical arithmetic to the in-process annealer.
    #[must_use]
    pub fn cost(&self, cand: &SpCandidate) -> f64 {
        let plan = self.place(cand);
        let area = plan.area().square_meters() / self.area_norm;
        let flux = hotspot_proxy(&self.modules, &plan).watts_per_square_meter() / self.flux_norm;
        let hpwl = plan.hpwl(&self.nets).meters();
        let over = (hpwl / self.hpwl_limit - 1.0).max(0.0);
        let w = self.temperature_weight;
        (1.0 - w) * area + w * flux + 10.0 * over
    }

    /// Places a candidate.
    ///
    /// # Panics
    ///
    /// Panics if the candidate's sequences are not permutations of
    /// `0..modules.len()`.
    #[must_use]
    pub fn place(&self, cand: &SpCandidate) -> Floorplan {
        place_sequence_pair(
            &self.modules,
            &cand.gamma_pos,
            &cand.gamma_neg,
            &cand.rotated,
        )
    }

    /// Full result bookkeeping for a candidate (plan, hotspot, HPWL).
    #[must_use]
    pub fn evaluate(&self, cand: &SpCandidate) -> FloorplanResult {
        let plan = self.place(cand);
        let hotspot = hotspot_proxy(&self.modules, &plan);
        let wirelength = plan.hpwl(&self.nets);
        FloorplanResult {
            plan,
            hotspot,
            wirelength,
        }
    }
}

/// Sequence-pair state explored by the annealer.
#[derive(Clone)]
struct SpState<'a> {
    modules: &'a [Module],
    nets: &'a [Net],
    gamma_pos: Vec<usize>,
    gamma_neg: Vec<usize>,
    rotated: Vec<bool>,
    temperature_weight: f64,
    // Normalizers fixed at construction so cost terms are comparable.
    area_norm: f64,
    flux_norm: f64,
    hpwl_limit: f64,
}

impl SpState<'_> {
    fn place(&self) -> Floorplan {
        place_sequence_pair(
            self.modules,
            &self.gamma_pos,
            &self.gamma_neg,
            &self.rotated,
        )
    }
}

impl AnnealState for SpState<'_> {
    fn neighbour(&self, rng: &mut Rng64) -> Self {
        let mut s = self.clone();
        let n = s.gamma_pos.len();
        if n < 2 {
            return s;
        }
        let i = rng.gen_range(0..n);
        let j = rng.gen_range(0..n);
        match rng.gen_range(0..3) {
            0 => s.gamma_pos.swap(i, j),
            1 => {
                s.gamma_pos.swap(i, j);
                s.gamma_neg.swap(i, j);
            }
            _ => {
                // Rotate a random soft module.
                let m = rng.gen_range(0..n);
                if !s.modules[m].is_macro {
                    s.rotated[m] = !s.rotated[m];
                }
            }
        }
        s
    }

    fn cost(&self) -> f64 {
        let plan = self.place();
        let area = plan.area().square_meters() / self.area_norm;
        let flux = hotspot_proxy(self.modules, &plan).watts_per_square_meter() / self.flux_norm;
        let hpwl = plan.hpwl(self.nets).meters();
        let over = (hpwl / self.hpwl_limit - 1.0).max(0.0);
        let w = self.temperature_weight;
        (1.0 - w) * area + w * flux + 10.0 * over
    }
}

/// Places a sequence pair by longest-path evaluation.
///
/// # Panics
///
/// Panics if the sequences are not permutations of `0..modules.len()`.
#[must_use]
pub fn place_sequence_pair(
    modules: &[Module],
    gamma_pos: &[usize],
    gamma_neg: &[usize],
    rotated: &[bool],
) -> Floorplan {
    let n = modules.len();
    assert!(
        gamma_pos.len() == n && gamma_neg.len() == n && rotated.len() == n,
        "sequence/rotation lengths must match module count"
    );
    // Position of each module in each sequence.
    let mut pos_p = vec![0usize; n];
    let mut pos_n = vec![0usize; n];
    for (idx, &m) in gamma_pos.iter().enumerate() {
        pos_p[m] = idx;
    }
    for (idx, &m) in gamma_neg.iter().enumerate() {
        pos_n[m] = idx;
    }
    let dims = |m: usize| -> (f64, f64) {
        let (w, h) = (modules[m].width.meters(), modules[m].height.meters());
        if rotated[m] {
            (h, w)
        } else {
            (w, h)
        }
    };
    // Longest-path x: process modules in Γ⁺ order; x[b] = max over a
    // "left of b" of x[a] + w[a]. a is left of b iff it precedes b in
    // both sequences.
    let mut x = vec![0.0_f64; n];
    let mut y = vec![0.0_f64; n];
    for &b in gamma_pos {
        let mut best = 0.0_f64;
        for a in 0..n {
            if a != b && pos_p[a] < pos_p[b] && pos_n[a] < pos_n[b] {
                best = best.max(x[a] + dims(a).0);
            }
        }
        x[b] = best;
    }
    // Longest-path y: a is below b iff a follows b in Γ⁺ but precedes it
    // in Γ⁻.
    for &b in gamma_neg.iter() {
        let mut best = 0.0_f64;
        for a in 0..n {
            if a != b && pos_p[a] > pos_p[b] && pos_n[a] < pos_n[b] {
                best = best.max(y[a] + dims(a).1);
            }
        }
        y[b] = best;
    }
    let placements: Vec<Rect> = (0..n)
        .map(|m| {
            let (w, h) = dims(m);
            Rect::from_origin_size(
                Length::from_meters(x[m]),
                Length::from_meters(y[m]),
                Length::from_meters(w),
                Length::from_meters(h),
            )
        })
        .collect();
    let bounding_box = placements
        .iter()
        .fold(None::<Rect>, |acc, r| {
            Some(match acc {
                None => *r,
                Some(bb) => bb.union(r),
            })
        })
        .unwrap_or_else(|| {
            Rect::from_origin_size(Length::ZERO, Length::ZERO, Length::ZERO, Length::ZERO)
        });
    // Anchor the bounding box at the origin.
    Floorplan {
        placements,
        bounding_box,
    }
}

/// Result of a floorplanning run.
#[derive(Debug, Clone)]
pub struct FloorplanResult {
    /// The chosen plan.
    pub plan: Floorplan,
    /// Peak power-density proxy of the plan.
    pub hotspot: HeatFlux,
    /// HPWL of the plan.
    pub wirelength: Length,
}

/// Runs thermal-aware floorplanning over `modules` and `nets`.
///
/// # Panics
///
/// Panics if `modules` is empty or `temperature_weight` is not in `[0, 1]`.
#[must_use]
pub fn floorplan(modules: &[Module], nets: &[Net], config: &FloorplanConfig) -> FloorplanResult {
    assert!(!modules.is_empty(), "floorplan needs at least one module");
    assert!(
        config.temperature_weight.is_proper(),
        "temperature weight must be within [0, 1]"
    );
    let n = modules.len();
    let identity: Vec<usize> = (0..n).collect();
    let rotated = vec![false; n];
    let initial_plan = place_sequence_pair(modules, &identity, &identity, &rotated);
    let total_area: f64 = modules.iter().map(|m| m.area().square_meters()).sum();
    let flux_norm = hotspot_proxy(modules, &initial_plan)
        .watts_per_square_meter()
        .max(1e-9);
    let mk_state = |weight: f64, hpwl_limit: f64| SpState {
        modules,
        nets,
        gamma_pos: identity.clone(),
        gamma_neg: identity.clone(),
        rotated: rotated.clone(),
        temperature_weight: weight,
        area_norm: total_area.max(1e-18),
        flux_norm,
        hpwl_limit,
    };
    // The wirelength budget is relative to the *timing-driven* plan
    // (Sec. IIIB keeps wirelength growth within 5 % of it), so run a
    // pure-area pass first to establish that reference.
    let reference_hpwl = if config.temperature_weight.fraction() > 0.0 {
        let area_only = anneal(mk_state(0.0, f64::INFINITY), &config.schedule, config.seed);
        area_only.best.place().hpwl(nets).meters().max(1e-12)
    } else {
        initial_plan.hpwl(nets).meters().max(1e-12)
    };
    let initial = mk_state(
        config.temperature_weight.fraction(),
        reference_hpwl * config.wirelength_budget.fraction(),
    );
    let result = anneal(initial, &config.schedule, config.seed);
    let plan = result.best.place();
    let hotspot = hotspot_proxy(modules, &plan);
    let wirelength = plan.hpwl(nets);
    FloorplanResult {
        plan,
        hotspot,
        wirelength,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn um(v: f64) -> Length {
        Length::from_micrometers(v)
    }

    fn modules() -> Vec<Module> {
        vec![
            Module::soft("array", um(200.0), um(200.0), Power::from_watts(0.5)),
            Module::soft("ctrl", um(100.0), um(60.0), Power::from_watts(0.05)),
            Module::hard_macro("sram0", um(80.0), um(120.0), Power::from_watts(0.08)),
            Module::hard_macro("sram1", um(80.0), um(120.0), Power::from_watts(0.08)),
            Module::soft("dma", um(60.0), um(60.0), Power::from_watts(0.03)),
            Module::soft("fpu", um(90.0), um(70.0), Power::from_watts(0.2)),
        ]
    }

    fn nets() -> Vec<Net> {
        vec![
            Net { a: 0, b: 1 },
            Net { a: 0, b: 2 },
            Net { a: 0, b: 3 },
            Net { a: 1, b: 4 },
            Net { a: 0, b: 5 },
        ]
    }

    #[test]
    fn sequence_pair_placement_is_legal() {
        let ms = modules();
        let n = ms.len();
        let id: Vec<usize> = (0..n).collect();
        let plan = place_sequence_pair(&ms, &id, &id, &vec![false; n]);
        assert!(plan.is_legal());
        // Identity pair places everything in one row.
        let total_w: f64 = ms.iter().map(|m| m.width.meters()).sum();
        assert!((plan.bounding_box.width().meters() - total_w).abs() < 1e-12);
    }

    #[test]
    fn reversed_negative_sequence_stacks_vertically() {
        let ms = modules();
        let n = ms.len();
        let id: Vec<usize> = (0..n).collect();
        let rev: Vec<usize> = (0..n).rev().collect();
        let plan = place_sequence_pair(&ms, &id, &rev, &vec![false; n]);
        assert!(plan.is_legal());
        let total_h: f64 = ms.iter().map(|m| m.height.meters()).sum();
        assert!((plan.bounding_box.height().meters() - total_h).abs() < 1e-12);
    }

    #[test]
    fn annealing_packs_tighter_than_a_row() {
        let ms = modules();
        let n = ms.len();
        let id: Vec<usize> = (0..n).collect();
        let row = place_sequence_pair(&ms, &id, &id, &vec![false; n]);
        let cfg = FloorplanConfig {
            schedule: Schedule::quick(),
            ..FloorplanConfig::default()
        };
        let result = floorplan(&ms, &nets(), &cfg);
        assert!(result.plan.is_legal());
        assert!(
            result.plan.area().square_meters() < row.area().square_meters(),
            "SA should beat the single-row layout"
        );
        // Dead space under 2x of module area.
        let total: f64 = ms.iter().map(|m| m.area().square_meters()).sum();
        assert!(result.plan.area().square_meters() < 2.0 * total);
    }

    #[test]
    fn temperature_weighting_trades_area_for_cooler_plans() {
        // The Sec. IIIB observation: 100% temperature weighting costs
        // extra area but lowers the hotspot proxy.
        let ms = modules();
        let cool_cfg = FloorplanConfig {
            temperature_weight: Ratio::ONE,
            wirelength_budget: Ratio::from_percent(400.0),
            schedule: Schedule::quick(),
            seed: 3,
        };
        let tight_cfg = FloorplanConfig {
            temperature_weight: Ratio::ZERO,
            wirelength_budget: Ratio::from_percent(400.0),
            schedule: Schedule::quick(),
            seed: 3,
        };
        let cool = floorplan(&ms, &nets(), &cool_cfg);
        let tight = floorplan(&ms, &nets(), &tight_cfg);
        assert!(
            cool.hotspot.watts_per_square_meter() <= tight.hotspot.watts_per_square_meter() * 1.001,
            "temperature weighting should not raise the hotspot: {} vs {}",
            cool.hotspot.watts_per_square_cm(),
            tight.hotspot.watts_per_square_cm()
        );
        assert!(
            cool.plan.area().square_meters() >= tight.plan.area().square_meters() * 0.999,
            "cooler plans spend area"
        );
    }

    #[test]
    fn rotation_skips_macros() {
        let ms = modules();
        let cfg = FloorplanConfig {
            schedule: Schedule::quick(),
            ..FloorplanConfig::default()
        };
        let result = floorplan(&ms, &nets(), &cfg);
        // Hard macros keep their aspect (80 x 120).
        for (m, r) in ms.iter().zip(&result.plan.placements) {
            if m.is_macro {
                let kept = (r.width().meters() - m.width.meters()).abs() < 1e-12;
                assert!(kept, "macro {} must not rotate", m.name);
            }
        }
    }

    #[test]
    fn hotspot_proxy_prefers_spread_heat() {
        // Two hot modules adjacent vs far apart.
        let hot = |name: &str| Module::soft(name, um(50.0), um(50.0), Power::from_watts(0.5));
        let ms = vec![hot("a"), hot("b")];
        let adjacent = Floorplan {
            placements: vec![
                Rect::from_origin_size(um(0.0), um(0.0), um(50.0), um(50.0)),
                Rect::from_origin_size(um(50.0), um(0.0), um(50.0), um(50.0)),
            ],
            bounding_box: Rect::from_origin_size(um(0.0), um(0.0), um(100.0), um(100.0)),
        };
        let spread = Floorplan {
            placements: vec![
                Rect::from_origin_size(um(0.0), um(0.0), um(50.0), um(50.0)),
                Rect::from_origin_size(um(50.0), um(50.0), um(50.0), um(50.0)),
            ],
            bounding_box: Rect::from_origin_size(um(0.0), um(0.0), um(100.0), um(100.0)),
        };
        let pa = hotspot_proxy(&ms, &adjacent);
        let ps = hotspot_proxy(&ms, &spread);
        assert!(
            ps.watts_per_square_meter() <= pa.watts_per_square_meter() * (1.0 + 1e-9),
            "spreading heat must not raise the proxy: {pa} vs {ps}"
        );
    }

    #[test]
    fn hpwl_accounts_all_nets() {
        let ms = modules();
        let n = ms.len();
        let id: Vec<usize> = (0..n).collect();
        let plan = place_sequence_pair(&ms, &id, &id, &vec![false; n]);
        let one = plan.hpwl(&[Net { a: 0, b: 1 }]);
        let two = plan.hpwl(&[Net { a: 0, b: 1 }, Net { a: 0, b: 1 }]);
        assert!((two.meters() - 2.0 * one.meters()).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "at least one module")]
    fn empty_module_list_rejected() {
        let _ = floorplan(&[], &[], &FloorplanConfig::default());
    }

    #[test]
    fn owned_problem_matches_borrowed_cost_shape() {
        use tsc_rng::Rng64;
        let problem = FloorplanProblem::new(
            modules(),
            nets(),
            Ratio::from_percent(30.0),
            Ratio::from_percent(400.0),
        );
        let initial = problem.initial();
        let c0 = problem.cost(&initial);
        assert!(c0.is_finite() && c0 > 0.0);
        // Neighbour moves are deterministic per RNG stream and keep
        // placements legal; hard macros never rotate.
        let mut a = Rng64::seed_from_u64(5);
        let mut b = Rng64::seed_from_u64(5);
        let mut cand = initial.clone();
        for _ in 0..50 {
            let na = problem.neighbour(&cand, &mut a);
            let nb = problem.neighbour(&cand, &mut b);
            assert_eq!(na, nb);
            cand = na;
        }
        for (m, rot) in problem.modules().iter().zip(&cand.rotated) {
            if m.is_macro {
                assert!(!rot, "macro {} must not rotate", m.name);
            }
        }
        assert!(problem.place(&cand).is_legal());
    }
}
