//! Cross-solve reuse cache for repeated solves on one geometry.
//!
//! The placement and codesign flows re-solve the same mesh dozens of
//! times in a row (pillar-density bisection, placement verification,
//! dielectric sweeps), usually changing *only* the power map or only
//! the conductivity field between solves. A [`SolveContext`] keeps the
//! expensive per-geometry state alive across those solves:
//!
//! * the assembled operator (face-conductance arrays + diagonal),
//! * the multigrid hierarchy and its factored coarsest level,
//! * the previous temperature field, used to warm-start the next solve.
//!
//! # Invalidation rules
//!
//! Before each solve the context compares the incoming [`Problem`]
//! against a snapshot of the cached operator's inputs:
//!
//! | change between solves            | action                                  |
//! |----------------------------------|-----------------------------------------|
//! | power map only                   | full reuse: new RHS, warm-started field |
//! | conductivity / heatsink / mesh   | re-assemble operator + hierarchy; the   |
//! |                                  | warm field survives if the cell count   |
//! |                                  | is unchanged (a nearby design's field   |
//! |                                  | is still an excellent initial guess)    |
//! | cell count                       | cold start                              |
//! | solver configuration (tolerance, | warm field dropped: a field converged   |
//! | preconditioner, precision,       | under looser arithmetic (f32 inner) or  |
//! | smoother)                        | a looser tolerance must never seed a    |
//! |                                  | stricter solve                          |
//! | any failed solve                 | warm field dropped (never seed from a   |
//! |                                  | possibly-poisoned iterate)              |
//!
//! The snapshot covers everything [`crate::Problem`]'s conductance
//! assembly reads — mesh dimensions, cell pitches, layer thicknesses,
//! both heatsinks and both conductivity grids — so a cached operator can
//! never be silently stale.

use crate::kernels::{HierarchyF32, WorkspaceF32};
use crate::multigrid::{MgHierarchy, MgWorkspace, Smoother};
use crate::problem::Problem;
use crate::solver::{Assembled, CgSolver, Precision, Preconditioner, Solution, SolveError};
use tsc_geometry::Dim3;
use tsc_units::Length;

use crate::heatsink::Heatsink;

/// Snapshot of every [`Problem`] input the assembled operator depends
/// on; the cached operator is valid exactly while these match.
#[derive(Debug, Clone, PartialEq)]
struct OperatorKey {
    dim: Dim3,
    dx: Length,
    dy: Length,
    dz: Vec<Length>,
    bottom: Option<Heatsink>,
    top: Option<Heatsink>,
    /// Per-column ambient overrides (the cached `rhs_boundary` bakes
    /// them in, so a changed map must invalidate the operator).
    bottom_ambient: Option<Vec<f64>>,
    top_ambient: Option<Vec<f64>>,
    kz: Vec<f64>,
    kxy: Vec<f64>,
}

impl OperatorKey {
    fn snapshot(p: &Problem) -> Self {
        Self {
            dim: p.dim(),
            dx: p.dx(),
            dy: p.dy(),
            dz: p.dz().to_vec(),
            bottom: p.bottom_heatsink(),
            top: p.top_heatsink(),
            bottom_ambient: p.bottom_ambient_map().map(|m| m.as_slice().to_vec()),
            top_ambient: p.top_ambient_map().map(|m| m.as_slice().to_vec()),
            kz: p.kz_flat().to_vec(),
            kxy: p.kxy_flat().to_vec(),
        }
    }

    /// Allocation-free validity check against an incoming problem.
    fn matches(&self, p: &Problem) -> bool {
        self.dim == p.dim()
            && self.dx == p.dx()
            && self.dy == p.dy()
            && self.dz.as_slice() == p.dz()
            && self.bottom == p.bottom_heatsink()
            && self.top == p.top_heatsink()
            && self.bottom_ambient.as_deref() == p.bottom_ambient_map().map(|m| m.as_slice())
            && self.top_ambient.as_deref() == p.top_ambient_map().map(|m| m.as_slice())
            && self.kz.as_slice() == p.kz_flat()
            && self.kxy.as_slice() == p.kxy_flat()
    }
}

/// A 64-bit fingerprint of every [`Problem`] input the assembled
/// operator depends on — exactly the fields of the [`SolveContext`]
/// invalidation snapshot (mesh dimensions, cell pitches, layer
/// thicknesses, heatsinks, per-column ambient maps, both conductivity
/// grids). Two problems with equal fingerprints *usually* share
/// operator geometry, so the fingerprint is the natural **routing hint**
/// for pooling [`SolveContext`]s across repeated solves. It is a hash,
/// not an identity: a colliding pair of distinct operators would alias
/// under the bare `u64`, so any cache keyed on it must store the full
/// [`OperatorSignature`] beside each entry and compare it on every hit
/// (a mismatch is a miss). The context itself always re-validates
/// against the full snapshot before reusing anything.
///
/// The power map deliberately does **not** contribute: power-only
/// deltas are the cheap path the cache exists for.
#[must_use]
pub fn operator_fingerprint(p: &Problem) -> u64 {
    // FNV-1a over the raw bit patterns: deterministic across platforms
    // and runs (unlike `DefaultHasher`, which is randomly seeded).
    let mut h = Fnv::new();
    let dim = p.dim();
    h.write_usize(dim.nx);
    h.write_usize(dim.ny);
    h.write_usize(dim.nz);
    h.write_f64(p.dx().meters());
    h.write_f64(p.dy().meters());
    for dz in p.dz() {
        h.write_f64(dz.meters());
    }
    for hs in [p.bottom_heatsink(), p.top_heatsink()] {
        match hs {
            Some(hs) => {
                h.write_f64(hs.h.get());
                h.write_f64(hs.ambient.kelvin());
            }
            None => h.write_u64(0xA5A5_A5A5),
        }
    }
    for map in [p.bottom_ambient_map(), p.top_ambient_map()] {
        match map {
            Some(map) => {
                for &t in map.as_slice() {
                    h.write_f64(t);
                }
            }
            None => h.write_u64(0x5A5A_5A5A),
        }
    }
    for &k in p.kz_flat() {
        h.write_f64(k);
    }
    for &k in p.kxy_flat() {
        h.write_f64(k);
    }
    h.finish()
}

/// The full operator-identity snapshot behind [`operator_fingerprint`],
/// as an opaque comparable value. Caches that route on the 64-bit
/// fingerprint store one of these beside each entry and equality-check
/// it on every hit, so a fingerprint collision degrades to a cache miss
/// instead of silently reusing another stack's operator.
#[derive(Debug, Clone, PartialEq)]
pub struct OperatorSignature(OperatorKey);

impl OperatorSignature {
    /// Snapshots the operator identity of `p`.
    #[must_use]
    pub fn of(p: &Problem) -> Self {
        Self(OperatorKey::snapshot(p))
    }

    /// Allocation-free check that `p` still has this operator identity.
    #[must_use]
    pub fn matches(&self, p: &Problem) -> bool {
        self.0.matches(p)
    }
}

/// FNV-1a, 64-bit.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Self(0xCBF2_9CE4_8422_2325)
    }
    fn write_u64(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
    fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

/// Work counters accumulated across every solve through one context —
/// the observability record behind the cache-effectiveness tests and
/// the `BENCH_SOLVER.json` entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ContextStats {
    /// Solves requested through the context.
    pub solves: usize,
    /// Operator (re-)assemblies actually performed.
    pub assemblies: usize,
    /// Multigrid hierarchy constructions actually performed.
    pub hierarchy_builds: usize,
    /// Solves that reused the cached operator as-is.
    pub operator_reuses: usize,
    /// Solves warm-started from a previous temperature field.
    pub warm_starts: usize,
    /// Total solver iterations across all solves.
    pub total_iterations: usize,
    /// Total fine-grid matrix-vector products across all solves.
    pub total_matvecs: usize,
    /// Total multigrid V-cycles across all solves.
    pub total_cycles: usize,
}

/// Reuse cache for repeated [`CgSolver`] solves over one geometry (see
/// the module docs for the invalidation rules).
///
/// ```
/// use tsc_thermal::{CgSolver, Heatsink, Preconditioner, Problem, SolveContext};
/// use tsc_units::{Length, Power, ThermalConductivity};
///
/// let mut p = Problem::uniform_block(
///     8, 8, 6,
///     Length::from_millimeters(1.0), Length::from_millimeters(1.0),
///     Length::from_micrometers(60.0),
///     ThermalConductivity::new(120.0),
/// );
/// p.set_bottom_heatsink(Heatsink::two_phase());
/// p.add_power(4, 4, 5, Power::from_watts(1.0));
///
/// let solver = CgSolver::new().with_preconditioner(Preconditioner::Multigrid);
/// let mut ctx = SolveContext::new();
/// let first = ctx.solve(&p, &solver)?;
/// p.add_power(2, 2, 5, Power::from_watts(0.5)); // power-only delta
/// let second = ctx.solve(&p, &solver)?;
/// assert!(second.temperatures.max_temperature() > first.temperatures.max_temperature());
/// assert_eq!(ctx.stats().assemblies, 1); // operator reused
/// # Ok::<(), tsc_thermal::SolveError>(())
/// ```
#[derive(Debug, Default)]
pub struct SolveContext {
    key: Option<OperatorKey>,
    asm: Option<Assembled>,
    hierarchy: Option<MgHierarchy>,
    workspace: Option<MgWorkspace>,
    /// f32 shadow hierarchy + scratch for mixed-precision solves (built
    /// lazily, invalidated with the f64 hierarchy).
    h32: Option<HierarchyF32>,
    ws32: Option<WorkspaceF32>,
    warm: Option<(WarmKey, Vec<f64>)>,
    warm_start: bool,
    stats: ContextStats,
}

/// Validity key of the cached warm-start field: the solver
/// configuration the field was converged under. A field from a looser
/// tolerance, a different preconditioner/smoother, or the f32-inner
/// mixed path must never silently seed a solve with stricter (or merely
/// different) convergence semantics — reusing it across configurations
/// would make the second solve's iteration count, trajectory, and
/// (for golden flows) bit pattern depend on unrelated earlier solves.
#[derive(Debug, Clone, Copy, PartialEq)]
struct WarmKey {
    tol: f64,
    precon: Preconditioner,
    precision: Precision,
    smoother: Smoother,
}

impl WarmKey {
    fn of(solver: &CgSolver) -> Self {
        Self {
            tol: solver.tolerance(),
            precon: solver.preconditioner(),
            precision: solver.precision(),
            smoother: solver.smoother(),
        }
    }
}

impl SolveContext {
    /// An empty context with warm-starting enabled.
    #[must_use]
    pub fn new() -> Self {
        Self {
            warm_start: true,
            ..Self::default()
        }
    }

    /// Builder: enables/disables warm-starting from the previous solve's
    /// temperature field (enabled by default; disabling is mainly for
    /// A/B measurements of the warm-start benefit).
    #[must_use]
    pub fn with_warm_start(mut self, enabled: bool) -> Self {
        self.warm_start = enabled;
        if !enabled {
            self.warm = None;
        }
        self
    }

    /// Accumulated work counters.
    #[must_use]
    pub fn stats(&self) -> ContextStats {
        self.stats
    }

    /// Drops every cached artifact (operator, hierarchy, warm field).
    /// The next solve pays full assembly cost; counters are kept.
    pub fn invalidate(&mut self) {
        self.key = None;
        self.asm = None;
        self.hierarchy = None;
        self.workspace = None;
        self.h32 = None;
        self.ws32 = None;
        self.warm = None;
    }

    /// Solves `p` with `solver`'s tolerances and preconditioner, reusing
    /// whatever cached state is still valid (see the module docs).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`CgSolver::solve`]. A failed solve drops
    /// the warm-start field but keeps the cached operator (it is not
    /// implicated by an RHS-driven divergence).
    pub fn solve(&mut self, p: &Problem, solver: &CgSolver) -> Result<Solution, SolveError> {
        self.stats.solves += 1;
        let reuse = match (&self.key, &self.asm) {
            (Some(key), Some(_)) => key.matches(p),
            _ => false,
        };
        if reuse {
            self.stats.operator_reuses += 1;
        } else {
            let asm = Assembled::build(p)?;
            self.key = Some(OperatorKey::snapshot(p));
            self.asm = Some(asm);
            self.hierarchy = None;
            self.workspace = None;
            self.h32 = None;
            self.ws32 = None;
            self.stats.assemblies += 1;
        }

        let params = solver.params();
        let warm_key = WarmKey::of(solver);
        let needs_mg = solver.precision() == Precision::Mixed
            || solver.preconditioner() == Preconditioner::Multigrid;
        // A hierarchy built for a different smoother (no Chebyshev
        // bounds, or the wrong ones) cannot be reused.
        if needs_mg
            && self
                .hierarchy
                .as_ref()
                .is_some_and(|mg| mg.smoother() != solver.smoother())
        {
            self.hierarchy = None;
            self.workspace = None;
            self.h32 = None;
            self.ws32 = None;
        }
        let Self {
            asm,
            hierarchy,
            workspace,
            h32,
            ws32,
            warm,
            warm_start,
            stats,
            ..
        } = self;
        // tsc-analyze: allow(no-unwrap): the caller populated the cache
        // in the branch directly above; None is unreachable here.
        let asm = asm.as_ref().expect("operator cached above");
        let rhs = asm.rhs_with_power(p.power_flat());
        let n = asm.dim.len();
        let mut x = match warm {
            Some((key, w)) if *warm_start && *key == warm_key && w.len() == n => {
                stats.warm_starts += 1;
                w.clone()
            }
            _ => vec![asm.initial_guess; n],
        };

        if needs_mg && hierarchy.is_none() {
            let mg = MgHierarchy::build(asm, &solver.mg_params())?;
            *workspace = Some(mg.workspace());
            *hierarchy = Some(mg);
            stats.hierarchy_builds += 1;
        }
        let result = if solver.precision() == Precision::Mixed {
            // tsc-analyze: allow(no-unwrap): populated in the branch above
            let mg = hierarchy.as_ref().expect("hierarchy cached above");
            // tsc-analyze: allow(no-unwrap): populated in the branch above
            let ws = workspace.as_mut().expect("workspace cached above");
            if h32.is_none() {
                let shadow = HierarchyF32::build(asm, mg);
                *ws32 = Some(shadow.workspace());
                *h32 = Some(shadow);
            }
            // tsc-analyze: allow(no-unwrap): populated in the branch above
            let shadow = h32.as_ref().expect("f32 hierarchy cached above");
            // tsc-analyze: allow(no-unwrap): populated in the branch above
            let scratch = ws32.as_mut().expect("f32 workspace cached above");
            asm.cg_core_mixed(&rhs, &mut x, &params, mg, ws, shadow, scratch)
        } else if solver.preconditioner() == Preconditioner::Multigrid {
            // tsc-analyze: allow(no-unwrap): populated in the branch above
            let mg = hierarchy.as_ref().expect("hierarchy cached above");
            // tsc-analyze: allow(no-unwrap): populated in the branch above
            let ws = workspace.as_mut().expect("workspace cached above");
            asm.cg_core_mg(&rhs, &mut x, &params, mg, ws)
        } else {
            asm.cg_core(None, &rhs, &mut x, &params)
        };

        match result {
            Ok(solver_stats) => {
                stats.total_iterations += solver_stats.iterations;
                stats.total_matvecs += solver_stats.matvecs;
                stats.total_cycles += solver_stats.cycles;
                if *warm_start {
                    *warm = Some((warm_key, x.clone()));
                }
                Ok(asm.solution(&x, solver_stats, p.total_power().watts()))
            }
            Err(e) => {
                // Never seed a later solve from a possibly-poisoned field.
                *warm = None;
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heatsink::Heatsink;
    use tsc_units::{Power, ThermalConductivity};

    fn problem() -> Problem {
        let mut p = Problem::uniform_block(
            8,
            8,
            8,
            Length::from_millimeters(1.0),
            Length::from_millimeters(1.0),
            Length::from_micrometers(80.0),
            ThermalConductivity::new(60.0),
        );
        p.set_bottom_heatsink(Heatsink::two_phase());
        p.add_power(4, 4, 7, Power::from_watts(1.0));
        p
    }

    fn mg_solver() -> CgSolver {
        CgSolver::new()
            .with_tolerance(1e-9)
            .with_preconditioner(Preconditioner::Multigrid)
    }

    #[test]
    fn power_only_delta_reuses_operator_and_hierarchy() {
        let mut p = problem();
        let mut ctx = SolveContext::new();
        let solver = mg_solver();
        ctx.solve(&p, &solver).expect("first");
        p.add_power(2, 2, 7, Power::from_watts(0.5));
        ctx.solve(&p, &solver).expect("second");
        let s = ctx.stats();
        assert_eq!(s.solves, 2);
        assert_eq!(s.assemblies, 1);
        assert_eq!(s.hierarchy_builds, 1);
        assert_eq!(s.operator_reuses, 1);
        assert_eq!(s.warm_starts, 1);
    }

    #[test]
    fn conductivity_delta_reassembles() {
        let mut p = problem();
        let mut ctx = SolveContext::new();
        let solver = mg_solver();
        ctx.solve(&p, &solver).expect("first");
        p.set_layer_conductivity(
            3,
            ThermalConductivity::new(5.0),
            ThermalConductivity::new(5.0),
        );
        ctx.solve(&p, &solver).expect("second");
        let s = ctx.stats();
        assert_eq!(s.assemblies, 2);
        assert_eq!(s.hierarchy_builds, 2);
        assert_eq!(s.operator_reuses, 0);
        // Same cell count: the previous field still warm-starts.
        assert_eq!(s.warm_starts, 1);
    }

    #[test]
    fn context_matches_direct_solve() {
        let p = problem();
        let mut ctx = SolveContext::new();
        let via_ctx = ctx.solve(&p, &mg_solver()).expect("ctx");
        let direct = mg_solver().solve(&p).expect("direct");
        let max_diff = via_ctx
            .temperatures
            .iter_kelvin()
            .zip(direct.temperatures.iter_kelvin())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0_f64, f64::max);
        assert_eq!(max_diff, 0.0, "first context solve must be identical");
    }

    #[test]
    fn warm_start_cuts_iterations_on_repeat_solves() {
        let p = problem();
        let solver = mg_solver();
        let mut warm = SolveContext::new();
        let mut cold = SolveContext::new().with_warm_start(false);
        for ctx in [&mut warm, &mut cold] {
            for _ in 0..3 {
                ctx.solve(&p, &solver).expect("converges");
            }
        }
        assert_eq!(cold.stats().warm_starts, 0);
        assert_eq!(warm.stats().warm_starts, 2);
        assert!(
            warm.stats().total_iterations < cold.stats().total_iterations,
            "warm {} vs cold {}",
            warm.stats().total_iterations,
            cold.stats().total_iterations
        );
    }

    #[test]
    fn failed_solve_drops_warm_field_but_recovers() {
        let mut p = problem();
        let mut ctx = SolveContext::new();
        let solver = mg_solver();
        ctx.solve(&p, &solver).expect("clean solve");
        p.add_power(1, 1, 1, Power::from_watts(f64::NAN));
        assert!(ctx.solve(&p, &solver).is_err());
        // Rebuild a clean problem: the poisoned warm field must be gone
        // and the context must still produce a correct solution.
        let clean = problem();
        let sol = ctx.solve(&clean, &solver).expect("recovered");
        assert!(sol.stats.residual.is_finite());
        assert!(sol.temperatures.iter_kelvin().all(f64::is_finite));
    }

    #[test]
    fn fingerprint_tracks_exactly_the_operator_key() {
        let p = problem();
        let base = operator_fingerprint(&p);
        assert_eq!(base, operator_fingerprint(&p), "deterministic");

        // Power-only deltas keep the fingerprint (the reuse fast path).
        let mut powered = problem();
        powered.add_power(1, 1, 7, Power::from_watts(3.0));
        assert_eq!(base, operator_fingerprint(&powered));

        // Conductivity, heatsink, and mesh changes all move it.
        let mut k = problem();
        k.set_layer_conductivity(
            2,
            ThermalConductivity::new(5.0),
            ThermalConductivity::new(5.0),
        );
        assert_ne!(base, operator_fingerprint(&k));
        let mut hs = problem();
        hs.set_top_heatsink(Heatsink::forced_air());
        assert_ne!(base, operator_fingerprint(&hs));
        let other = Problem::uniform_block(
            8,
            8,
            9,
            Length::from_millimeters(1.0),
            Length::from_millimeters(1.0),
            Length::from_micrometers(80.0),
            ThermalConductivity::new(60.0),
        );
        assert_ne!(base, operator_fingerprint(&other));
    }

    #[test]
    fn solver_config_switch_invalidates_warm_field() {
        // Regression (stale warm-start field): the warm field used to
        // survive *any* solve with a matching cell count, so an
        // f32-converged mixed solve could seed a subsequent strict-f64
        // solve. The warm key now pins tolerance, preconditioner,
        // precision and smoother.
        let p = problem();
        let mut ctx = SolveContext::new();
        let f64_solver = mg_solver();
        let mixed_solver = mg_solver().with_precision(Precision::Mixed);

        ctx.solve(&p, &mixed_solver).expect("mixed cold");
        ctx.solve(&p, &f64_solver).expect("f64 after mixed");
        assert_eq!(
            ctx.stats().warm_starts,
            0,
            "precision switch must not warm-start"
        );
        ctx.solve(&p, &f64_solver).expect("f64 repeat");
        assert_eq!(ctx.stats().warm_starts, 1, "same config warm-starts");

        let loose = mg_solver().with_tolerance(1e-6);
        ctx.solve(&p, &loose).expect("loose");
        assert_eq!(
            ctx.stats().warm_starts,
            1,
            "tolerance switch must not warm-start"
        );
        ctx.solve(&p, &CgSolver::new().with_tolerance(1e-9))
            .expect("jacobi");
        assert_eq!(
            ctx.stats().warm_starts,
            1,
            "preconditioner switch must not warm-start"
        );
    }

    #[test]
    fn mixed_solves_reuse_cached_f32_hierarchy() {
        let mut p = problem();
        let mut ctx = SolveContext::new();
        let solver = mg_solver().with_precision(Precision::Mixed);
        let first = ctx.solve(&p, &solver).expect("first mixed");
        assert_eq!(first.stats.precision, Precision::Mixed);
        p.add_power(2, 2, 7, Power::from_watts(0.5));
        let second = ctx.solve(&p, &solver).expect("second mixed");
        assert_eq!(second.stats.precision, Precision::Mixed);
        let s = ctx.stats();
        assert_eq!(s.assemblies, 1, "operator reused across power delta");
        assert_eq!(s.hierarchy_builds, 1, "hierarchy reused");
        assert_eq!(s.warm_starts, 1, "same mixed config warm-starts");
        // The context path must agree with the direct solver.
        let direct = solver.solve(&p).expect("direct mixed");
        let max_diff = second
            .temperatures
            .iter_kelvin()
            .zip(direct.temperatures.iter_kelvin())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0_f64, f64::max)
            / direct.temperatures.max_temperature().kelvin();
        assert!(max_diff < 1e-9, "relative deviation {max_diff}");
    }

    #[test]
    fn smoother_switch_rebuilds_hierarchy() {
        let p = problem();
        let mut ctx = SolveContext::new();
        ctx.solve(&p, &mg_solver()).expect("red-black");
        ctx.solve(&p, &mg_solver().with_smoother(Smoother::Chebyshev))
            .expect("chebyshev");
        let s = ctx.stats();
        assert_eq!(s.assemblies, 1, "operator itself is smoother-agnostic");
        assert_eq!(
            s.hierarchy_builds, 2,
            "chebyshev needs its own hierarchy (eigenvalue bounds)"
        );
    }

    #[test]
    fn jacobi_solves_work_through_the_context_too() {
        let p = problem();
        let mut ctx = SolveContext::new();
        let solver = CgSolver::new().with_tolerance(1e-9);
        ctx.solve(&p, &solver).expect("first");
        ctx.solve(&p, &solver).expect("second");
        let s = ctx.stats();
        assert_eq!(s.assemblies, 1);
        assert_eq!(s.hierarchy_builds, 0, "no hierarchy for Jacobi");
        assert!(s.total_cycles == 0);
    }
}
