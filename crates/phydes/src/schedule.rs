//! Thermal-aware task scheduling (Sec. IIIB).
//!
//! An `N`-tier design carries `N` copies of the same core. The paper
//! ranks copies by *effective thermal resistance* — simulate each copy
//! alone (all others gated) and compare peak temperatures — then assigns
//! the highest-power tasks to the copies with the lowest resistance
//! (those closest to the heatsink). This mimics thermal-aware task
//! assignment of known workloads; the paper notes dynamic swapping \[4\]
//! achieves similar results.

use tsc_units::{Power, TempDelta};

/// One tier copy's measured standing: its index and the peak temperature
/// rise when running alone.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TierRanking {
    /// Tier index (0 = closest to the heatsink).
    pub tier: usize,
    /// Peak rise above ambient with all other tiers power-gated.
    pub solo_rise: TempDelta,
}

/// A schedulable task with its power draw.
#[derive(Debug, Clone, PartialEq)]
pub struct Task {
    /// Task name.
    pub name: String,
    /// Power the task dissipates on whichever tier runs it.
    pub power: Power,
}

impl Task {
    /// Creates a task.
    #[must_use]
    pub fn new(name: impl Into<String>, power: Power) -> Self {
        Self {
            name: name.into(),
            power,
        }
    }
}

/// Ranks tiers by effective thermal resistance (coolest-running first).
///
/// Ties preserve tier order (lower tiers first), matching the physical
/// intuition that lower tiers sit closer to the sink.
#[must_use]
pub fn rank_tiers(mut rankings: Vec<TierRanking>) -> Vec<TierRanking> {
    rankings.sort_by(|a, b| {
        a.solo_rise
            .kelvin()
            .total_cmp(&b.solo_rise.kelvin())
            .then(a.tier.cmp(&b.tier))
    });
    rankings
}

/// Assigns tasks to tiers: highest-power task onto the
/// lowest-resistance tier, and so on. Returns `(tier, task index)`
/// pairs, one per task (tasks beyond the tier count are unassigned and
/// omitted).
///
/// ```
/// use tsc_phydes::schedule::{assign, Task, TierRanking};
/// use tsc_units::{Power, TempDelta};
///
/// let rankings = vec![
///     TierRanking { tier: 0, solo_rise: TempDelta::new(2.0) },
///     TierRanking { tier: 1, solo_rise: TempDelta::new(5.0) },
/// ];
/// let tasks = vec![
///     Task::new("light", Power::from_watts(1.0)),
///     Task::new("heavy", Power::from_watts(10.0)),
/// ];
/// let plan = assign(rankings, &tasks);
/// // The heavy task (index 1) lands on the low-resistance tier 0.
/// assert_eq!(plan[0], (0, 1));
/// assert_eq!(plan[1], (1, 0));
/// ```
#[must_use]
pub fn assign(rankings: Vec<TierRanking>, tasks: &[Task]) -> Vec<(usize, usize)> {
    let ranked = rank_tiers(rankings);
    let mut task_order: Vec<usize> = (0..tasks.len()).collect();
    task_order.sort_by(|&a, &b| {
        tasks[b]
            .power
            .watts()
            .total_cmp(&tasks[a].power.watts())
            .then(a.cmp(&b))
    });
    ranked
        .into_iter()
        .zip(task_order)
        .map(|(r, t)| (r.tier, t))
        .collect()
}

/// The total "thermal work" of an assignment: Σ power × solo-rise of the
/// hosting tier. Lower is better; the greedy assignment minimizes this
/// by the rearrangement inequality.
#[must_use]
pub fn thermal_work(
    rankings: &[TierRanking],
    tasks: &[Task],
    assignment: &[(usize, usize)],
) -> f64 {
    assignment
        .iter()
        .map(|&(tier, task)| {
            // Assignments are built from these same rankings, so every
            // assigned tier is present.
            let rise = rankings
                .iter()
                .find(|r| r.tier == tier)
                .expect("tier exists") // tsc-analyze: allow(no-unwrap): tier present by construction
                .solo_rise
                .kelvin();
            tasks[task].power.watts() * rise
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rankings() -> Vec<TierRanking> {
        vec![
            TierRanking {
                tier: 0,
                solo_rise: TempDelta::new(1.0),
            },
            TierRanking {
                tier: 1,
                solo_rise: TempDelta::new(3.0),
            },
            TierRanking {
                tier: 2,
                solo_rise: TempDelta::new(6.0),
            },
        ]
    }

    fn tasks() -> Vec<Task> {
        vec![
            Task::new("medium", Power::from_watts(5.0)),
            Task::new("heavy", Power::from_watts(9.0)),
            Task::new("light", Power::from_watts(1.0)),
        ]
    }

    #[test]
    fn ranking_sorts_by_rise() {
        let shuffled = vec![rankings()[2], rankings()[0], rankings()[1]];
        let ranked = rank_tiers(shuffled);
        assert_eq!(
            ranked.iter().map(|r| r.tier).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn heavy_tasks_get_cool_tiers() {
        let plan = assign(rankings(), &tasks());
        // Tier 0 (coolest) hosts task 1 (heavy 9 W).
        assert_eq!(plan[0], (0, 1));
        // Tier 2 (hottest) hosts task 2 (light 1 W).
        assert_eq!(plan[2], (2, 2));
    }

    #[test]
    fn greedy_beats_reversed_assignment() {
        let r = rankings();
        let t = tasks();
        let greedy = assign(r.clone(), &t);
        let reversed: Vec<(usize, usize)> = vec![(0, 2), (1, 0), (2, 1)];
        assert!(thermal_work(&r, &t, &greedy) < thermal_work(&r, &t, &reversed));
    }

    #[test]
    fn greedy_is_optimal_over_all_permutations() {
        // Rearrangement inequality, verified exhaustively for 3 tasks.
        let r = rankings();
        let t = tasks();
        let greedy_work = thermal_work(&r, &t, &assign(r.clone(), &t));
        let perms = [
            [0, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ];
        for p in perms {
            let a: Vec<(usize, usize)> =
                p.iter().enumerate().map(|(tier, &tk)| (tier, tk)).collect();
            assert!(greedy_work <= thermal_work(&r, &t, &a) + 1e-12);
        }
    }

    #[test]
    fn more_tasks_than_tiers_drops_the_coolest_tasks() {
        let mut t = tasks();
        t.push(Task::new("extra", Power::from_watts(0.5)));
        let plan = assign(rankings(), &t);
        assert_eq!(plan.len(), 3);
        // The 0.5 W task is unassigned.
        assert!(plan.iter().all(|&(_, task)| task != 3));
    }

    #[test]
    fn tie_breaking_is_deterministic() {
        let r = vec![
            TierRanking {
                tier: 1,
                solo_rise: TempDelta::new(2.0),
            },
            TierRanking {
                tier: 0,
                solo_rise: TempDelta::new(2.0),
            },
        ];
        let ranked = rank_tiers(r);
        assert_eq!(ranked[0].tier, 0, "ties resolve to the lower tier");
    }
}
