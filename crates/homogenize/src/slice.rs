//! Synthetic BEOL slice generators — the stand-in for "select a slice of
//! the physical design within 1 % of average metal density" (Fig. 7a).
//!
//! Real routed designs are unavailable here, so the slices are generated
//! from the same statistics the paper reports: per-layer metal density
//! (Fig. 7b: 0.44–0.54), segmented signal wires in the lower levels,
//! continuous power stripes with max-density via clusters in the upper
//! levels (Fig. 7c, PDN densities per Samal et al. \[8\]).
//!
//! The generators are deterministic (wire/via positions follow modular
//! patterns), so extracted conductivities are reproducible.

use crate::voxel::VoxelModel;
use tsc_materials::Anisotropic;
use tsc_units::{Length, ThermalConductivity};

/// Calibration knobs of a synthetic slice.
#[derive(Debug, Clone, PartialEq)]
pub struct SliceGeometry {
    /// Metal density per metal layer (Fig. 7b range: 0.44–0.54).
    pub wire_density: f64,
    /// Signal-wire segment length (lower levels only).
    pub segment_len: Length,
    /// Gap between consecutive wire segments (lower levels only).
    pub gap_len: Length,
    /// Via fill fraction inside stripe crossings (upper levels) or the
    /// areal density of aligned via stacks (lower levels).
    pub via_fill: f64,
    /// Voxel edge length.
    pub resolution: Length,
    /// Lateral slice extent (square).
    pub extent: Length,
}

impl SliceGeometry {
    /// Default geometry for the lumped lower BEOL (V0–V7, 1 µm total):
    /// 45 % metal, 1 µm segments with 100 nm gaps, 0.4 % aligned via
    /// stacks.
    #[must_use]
    pub fn default_lower() -> Self {
        Self {
            wire_density: 0.45,
            segment_len: Length::from_micrometers(1.5),
            gap_len: Length::from_nanometers(100.0),
            via_fill: 0.0004,
            resolution: Length::from_nanometers(50.0),
            extent: Length::from_micrometers(2.0),
        }
    }

    /// Default geometry for the upper layers (M8/V8/M9, 240 nm total):
    /// power stripes at 1/6 density (PDN densities per \[8\]) with
    /// max-density (full) via clusters at every stripe crossing. With
    /// upper-level copper at 242 W/m/K this lands at the paper's
    /// Fig. 7c anchors: ≈13.6 W/m/K lateral, ≈6.9 W/m/K vertical for
    /// ultra-low-k fill.
    #[must_use]
    pub fn default_upper() -> Self {
        Self {
            wire_density: 1.0 / 6.0,
            segment_len: Length::from_micrometers(10.0), // stripes: continuous
            gap_len: Length::ZERO,
            via_fill: 0.5,
            resolution: Length::from_nanometers(40.0),
            extent: Length::from_micrometers(2.0),
        }
    }

    /// A coarsened copy for fast tests (bigger voxels, smaller extent).
    #[must_use]
    pub fn coarse(mut self) -> Self {
        self.resolution = self.resolution * 2.0;
        self.extent = self.extent * 0.5;
        self
    }

    fn lateral_voxels(&self) -> usize {
        (self.extent.meters() / self.resolution.meters())
            .round()
            .max(4.0) as usize
    }

    fn voxels_for(&self, t: Length) -> usize {
        (t.meters() / self.resolution.meters()).round().max(1.0) as usize
    }
}

/// Thermal conductivity of lower-level (V0–V7) copper.
fn lower_cu() -> ThermalConductivity {
    tsc_materials::copper::LOWER_LEVEL
}

/// Thermal conductivity of upper-level (M8–M9) copper.
fn upper_cu() -> ThermalConductivity {
    tsc_materials::copper::UPPER_LEVEL
}

/// Paints parallel wires along `x` (or `y` when `along_y`) into z-layer
/// range `z0..z1`, at `density`, segmented with the given segment/gap
/// pattern. `phase` staggers tracks between layers.
#[allow(clippy::too_many_arguments)]
fn paint_wires(
    m: &mut VoxelModel,
    geo: &SliceGeometry,
    z0: usize,
    z1: usize,
    along_y: bool,
    density: f64,
    k: ThermalConductivity,
    phase: usize,
) {
    let n = m.dim().nx; // square slices: nx == ny
                        // Track pattern: alternating metal/space rows at the routing pitch —
                        // adjacent tracks never touch, as in a real routed layer. Density
                        // below 0.5 widens the space rows.
    let period = ((1.0 / density).round() as usize).max(2);
    let fill = 1usize;
    let seg_v = geo.voxels_for(geo.segment_len).max(1);
    let gap_v = if geo.gap_len.meters() <= 0.0 {
        0
    } else {
        geo.voxels_for(geo.gap_len)
    };
    let pitch = seg_v + gap_v;

    for row in 0..n {
        if (row + phase) % period >= fill {
            continue;
        }
        if gap_v == 0 {
            let (x, y) = if along_y {
                (row..row + 1, 0..n)
            } else {
                (0..n, row..row + 1)
            };
            m.paint_box(x, y, z0..z1, k);
            continue;
        }
        // Absolute segment pattern: voxel `pos` is metal iff
        // ((pos + stagger) mod pitch) < seg_v. The stagger de-correlates
        // gap positions between tracks the way routed segments do.
        let stagger = (row * 7) % pitch;
        for pos in 0..n {
            if (pos + stagger) % pitch < seg_v {
                let (x, y) = if along_y {
                    (row..row + 1, pos..pos + 1)
                } else {
                    (pos..pos + 1, row..row + 1)
                };
                m.paint_box(x, y, z0..z1, k);
            }
        }
    }
}

/// Builds the lumped lower-BEOL slice (V0–V7): eight alternating
/// metal/via sublayers over 1 µm, filled with `dielectric`.
///
/// Metal layers carry segmented signal wires (x on layers 0/4, y on
/// layers 2/6). Via layers carry a sparse grid of *aligned* via stacks —
/// the only continuous vertical paths, at `geo.via_fill` areal density —
/// plus offset signal vias that do not stack.
#[must_use]
pub fn lower_beol(dielectric: Anisotropic, geo: &SliceGeometry) -> VoxelModel {
    let n = geo.lateral_voxels();
    let total = Length::from_micrometers(1.0);
    let nz = geo.voxels_for(total).max(8);
    let nz = nz - nz % 8; // 8 equal sublayers
    let nz = nz.max(8);
    let mut m = VoxelModel::new(
        n,
        n,
        nz,
        geo.extent,
        geo.extent,
        total,
        ThermalConductivity::new(1.0),
    );
    // Background dielectric (anisotropic).
    m.paint_box_anisotropic(0..n, 0..n, 0..nz, dielectric.vertical, dielectric.lateral);

    let sub = nz / 8;
    let cu = lower_cu();
    for (layer, along_y) in [(0usize, false), (2, true), (4, false), (6, true)] {
        paint_wires(
            &mut m,
            geo,
            layer * sub,
            (layer + 1) * sub,
            along_y,
            geo.wire_density,
            cu,
            layer,
        );
    }
    // Aligned via stacks: continuous columns on a coarse grid at areal
    // density via_fill. Grid pitch p satisfies (1/p²) = via_fill (one
    // voxel column per p × p block).
    if geo.via_fill > 0.0 {
        let pitch = (1.0 / geo.via_fill.sqrt()).round().max(1.0) as usize;
        let mut i = pitch / 2;
        while i < n {
            let mut j = pitch / 2;
            while j < n {
                m.paint_box(i..i + 1, j..j + 1, 0..nz, cu);
                j += pitch;
            }
            i += pitch;
        }
    }
    // Offset (non-stacking) signal vias in each via sublayer: short stubs
    // that improve local vertical conduction without continuity.
    for layer in [1usize, 3, 5, 7] {
        let z0 = layer * sub;
        let z1 = (layer + 1) * sub;
        let pitch = 20 + 2 * layer; // different pitch per layer: no stacking
        let mut i = layer;
        while i < n {
            let mut j = (layer * 3) % pitch;
            while j < n {
                m.paint_box(i..i + 1, j..j + 1, z0..z1, cu);
                j += pitch;
            }
            i += pitch;
        }
    }
    m
}

/// Builds the upper-layer slice (M8/V8/M9, 240 nm = three 80 nm
/// sublayers): continuous power stripes along x (M8) and y (M9) at
/// `geo.wire_density`, with max-density via clusters filling
/// `geo.via_fill` of each stripe crossing (Fig. 7c).
#[must_use]
pub fn upper_beol(dielectric: Anisotropic, geo: &SliceGeometry) -> VoxelModel {
    let n = geo.lateral_voxels();
    let total = Length::from_nanometers(240.0);
    let nz = (geo.voxels_for(total) / 3).max(1) * 3;
    let mut m = VoxelModel::new(
        n,
        n,
        nz,
        geo.extent,
        geo.extent,
        total,
        ThermalConductivity::new(1.0),
    );
    m.paint_box_anisotropic(0..n, 0..n, 0..nz, dielectric.vertical, dielectric.lateral);

    let sub = nz / 3;
    let cu = upper_cu();
    // Stripe pattern: one single-voxel-wide stripe per period, with the
    // period set by the density (1/6 density -> every 6th track).
    let period = ((1.0 / geo.wire_density).round() as usize).clamp(2, n);
    // M8: stripes along x on rows ≡ 0 (mod period).
    for row in (0..n).step_by(period) {
        m.paint_box(0..n, row..row + 1, 0..sub, cu);
    }
    // M9: stripes along y on columns ≡ 0 (mod period).
    for col in (0..n).step_by(period) {
        m.paint_box(col..col + 1, 0..n, 2 * sub..nz, cu);
    }
    // V8: max-density via clusters at each stripe crossing. A cluster is
    // not solid copper — `via_fill` of the crossing voxel is metal, the
    // rest dielectric — so the cluster voxel gets the parallel-rule blend.
    if geo.via_fill > 0.0 {
        let k_cluster = ThermalConductivity::new(
            geo.via_fill * cu.get() + (1.0 - geo.via_fill) * dielectric.vertical.get(),
        );
        for row in (0..n).step_by(period) {
            for col in (0..n).step_by(period) {
                m.paint_box(col..col + 1, row..row + 1, sub..2 * sub, k_cluster);
            }
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{extract_k, Axis};
    use tsc_materials::{THERMAL_DIELECTRIC_CONSERVATIVE, ULTRA_LOW_K_ILD};

    fn coarse_lower() -> SliceGeometry {
        SliceGeometry {
            resolution: Length::from_nanometers(125.0),
            extent: Length::from_micrometers(1.5),
            ..SliceGeometry::default_lower()
        }
    }

    fn coarse_upper() -> SliceGeometry {
        SliceGeometry {
            resolution: Length::from_nanometers(80.0),
            extent: Length::from_micrometers(1.28),
            ..SliceGeometry::default_upper()
        }
    }

    #[test]
    fn lower_slice_metal_density_is_plausible() {
        let m = lower_beol(ULTRA_LOW_K_ILD.conductivity, &coarse_lower());
        let frac = m.fraction_not(ThermalConductivity::new(0.2));
        // 4 of 8 sublayers carry ~45% wires minus gaps, plus sparse vias:
        // overall metal fraction should land near 20%.
        assert!((0.10..0.35).contains(&frac), "metal fraction {frac}");
    }

    #[test]
    fn lower_slice_lateral_beats_vertical() {
        let geo = coarse_lower();
        let m = lower_beol(ULTRA_LOW_K_ILD.conductivity, &geo);
        let kz = extract_k(&m, Axis::Z).expect("z");
        let kx = extract_k(&m, Axis::X).expect("x");
        assert!(
            kx.get() > 4.0 * kz.get(),
            "routing layers conduct laterally: kz={kz}, kx={kx}"
        );
        // Fig. 7c anchors: vertical 0.31, lateral 5.47 (generous bands —
        // the synthetic slice is a stand-in for the routed design).
        assert!((0.2..1.5).contains(&kz.get()), "kz = {kz}");
        assert!((2.0..14.0).contains(&kx.get()), "kx = {kx}");
    }

    #[test]
    fn upper_slice_ultra_low_k_matches_fig7_band() {
        let geo = coarse_upper();
        let m = upper_beol(ULTRA_LOW_K_ILD.conductivity, &geo);
        let kz = extract_k(&m, Axis::Z).expect("z");
        let kx = extract_k(&m, Axis::X).expect("x");
        // Fig. 7c: vertical 6.9, lateral 13.6.
        assert!((3.0..14.0).contains(&kz.get()), "kz = {kz}");
        assert!((8.0..30.0).contains(&kx.get()), "kx = {kx}");
    }

    #[test]
    fn thermal_dielectric_transforms_upper_layers() {
        let geo = coarse_upper();
        let ulk = upper_beol(ULTRA_LOW_K_ILD.conductivity, &geo);
        let td = upper_beol(THERMAL_DIELECTRIC_CONSERVATIVE.conductivity, &geo);
        let kz_ulk = extract_k(&ulk, Axis::Z).expect("z ulk");
        let kz_td = extract_k(&td, Axis::Z).expect("z td");
        let kx_ulk = extract_k(&ulk, Axis::X).expect("x ulk");
        let kx_td = extract_k(&td, Axis::X).expect("x td");
        assert!(
            kz_td.get() > 4.0 * kz_ulk.get(),
            "vertical: {kz_ulk} -> {kz_td}"
        );
        assert!(
            kx_td.get() > 4.0 * kx_ulk.get(),
            "lateral: {kx_ulk} -> {kx_td}"
        );
        // The conservative dielectric (30 through-plane) should land the
        // vertical extraction between 30 and the copper bound.
        assert!(kz_td.get() > 30.0 && kz_td.get() < 242.0, "kz_td = {kz_td}");
    }

    #[test]
    fn x_and_y_extractions_are_comparable_for_symmetric_slices() {
        // Upper slice has x stripes on M8 and y stripes on M9 with the same
        // density: the two lateral extractions should agree within ~20%.
        let geo = coarse_upper();
        let m = upper_beol(ULTRA_LOW_K_ILD.conductivity, &geo);
        let kx = extract_k(&m, Axis::X).expect("x").get();
        let ky = extract_k(&m, Axis::Y).expect("y").get();
        assert!((kx - ky).abs() / kx.max(ky) < 0.2, "kx = {kx}, ky = {ky}");
    }
}
