//! Thickness-dependent thermal conductivity of silicon films.
//!
//! Thin monolithic-3D device layers conduct far worse than bulk silicon
//! because phonon mean free paths exceed the film thickness (Jeong, Datta
//! & Lundstrom — the Landauer treatment cited as \[14\]). The paper's
//! abstraction (Fig. 1):
//!
//! | film            | vertical k | lateral k |
//! |-----------------|-----------:|----------:|
//! | 0.1 µm 3D layer |    30      |    65     |
//! | 10 µm handle    |   180      |   180     |
//!
//! We reproduce those anchors with reciprocal thickness laws
//! `k(t) = k_bulk / (1 + Λ/t)` fitted per direction.

use tsc_units::{Length, ThermalConductivity};

/// Effective bulk limit of the fitted law (slightly above the 10 µm film).
pub const BULK_LIMIT: ThermalConductivity = ThermalConductivity::new(189.6);

/// Phonon mean free path controlling cross-plane (vertical) suppression.
pub const MFP_VERTICAL: Length = Length::new(0.532e-6);

/// Phonon mean free path controlling in-plane (lateral) suppression.
pub const MFP_LATERAL: Length = Length::new(0.1917e-6);

/// Vertical (cross-plane) conductivity of a silicon film of thickness `t`.
///
/// # Panics
///
/// Panics if `t` is not strictly positive.
///
/// ```
/// use tsc_materials::silicon;
/// use tsc_units::Length;
/// let k = silicon::vertical_conductivity(Length::from_nanometers(100.0));
/// assert!((k.get() - 30.0).abs() < 1.0);
/// ```
#[must_use]
pub fn vertical_conductivity(t: Length) -> ThermalConductivity {
    suppressed(t, MFP_VERTICAL)
}

/// Lateral (in-plane) conductivity of a silicon film of thickness `t`.
///
/// # Panics
///
/// Panics if `t` is not strictly positive.
///
/// ```
/// use tsc_materials::silicon;
/// use tsc_units::Length;
/// let k = silicon::lateral_conductivity(Length::from_nanometers(100.0));
/// assert!((k.get() - 65.0).abs() < 2.0);
/// ```
#[must_use]
pub fn lateral_conductivity(t: Length) -> ThermalConductivity {
    suppressed(t, MFP_LATERAL)
}

fn suppressed(t: Length, mfp: Length) -> ThermalConductivity {
    assert!(t.meters() > 0.0, "film thickness must be positive, got {t}");
    ThermalConductivity::new(BULK_LIMIT.get() / (1.0 + mfp.meters() / t.meters()))
}

/// Fixed abstraction: vertical k of the 100 nm 3D device layer.
pub const THIN_FILM_VERTICAL: ThermalConductivity = ThermalConductivity::new(30.0);

/// Fixed abstraction: lateral k of the 100 nm 3D device layer.
pub const THIN_FILM_LATERAL: ThermalConductivity = ThermalConductivity::new(65.0);

/// Fixed abstraction: the 10 µm handle silicon.
pub const HANDLE: ThermalConductivity = ThermalConductivity::new(180.0);

#[cfg(test)]
mod tests {
    use super::*;

    fn nm(v: f64) -> Length {
        Length::from_nanometers(v)
    }

    #[test]
    fn anchors_match_paper() {
        assert!((vertical_conductivity(nm(100.0)).get() - 30.0).abs() < 1.0);
        assert!((lateral_conductivity(nm(100.0)).get() - 65.0).abs() < 2.0);
        assert!((vertical_conductivity(Length::from_micrometers(10.0)).get() - 180.0).abs() < 2.0);
    }

    #[test]
    fn lateral_beats_vertical_in_thin_films() {
        for t in [50.0, 100.0, 200.0, 500.0] {
            assert!(lateral_conductivity(nm(t)).get() > vertical_conductivity(nm(t)).get());
        }
    }

    #[test]
    fn anisotropy_vanishes_in_thick_films() {
        let t = Length::from_micrometers(100.0);
        let v = vertical_conductivity(t).get();
        let l = lateral_conductivity(t).get();
        assert!((l - v) / v < 0.01, "thick films are isotropic: {v} vs {l}");
    }

    #[test]
    fn monotone_in_thickness() {
        let mut last = 0.0;
        for t in [10.0, 50.0, 100.0, 1000.0, 10_000.0] {
            let k = vertical_conductivity(nm(t)).get();
            assert!(k > last);
            last = k;
        }
    }

    #[test]
    #[should_panic(expected = "film thickness must be positive")]
    fn zero_thickness_rejected() {
        let _ = vertical_conductivity(Length::ZERO);
    }
}
