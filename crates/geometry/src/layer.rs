//! Vertical layer stacks: the material recipe of a 3D IC.

use tsc_units::Length;

/// The role a slab plays in the stack — used by mesh builders to decide
/// which slabs carry heat sources and which may receive thermal dielectric
/// or pillars.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// Active device silicon (heat-generating).
    DeviceSilicon,
    /// Lumped lower BEOL (V0–V7 routing + ILD).
    BeolLower,
    /// Upper BEOL layers (M8/V8/M9) — the scaffolding dielectric target.
    BeolUpper,
    /// Inter-layer-via / bonding interface between tiers.
    IlvInterface,
    /// Bulk handle silicon.
    HandleSilicon,
    /// Heat-spreading or custom slab.
    Other,
}

impl core::fmt::Display for LayerKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            Self::DeviceSilicon => "device-Si",
            Self::BeolLower => "BEOL-lower",
            Self::BeolUpper => "BEOL-upper",
            Self::IlvInterface => "ILV",
            Self::HandleSilicon => "handle-Si",
            Self::Other => "other",
        };
        f.write_str(s)
    }
}

/// One slab of a [`LayerStack`].
#[derive(Debug, Clone, PartialEq)]
pub struct LayerSlab {
    /// Human-readable name (e.g. `"tier3/M8-M9"`).
    pub name: String,
    /// Slab thickness.
    pub thickness: Length,
    /// Role of the slab.
    pub kind: LayerKind,
    /// Optional tier index this slab belongs to (0 = closest to heatsink).
    pub tier: Option<usize>,
}

impl LayerSlab {
    /// Creates a slab.
    ///
    /// # Panics
    ///
    /// Panics if `thickness` is not strictly positive.
    #[must_use]
    pub fn new(name: impl Into<String>, thickness: Length, kind: LayerKind) -> Self {
        assert!(
            thickness.meters() > 0.0,
            "slab thickness must be positive, got {thickness}"
        );
        Self {
            name: name.into(),
            thickness,
            kind,
            tier: None,
        }
    }

    /// Builder-style tier annotation.
    #[must_use]
    pub fn with_tier(mut self, tier: usize) -> Self {
        self.tier = Some(tier);
        self
    }
}

/// An ordered stack of slabs, bottom (heatsink side, z = 0) to top.
///
/// ```
/// use tsc_geometry::{LayerKind, LayerSlab, LayerStack};
/// use tsc_units::Length;
///
/// let mut stack = LayerStack::new();
/// stack.push(LayerSlab::new("handle", Length::from_micrometers(10.0), LayerKind::HandleSilicon));
/// stack.push(LayerSlab::new("device", Length::from_nanometers(100.0), LayerKind::DeviceSilicon));
/// assert!((stack.total_thickness().micrometers() - 10.1).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LayerStack {
    slabs: Vec<LayerSlab>,
}

impl LayerStack {
    /// Creates an empty stack.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a slab on top.
    pub fn push(&mut self, slab: LayerSlab) {
        self.slabs.push(slab);
    }

    /// Number of slabs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slabs.len()
    }

    /// `true` when no slabs have been added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slabs.is_empty()
    }

    /// Borrowing iterator, bottom to top.
    pub fn iter(&self) -> core::slice::Iter<'_, LayerSlab> {
        self.slabs.iter()
    }

    /// Slab at index (0 = bottom).
    #[must_use]
    pub fn get(&self, index: usize) -> Option<&LayerSlab> {
        self.slabs.get(index)
    }

    /// Total stack height.
    #[must_use]
    pub fn total_thickness(&self) -> Length {
        self.slabs.iter().map(|s| s.thickness).sum()
    }

    /// z coordinate of the *bottom* face of slab `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds the slab count.
    #[must_use]
    pub fn z_bottom(&self, index: usize) -> Length {
        assert!(index <= self.slabs.len(), "slab index out of range");
        self.slabs[..index].iter().map(|s| s.thickness).sum()
    }

    /// Index of the slab containing height `z`, or `None` if outside.
    /// A boundary z belongs to the slab above it (except the very top).
    #[must_use]
    pub fn slab_at(&self, z: Length) -> Option<usize> {
        if z.meters() < 0.0 {
            return None;
        }
        let mut acc = Length::ZERO;
        for (idx, slab) in self.slabs.iter().enumerate() {
            acc += slab.thickness;
            if z < acc {
                return Some(idx);
            }
        }
        // Allow the exact top face to resolve to the last slab.
        if !self.slabs.is_empty() && z == acc {
            return Some(self.slabs.len() - 1);
        }
        None
    }

    /// Splits every slab into mesh cells no thicker than `max_cell`,
    /// returning per-cell `(slab_index, cell_thickness)` bottom to top.
    ///
    /// Every slab receives at least one cell; cells within a slab are
    /// equal-thickness so that slab interfaces always coincide with cell
    /// interfaces (essential for accuracy across high-contrast layers).
    ///
    /// # Panics
    ///
    /// Panics if `max_cell` is not strictly positive.
    #[must_use]
    pub fn discretize(&self, max_cell: Length) -> Vec<(usize, Length)> {
        assert!(
            max_cell.meters() > 0.0,
            "max cell thickness must be positive"
        );
        let mut cells = Vec::new();
        for (idx, slab) in self.slabs.iter().enumerate() {
            let n = (slab.thickness.meters() / max_cell.meters())
                .ceil()
                .max(1.0) as usize;
            let dz = slab.thickness / n as f64;
            for _ in 0..n {
                cells.push((idx, dz));
            }
        }
        cells
    }

    /// All slab indices of a given kind.
    pub fn slabs_of_kind(&self, kind: LayerKind) -> impl Iterator<Item = usize> + '_ {
        self.slabs
            .iter()
            .enumerate()
            .filter(move |(_, s)| s.kind == kind)
            .map(|(i, _)| i)
    }
}

impl core::ops::Index<usize> for LayerStack {
    type Output = LayerSlab;
    fn index(&self, index: usize) -> &LayerSlab {
        &self.slabs[index]
    }
}

impl FromIterator<LayerSlab> for LayerStack {
    fn from_iter<I: IntoIterator<Item = LayerSlab>>(iter: I) -> Self {
        Self {
            slabs: iter.into_iter().collect(),
        }
    }
}

impl Extend<LayerSlab> for LayerStack {
    fn extend<I: IntoIterator<Item = LayerSlab>>(&mut self, iter: I) {
        self.slabs.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_stack() -> LayerStack {
        [
            LayerSlab::new(
                "handle",
                Length::from_micrometers(10.0),
                LayerKind::HandleSilicon,
            ),
            LayerSlab::new(
                "device0",
                Length::from_nanometers(100.0),
                LayerKind::DeviceSilicon,
            )
            .with_tier(0),
            LayerSlab::new("beol0", Length::from_micrometers(1.0), LayerKind::BeolLower)
                .with_tier(0),
            LayerSlab::new(
                "upper0",
                Length::from_nanometers(240.0),
                LayerKind::BeolUpper,
            )
            .with_tier(0),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn thickness_accumulates() {
        let s = sample_stack();
        assert!((s.total_thickness().micrometers() - 11.34).abs() < 1e-9);
        assert!((s.z_bottom(1).micrometers() - 10.0).abs() < 1e-9);
        assert!((s.z_bottom(4).micrometers() - 11.34).abs() < 1e-9);
    }

    #[test]
    fn slab_lookup_by_height() {
        let s = sample_stack();
        assert_eq!(s.slab_at(Length::from_micrometers(5.0)), Some(0));
        assert_eq!(s.slab_at(Length::from_micrometers(10.05)), Some(1));
        assert_eq!(s.slab_at(Length::from_micrometers(11.0)), Some(2));
        assert_eq!(s.slab_at(Length::from_micrometers(11.34)), Some(3));
        assert_eq!(s.slab_at(Length::from_micrometers(12.0)), None);
        assert_eq!(s.slab_at(Length::from_micrometers(-1.0)), None);
    }

    #[test]
    fn discretization_respects_interfaces() {
        let s = sample_stack();
        let cells = s.discretize(Length::from_micrometers(0.5));
        // Every slab has >= 1 cell and per-slab thicknesses sum to the slab.
        for (idx, slab) in s.iter().enumerate() {
            let total: Length = cells
                .iter()
                .filter(|(si, _)| *si == idx)
                .map(|(_, dz)| *dz)
                .sum();
            assert!(
                total.approx_eq(slab.thickness, 1e-15),
                "slab {idx} thickness mismatch"
            );
        }
        // The 10 µm handle silicon splits into 20 cells of 0.5 µm.
        assert_eq!(cells.iter().filter(|(si, _)| *si == 0).count(), 20);
        // Thin slabs are never merged away.
        assert_eq!(cells.iter().filter(|(si, _)| *si == 1).count(), 1);
    }

    #[test]
    fn kind_filter() {
        let s = sample_stack();
        let uppers: Vec<_> = s.slabs_of_kind(LayerKind::BeolUpper).collect();
        assert_eq!(uppers, vec![3]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_thickness_slab_rejected() {
        let _ = LayerSlab::new("bad", Length::ZERO, LayerKind::Other);
    }
}
