//! Probe the Fig. 12 toy design space.

use tsc_core::beol;
use tsc_core::codesign::{reduction_vs_baseline, Arrangement, ToyConfig};
use tsc_units::Length;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = ToyConfig::default();
    for side_um in [1.0, 1.5, 2.0] {
        let side = Length::from_micrometers(side_um);
        let td = reduction_vs_baseline(
            &cfg,
            beol::upper_thermal_dielectric(),
            Arrangement::SingleCentral { side },
        )?;
        let ulk = reduction_vs_baseline(
            &cfg,
            beol::upper_ultra_low_k(),
            Arrangement::SingleCentral { side },
        )?;
        let cover = reduction_vs_baseline(
            &cfg,
            beol::upper_ultra_low_k(),
            Arrangement::UniformCovering {
                reference_side: side,
            },
        )?;
        println!(
            "pillar {side_um} µm: single+TD {:.1}%  single+ULK {:.1}%  4x-cover+ULK {:.1}%",
            td.percent(),
            ulk.percent(),
            cover.percent()
        );
    }
    Ok(())
}
