//! The service runtime: acceptor, connection handling, worker pool,
//! request coalescing, and graceful shutdown.
//!
//! Threading model:
//!
//! * one **acceptor** thread owns the listener and spawns a thread per
//!   connection (bounded by `max_connections`, excess answered 503);
//! * each **connection** thread runs the bounded HTTP parser over a
//!   growing buffer (split reads and pipelining fall out naturally),
//!   routes light endpoints inline, and parks heavy requests on a
//!   coalescing slot;
//! * `workers` **solver** threads pop jobs from a bounded queue and
//!   execute them against the shared context pool.
//!
//! Backpressure is explicit: a full queue answers 429 + `Retry-After`
//! without blocking the connection thread, and a request whose deadline
//! expires while queued answers 504 — but an *accepted* job is always
//! executed, so the pool stays warm and coalesced waiters never hang.

use std::collections::{HashMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use std::sync::atomic::AtomicU64;

use tsc_jobs::{ShardWork, TableConfig};

use crate::api::{self, ApiJob, BatchRequest};
use crate::http::{parse_request, Limits, Parsed, Request, Response};
use crate::jobs::JobsHost;
use crate::locks::{rank, RankedMutex};
use crate::metrics::Metrics;
use crate::pool::ServicePools;
use crate::queue::{JobQueue, Priority, PushError};

/// Server configuration; `Default` is suitable for tests (ephemeral port,
/// small pool and queue).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Port to bind on 127.0.0.1; 0 picks an ephemeral port.
    pub port: u16,
    /// Solver worker threads (clamped to at least 1).
    pub workers: usize,
    /// Bounded job-queue capacity.
    pub queue_cap: usize,
    /// Context-pool capacity; 0 disables pooling.
    pub pool_cap: usize,
    /// Default per-request deadline (overridable per request via the
    /// `X-Deadline-Ms` header).
    pub deadline: Duration,
    /// Maximum simultaneously open connections; excess get 503.
    pub max_connections: usize,
    /// Maximum simultaneously open transient sessions; excess get 429.
    /// Sessions run on their connection thread, so this caps long-lived
    /// solver state, not worker occupancy.
    pub session_cap: usize,
    /// Close idle keep-alive connections after this long.
    pub idle_timeout: Duration,
    /// Parser caps.
    pub limits: Limits,
    /// Whether `POST /v1/shutdown` is honoured (the CLI enables it; tests
    /// that probe routing may disable it).
    pub allow_shutdown: bool,
    /// Optimization-job table sizing: capacity, per-class concurrency
    /// quota, and result TTL (`/v1/jobs`).
    pub job_table: TableConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            port: 0,
            workers: 2,
            queue_cap: 32,
            pool_cap: 8,
            deadline: Duration::from_secs(60),
            max_connections: 64,
            session_cap: 8,
            idle_timeout: Duration::from_secs(10),
            limits: Limits::default(),
            allow_shutdown: true,
            job_table: TableConfig::default(),
        }
    }
}

/// A coalescing slot: the first submitter creates it, every identical
/// concurrent request waits on it, one worker fills it exactly once.
struct Slot {
    result: RankedMutex<Option<(u16, String)>>,
    ready: Condvar,
}

impl Slot {
    fn new() -> Arc<Self> {
        Arc::new(Slot {
            result: RankedMutex::new(None, rank::SLOT_RESULT, "Slot.result"),
            ready: Condvar::new(),
        })
    }

    fn fill(&self, status: u16, body: String) {
        let mut guard = self.result.lock();
        *guard = Some((status, body));
        drop(guard);
        self.ready.notify_all();
    }

    /// Wait until filled or `deadline` elapses.  Every waiter receives a
    /// clone of the same `(status, body)` — coalesced responses are
    /// bitwise identical by construction.
    fn wait(&self, deadline: Duration) -> Option<(u16, String)> {
        let start = Instant::now();
        let mut guard = self.result.lock();
        while guard.is_none() {
            let elapsed = start.elapsed();
            if elapsed >= deadline {
                return None;
            }
            let (g, _) = guard.wait_timeout(&self.ready, deadline - elapsed);
            guard = g;
        }
        (*guard).clone()
    }
}

/// One coalesce-owned item of a queued job: the owner's request plus the
/// slot its waiters share.
struct JobItem {
    key: u64,
    api: ApiJob,
    slot: Arc<Slot>,
}

/// A queued unit of work.
enum Job {
    /// A request-driven solve: one item for the single-request
    /// endpoints, an operator-affine group for `/v1/batch`.
    Solve { items: Vec<JobItem> },
    /// One checked-out optimization-job slice (`/v1/jobs`), enqueued by
    /// the pump at background priority.
    Slice { id: u64, work: Box<ShardWork> },
}

/// State shared by every thread of the server.
struct Shared {
    stop: AtomicBool,
    shutdown_requested: AtomicBool,
    shutdown_flag: RankedMutex<bool>,
    shutdown_cv: Condvar,
    queue: JobQueue<Job>,
    coalesce: RankedMutex<HashMap<u64, Arc<Slot>>>,
    pools: ServicePools,
    metrics: Metrics,
    config: ServerConfig,
    addr: SocketAddr,
    /// Live transient sessions, for the admission cap and `/metrics`.
    sessions: AtomicUsize,
    /// The optimization-job table and its wakeup condvar.
    jobs: JobsHost,
    /// SplitMix64 state for retry-hint jitter — lock-free, seeded per
    /// process so synchronized clients de-synchronize.
    jitter_state: AtomicU64,
}

impl Shared {
    fn signal_shutdown(&self) {
        self.shutdown_requested.store(true, Ordering::SeqCst);
        let mut flagged = self.shutdown_flag.lock();
        *flagged = true;
        drop(flagged);
        self.shutdown_cv.notify_all();
    }

    /// A uniform draw in `[0, 1)` from the shared SplitMix64 stream.
    fn jitter_unit(&self) -> f64 {
        let mut z = self
            .jitter_state
            .fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed)
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Load-scaled, per-class, jittered retry hint for a 429: grows with
    /// queue fullness, is larger for lower classes (they should back off
    /// longer), and carries ±25 % jitter so synchronized clients do not
    /// thundering-herd the queue on the same tick.  Returns
    /// `(whole seconds for Retry-After, milliseconds for
    /// X-Retry-After-Ms)`.
    fn retry_hint(&self, class: Priority) -> (u32, u64) {
        let capacity = self.queue.capacity().max(1) as f64;
        let fullness = (self.queue.len() as f64 / capacity).clamp(0.0, 1.0);
        let base_ms = match class {
            Priority::Interactive => 200.0,
            Priority::Batch => 750.0,
            Priority::Background => 2_000.0,
        };
        let scaled = base_ms * (0.5 + 1.5 * fullness);
        let jittered = scaled * (0.75 + 0.5 * self.jitter_unit());
        let ms = (jittered.round() as u64).max(25);
        (u32::try_from(ms.div_ceil(1_000)).unwrap_or(1).max(1), ms)
    }
}

/// Attach the retry hints to a 429 response.
fn with_retry_hints(response: Response, shared: &Shared, class: Priority) -> Response {
    let (secs, ms) = shared.retry_hint(class);
    response
        .with_retry_after(secs)
        .with_header("X-Retry-After-Ms", ms.to_string())
}

/// The admission class of a request: `X-Priority` header if present,
/// endpoint default otherwise.
fn request_priority(request: &Request, default: Priority) -> Result<Priority, String> {
    match request.header("x-priority") {
        Some(value) => Priority::parse(value),
        None => Ok(default),
    }
}

/// A running server.  Dropping it does *not* stop the threads — call
/// [`Server::shutdown`].
pub struct Server {
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    pump: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind and start accepting.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn start(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(("127.0.0.1", config.port))?;
        let addr = listener.local_addr()?;
        let workers = config.workers.max(1);
        let job_table = config.job_table;
        let shared = Arc::new(Shared {
            stop: AtomicBool::new(false),
            shutdown_requested: AtomicBool::new(false),
            shutdown_flag: RankedMutex::new(false, rank::SHUTDOWN, "Shared.shutdown_flag"),
            shutdown_cv: Condvar::new(),
            queue: JobQueue::new(config.queue_cap.max(1)),
            coalesce: RankedMutex::new(HashMap::new(), rank::COALESCE, "Shared.coalesce"),
            pools: ServicePools::new(config.pool_cap),
            metrics: Metrics::default(),
            config,
            addr,
            sessions: AtomicUsize::new(0),
            jobs: JobsHost::new(
                job_table,
                u64::from(std::process::id())
                    .rotate_left(17)
                    .wrapping_add(u64::from(addr.port())),
            ),
            jitter_state: AtomicU64::new(
                u64::from(std::process::id()) ^ (u64::from(addr.port()) << 32),
            ),
        });
        shared
            .metrics
            .queue_capacity
            .set(shared.queue.capacity() as i64);

        let worker_handles: Vec<JoinHandle<()>> = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        let acceptor = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || accept_loop(&listener, &shared))
        };
        let pump = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || jobs_pump(&shared))
        };

        Ok(Server {
            shared,
            acceptor: Some(acceptor),
            workers: worker_handles,
            pump: Some(pump),
        })
    }

    /// The bound address (useful with `port: 0`).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The live metrics registry (test and bench introspection).
    pub fn metrics(&self) -> &Metrics {
        &self.shared.metrics
    }

    /// The live service pools (test introspection: pin counts, depth).
    pub fn pools(&self) -> &ServicePools {
        &self.shared.pools
    }

    /// Block until a client POSTs `/v1/shutdown`.
    pub fn wait_for_shutdown_request(&self) {
        let mut flagged = self.shared.shutdown_flag.lock();
        while !*flagged {
            flagged = flagged.wait(&self.shared.shutdown_cv);
        }
    }

    /// Graceful shutdown: stop accepting, drain the queue (accepted jobs
    /// still run), join the workers, and wait for open connections to
    /// finish their in-flight request.
    pub fn shutdown(mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Unblock the acceptor with a throwaway connection.
        let _ = TcpStream::connect(self.shared.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // The pump notices `stop` on its next wakeup; in-flight job
        // slices still drain through the queue below, and jobs resume
        // from their last checkpoint (the resume token clients fetched).
        self.shared.jobs.notify();
        if let Some(pump) = self.pump.take() {
            let _ = pump.join();
        }
        self.shared.queue.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // Connection threads notice `stop` at their next parse/read cycle
        // and close; give them a bounded grace period.
        let grace = Instant::now();
        while self.shared.metrics.connections.get() > 0 && grace.elapsed() < Duration::from_secs(5)
        {
            thread::sleep(Duration::from_millis(10));
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        if shared.metrics.connections.get() >= shared.config.max_connections as i64 {
            refuse_connection(stream, shared);
            continue;
        }
        shared.metrics.connections.inc();
        let shared = Arc::clone(shared);
        thread::spawn(move || {
            drive_connection(stream, &shared);
            shared.metrics.connections.dec();
        });
    }
}

fn refuse_connection(mut stream: TcpStream, shared: &Shared) {
    shared.metrics.record_request("other", 503);
    let response = Response::error(503, "connection limit reached")
        .with_retry_after(1)
        .with_close();
    let _ = stream.write_all(&response.to_bytes());
}

/// The per-service hooks [`drive_connection`] needs: routing, parse-error
/// accounting, and the shared lifecycle/limits knobs.  Implemented by the
/// solve server here and by the shard router in [`crate::router`].
pub(crate) trait ConnectionHandler {
    /// Route one parsed request to a response.
    fn handle(&self, request: &Request) -> Response;
    /// Offer the request a chance to take over the raw connection (the
    /// transient session endpoint; sticky tunnelling in the router).
    /// `leftover` is any already-buffered bytes beyond the request.
    /// Returning `true` means the connection was consumed: the stream is
    /// close-delimited and the driver must not reuse it.
    fn handle_stream(&self, _request: &Request, _stream: &mut TcpStream, _leftover: &[u8]) -> bool {
        false
    }
    /// Record a request that failed before routing (parse error, timeout).
    fn record_error(&self, status: u16);
    fn limits(&self) -> &Limits;
    fn idle_timeout(&self) -> Duration;
    /// True once the service is draining; connections close after their
    /// in-flight response.
    fn stopping(&self) -> bool;
}

impl ConnectionHandler for Arc<Shared> {
    fn handle(&self, request: &Request) -> Response {
        route(request, self)
    }

    fn handle_stream(&self, request: &Request, stream: &mut TcpStream, leftover: &[u8]) -> bool {
        if request.method == "GET"
            && request.path.starts_with("/v1/jobs/")
            && request.path.ends_with("/events")
        {
            crate::jobs::stream_events(
                &self.jobs,
                &self.metrics,
                &request.path,
                stream,
                request_deadline(request, self),
                &|| self.stop.load(Ordering::SeqCst),
            );
            return true;
        }
        if request.method != "POST" || request.path != "/v1/transient" {
            return false;
        }
        let host = crate::session::SessionHost {
            pools: &self.pools,
            metrics: &self.metrics,
            active: &self.sessions,
            cap: self.config.session_cap,
            deadline: request_deadline(request, self),
        };
        host.serve(request, stream, leftover, &|| {
            self.stop.load(Ordering::SeqCst)
        });
        true
    }

    fn record_error(&self, status: u16) {
        self.metrics.record_request("other", status);
    }

    fn limits(&self) -> &Limits {
        &self.config.limits
    }

    fn idle_timeout(&self) -> Duration {
        self.config.idle_timeout
    }

    fn stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }
}

/// Read/parse loop for one connection.  Handles split reads, pipelined
/// requests (via the buffer remainder), keep-alive, idle timeout, and
/// malformed input → 4xx + close.
pub(crate) fn drive_connection(mut stream: TcpStream, handler: &impl ConnectionHandler) {
    // Short poll interval so idle connections notice `stop` promptly.
    if stream
        .set_read_timeout(Some(Duration::from_millis(200)))
        .is_err()
    {
        return;
    }
    // Responses are written whole; never let Nagle hold one back waiting
    // for an ACK on a keep-alive connection.
    let _ = stream.set_nodelay(true);
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut idle_since = Instant::now();
    let mut chunk = [0u8; 4096];

    loop {
        // Drain every complete request already buffered (pipelining).
        loop {
            match parse_request(&buf, handler.limits()) {
                Ok(Parsed::Complete(request, consumed)) => {
                    buf.drain(..consumed);
                    idle_since = Instant::now();
                    if handler.handle_stream(&request, &mut stream, &buf) {
                        return;
                    }
                    let close_after = request.wants_close();
                    let response = handler.handle(&request);
                    let closing = response.close || close_after || handler.stopping();
                    let response = if closing && !response.close {
                        response.with_close()
                    } else {
                        response
                    };
                    if stream.write_all(&response.to_bytes()).is_err() || closing {
                        return;
                    }
                }
                Ok(Parsed::Partial) => break,
                Err(err) => {
                    handler.record_error(err.status());
                    let response = Response::error(err.status(), &err.to_string()).with_close();
                    let _ = stream.write_all(&response.to_bytes());
                    return;
                }
            }
        }

        if handler.stopping() {
            return;
        }

        match stream.read(&mut chunk) {
            Ok(0) => {
                // EOF mid-request is a malformed (truncated) request.
                if !buf.is_empty() {
                    handler.record_error(400);
                    let response = Response::error(400, "truncated request").with_close();
                    let _ = stream.write_all(&response.to_bytes());
                }
                return;
            }
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                idle_since = Instant::now();
            }
            Err(err)
                if err.kind() == ErrorKind::WouldBlock || err.kind() == ErrorKind::TimedOut =>
            {
                if idle_since.elapsed() >= handler.idle_timeout() {
                    if !buf.is_empty() {
                        // A stalled partial request gets a 408.
                        handler.record_error(408);
                        let response = Response::error(408, "request timeout").with_close();
                        let _ = stream.write_all(&response.to_bytes());
                    }
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// Endpoint label for metrics.
fn endpoint_label(path: &str) -> &'static str {
    if path == "/v1/jobs" || path.starts_with("/v1/jobs/") {
        return "jobs";
    }
    match path {
        "/v1/solve" => "solve",
        "/v1/flow" => "flow",
        "/v1/pillars" => "pillars",
        "/v1/batch" => "batch",
        "/v1/transient" => "transient",
        "/v1/designs" => "designs",
        "/metrics" => "metrics",
        "/healthz" => "healthz",
        "/v1/shutdown" => "shutdown",
        _ => "other",
    }
}

/// Route one request to a response, recording request metrics.
fn route(request: &Request, shared: &Arc<Shared>) -> Response {
    let endpoint = endpoint_label(&request.path);
    let response = route_inner(request, endpoint, shared);
    shared.metrics.record_request(endpoint, response.status);
    response
}

fn route_inner(request: &Request, endpoint: &'static str, shared: &Arc<Shared>) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => Response::text(200, "ok\n"),
        ("GET", "/metrics") => {
            shared.jobs.sync_metrics(&shared.metrics);
            shared.metrics.queue_depth.set(shared.queue.len() as i64);
            shared
                .metrics
                .transient_sessions_active
                .set(shared.sessions.load(Ordering::Relaxed) as i64);
            shared
                .metrics
                .transient_pinned
                .set(shared.pools.transients.pinned() as i64);
            let mut response = Response::text(200, &shared.metrics.render());
            response.content_type = "text/plain; version=0.0.4";
            response
        }
        ("GET", "/v1/designs") => Response::json(200, crate::api::designs_body()),
        ("POST", "/v1/shutdown") => {
            if shared.config.allow_shutdown {
                shared.signal_shutdown();
                Response::json(200, "{\n  \"status\": \"shutting down\"\n}\n".to_string())
                    .with_close()
            } else {
                Response::error(404, "shutdown disabled")
            }
        }
        ("POST", "/v1/solve" | "/v1/flow" | "/v1/pillars") => {
            match ApiJob::parse(&request.path, &request.body) {
                Some(Ok(job)) => dispatch_heavy(request, job, endpoint, shared),
                Some(Err(message)) => Response::error(400, &message),
                // Unreachable: the path match above is exactly the heavy set.
                None => Response::error(404, "no such endpoint"),
            }
        }
        ("POST", "/v1/batch") => match BatchRequest::parse(&request.body) {
            Ok(batch) => dispatch_batch(request, batch, shared),
            Err(message) => Response::error(400, &message),
        },
        ("POST", "/v1/jobs") => crate::jobs::submit(&shared.jobs, &shared.metrics, request),
        (method, path) if path.starts_with("/v1/jobs/") => {
            crate::jobs::route_entry(&shared.jobs, &shared.metrics, method, path)
        }
        (
            _,
            "/healthz" | "/metrics" | "/v1/designs" | "/v1/shutdown" | "/v1/solve" | "/v1/flow"
            | "/v1/pillars" | "/v1/batch" | "/v1/transient" | "/v1/jobs",
        ) => Response::error(405, "method not allowed"),
        _ => Response::error(404, "no such endpoint"),
    }
}

/// Submit a heavy job: coalesce onto an identical in-flight request when
/// possible, otherwise enqueue; then wait with a deadline.
fn dispatch_heavy(
    request: &Request,
    job: ApiJob,
    endpoint: &'static str,
    shared: &Arc<Shared>,
) -> Response {
    let started = Instant::now();
    let deadline = request_deadline(request, shared);
    let class = match request_priority(request, Priority::Interactive) {
        Ok(class) => class,
        Err(message) => return Response::error(400, &message),
    };
    let key = job.coalesce_key();

    // Register-or-latch under one lock: either we find an identical
    // in-flight request and share its slot, or we insert ours *before*
    // enqueueing so no identical request can slip past.
    let (slot, is_owner) = register_or_latch(shared, key);

    if is_owner {
        let queued = Job::Solve {
            items: vec![JobItem {
                key,
                api: job,
                slot: Arc::clone(&slot),
            }],
        };
        match shared.queue.try_push(queued, class) {
            Ok(()) => {
                shared.metrics.class_admitted[class.index()].inc();
                shared.metrics.queue_depth.set(shared.queue.len() as i64);
            }
            Err(refusal) => {
                // Un-register and fail the slot so latched waiters (a
                // window exists between our insert and this failure)
                // get the same refusal instead of hanging.
                remove_coalesce_entry(shared, key, &slot);
                let (status, message) = match refusal {
                    PushError::Full => {
                        shared.metrics.rejected_queue_full.inc();
                        shared.metrics.class_shed[class.index()].inc();
                        (429, "solve queue full")
                    }
                    PushError::Closed => (503, "server shutting down"),
                };
                slot.fill(status, error_body(message));
                let mut response = Response::json(status, error_body(message));
                if status == 429 {
                    response = with_retry_hints(response, shared, class);
                }
                return response;
            }
        }
    } else {
        shared.metrics.coalesced_total.inc();
    }

    match slot.wait(deadline) {
        Some((status, body)) => {
            let us = started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
            shared.metrics.observe_latency_us(endpoint, us);
            if status == 429 {
                with_retry_hints(Response::json(429, body), shared, class)
            } else {
                Response::json(status, body)
            }
        }
        None => {
            // Waiter-side timeout only: the job (if accepted) still runs
            // to completion and warms the pool.
            shared.metrics.deadline_timeouts.inc();
            Response::error(504, "deadline expired before the solve completed")
        }
    }
}

/// Per-request deadline: `X-Deadline-Ms` header clamped to sane bounds,
/// the configured default otherwise.
fn request_deadline(request: &Request, shared: &Shared) -> Duration {
    request
        .header("x-deadline-ms")
        .and_then(|v| v.parse::<u64>().ok())
        .map(|ms| Duration::from_millis(ms.clamp(1, 600_000)))
        .unwrap_or(shared.config.deadline)
}

/// Register-or-latch on the coalescing map: returns the slot for `key`
/// and whether the caller became its owner (and must enqueue / fill it).
fn register_or_latch(shared: &Shared, key: u64) -> (Arc<Slot>, bool) {
    let mut coalesce = shared.coalesce.lock();
    match coalesce.get(&key) {
        Some(slot) => (Arc::clone(slot), false),
        None => {
            let slot = Slot::new();
            coalesce.insert(key, Arc::clone(&slot));
            (slot, true)
        }
    }
}

/// The per-item state a batch dispatch tracks between its phases.
enum BatchItem {
    /// Item-level validation failure, reported in place.
    Invalid(String),
    /// This request owns the slot: a worker will fill it once its group
    /// executes (or phase 3 fills the refusal).
    Owned { slot: Arc<Slot> },
    /// An identical request (in-flight `/v1/solve`, or an earlier item of
    /// this same batch) already owns a slot; share its result.
    Latched { slot: Arc<Slot> },
}

/// Submit a `/v1/batch` envelope: coalesce each item individually, group
/// the owned items by operator affinity so each group runs through one
/// checked-out context, enqueue the groups, then collect per-item results
/// in order.  One failed item (or one refused group) never fails the
/// envelope — every item reports its own status.
fn dispatch_batch(request: &Request, batch: BatchRequest, shared: &Arc<Shared>) -> Response {
    let started = Instant::now();
    let deadline = request_deadline(request, shared);
    let class = match request_priority(request, Priority::Batch) {
        Ok(class) => class,
        Err(message) => return Response::error(400, &message),
    };
    shared.metrics.batch_requests_total.inc();
    shared
        .metrics
        .batch_items_total
        .add(batch.items.len() as u64);

    // Phase 1: register-or-latch every valid item.  Identical items inside
    // the batch latch onto the first occurrence's slot, and a batch item
    // identical to an in-flight /v1/solve shares that solve's result.
    let mut states: Vec<BatchItem> = Vec::with_capacity(batch.items.len());
    let mut owned: Vec<(u64, ApiJob, Arc<Slot>)> = Vec::new();
    for item in batch.items {
        match item {
            Err(message) => states.push(BatchItem::Invalid(message)),
            Ok(job) => {
                let key = job.coalesce_key();
                let (slot, is_owner) = register_or_latch(shared, key);
                if is_owner {
                    owned.push((key, job, Arc::clone(&slot)));
                    states.push(BatchItem::Owned { slot });
                } else {
                    shared.metrics.coalesced_total.inc();
                    states.push(BatchItem::Latched { slot });
                }
            }
        }
    }

    // Phase 2: group owned items by operator affinity, preserving batch
    // order within each group (the first item of a group pays the stack
    // build; the rest are repowered warm solves).
    let mut groups: Vec<(u64, Vec<JobItem>)> = Vec::new();
    for (key, job, slot) in owned {
        let affinity = job.affinity_key();
        let item = JobItem {
            key,
            api: job,
            slot,
        };
        match groups.iter_mut().find(|(a, _)| *a == affinity) {
            Some((_, items)) => items.push(item),
            None => groups.push((affinity, vec![item])),
        }
    }

    // Phase 3: enqueue each group as one job.  A refused group fails only
    // its own items (and their latched waiters), never the whole batch —
    // the refusal is filled into the group's slots, so every item still
    // reports a status in phase 4.
    for (_, items) in groups {
        let members: Vec<(u64, Arc<Slot>)> = items
            .iter()
            .map(|item| (item.key, Arc::clone(&item.slot)))
            .collect();
        match shared.queue.try_push(Job::Solve { items }, class) {
            Ok(()) => {
                shared.metrics.class_admitted[class.index()].inc();
                shared.metrics.queue_depth.set(shared.queue.len() as i64);
            }
            Err(refusal) => {
                let (status, message) = match refusal {
                    PushError::Full => {
                        shared.metrics.rejected_queue_full.inc();
                        shared.metrics.class_shed[class.index()].inc();
                        (429, "solve queue full")
                    }
                    PushError::Closed => (503, "server shutting down"),
                };
                for (key, slot) in members {
                    remove_coalesce_entry(shared, key, &slot);
                    slot.fill(status, error_body(message));
                }
            }
        }
    }

    // Phase 4: collect results in the envelope's item order.  Each item
    // waits on its own slot with whatever is left of the shared deadline;
    // a timed-out item reports its own 504 without sinking the rest.
    let (_, retry_ms) = shared.retry_hint(class);
    let mut results: Vec<tsc_bench::json::Json> = Vec::with_capacity(states.len());
    let mut item_errors = 0u64;
    for state in states {
        let item = match state {
            BatchItem::Invalid(message) => tsc_bench::json::Json::object()
                .field("status", 400usize)
                .field(
                    "body",
                    tsc_bench::json::parse(&error_body(&message))
                        .unwrap_or(tsc_bench::json::Json::Null),
                ),
            BatchItem::Owned { slot, .. } | BatchItem::Latched { slot } => {
                let remaining = deadline.saturating_sub(started.elapsed());
                match slot.wait(remaining) {
                    Some((status, body)) => {
                        let parsed = tsc_bench::json::parse(&body)
                            .unwrap_or(tsc_bench::json::Json::Str(body));
                        let mut item = tsc_bench::json::Json::object()
                            .field("status", status as usize)
                            .field("body", parsed);
                        if status == 429 {
                            item = item.field("retry_after_ms", retry_ms as usize);
                        }
                        item
                    }
                    None => {
                        shared.metrics.deadline_timeouts.inc();
                        tsc_bench::json::Json::object()
                            .field("status", 504usize)
                            .field(
                                "body",
                                tsc_bench::json::parse(&error_body(
                                    "deadline expired before the solve completed",
                                ))
                                .unwrap_or(tsc_bench::json::Json::Null),
                            )
                    }
                }
            }
        };
        let failed = item
            .get("status")
            .and_then(tsc_bench::json::Json::as_usize)
            .is_none_or(|status| status != 200);
        if failed {
            item_errors += 1;
        }
        results.push(item);
    }
    shared.metrics.batch_item_errors_total.add(item_errors);

    let us = started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
    shared.metrics.observe_latency_us("batch", us);
    let envelope = tsc_bench::json::Json::object()
        .field("count", results.len())
        .field("errors", item_errors as usize)
        .field("items", results);
    Response::json(200, envelope.pretty())
}

fn remove_coalesce_entry(shared: &Shared, key: u64, slot: &Arc<Slot>) {
    let mut coalesce = shared.coalesce.lock();
    // Only remove the entry if it is still *our* slot — a later identical
    // request may have re-registered after a worker finished ours.
    if let Some(current) = coalesce.get(&key) {
        if Arc::ptr_eq(current, slot) {
            coalesce.remove(&key);
        }
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.queue.pop() {
        shared.metrics.queue_depth.set(shared.queue.len() as i64);
        match job {
            Job::Solve { items } => run_solve_group(shared, &items),
            Job::Slice { id, work } => run_job_slice(shared, id, *work),
        }
    }
}

/// Executes one request-driven solve group and fans its results out to
/// every coalesced waiter.
fn run_solve_group(shared: &Arc<Shared>, items: &[JobItem]) {
    shared.metrics.inflight.inc();
    let jobs: Vec<&ApiJob> = items.iter().map(|item| &item.api).collect();
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        api::execute_group(&jobs, &shared.pools, &shared.metrics)
    }));
    shared.metrics.inflight.dec();
    let results = match outcome {
        Ok(results) => results,
        // execute_group catches per-item panics itself; this outer
        // guard is a last line of defence for the grouping logic.
        Err(_) => {
            shared.metrics.worker_panics.inc();
            items
                .iter()
                .map(|_| Err((500, "internal error: worker panicked".to_string())))
                .collect()
        }
    };
    for (item, result) in items.iter().zip(results) {
        // De-register *before* filling: once the result is visible,
        // new identical requests must start a fresh solve (their
        // inputs may race a pool eviction, but correctness never
        // depends on reuse).
        remove_coalesce_entry(shared, item.key, &item.slot);
        match result {
            Ok(body) => item.slot.fill(200, body),
            Err((status, message)) => item.slot.fill(status, error_body(&message)),
        }
    }
}

/// Executes one optimization-job work slice lock-free, then returns it
/// to the table (which advances barriers and settles terminal states)
/// and wakes the pump.
fn run_job_slice(shared: &Arc<Shared>, id: u64, mut work: ShardWork) {
    shared.metrics.inflight.inc();
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
        work.run();
        work
    }));
    shared.metrics.inflight.dec();
    shared.metrics.job_slices_total.inc();
    let now = Instant::now();
    {
        let mut table = shared.jobs.table.lock();
        match outcome {
            Ok(work) => table.complete(id, work, now),
            Err(_) => {
                // The slice's state is gone with the panic; the engine
                // can never be advanced consistently again.
                shared.metrics.worker_panics.inc();
                table.abandon(id, "internal error: worker panicked mid-slice", now);
            }
        }
    }
    shared.jobs.notify();
    shared.jobs.sync_metrics(&shared.metrics);
}

/// How long the jobs pump sleeps when it has nothing to do (a condvar
/// notify wakes it sooner).
const PUMP_TICK: Duration = Duration::from_millis(25);

/// Work slices the pump keeps checked out at a time.  Bounds how much of
/// the worker pool a job fleet can occupy; the queue pops interactive
/// and batch requests first regardless.
const SLICE_BATCH: usize = 4;

/// The job scheduler: promotes admitted jobs within per-class quotas,
/// checks out step slices, and feeds them to the solve queue at
/// background priority.  Slices refused by a full queue are retried (the
/// table still counts them in flight), never dropped.
fn jobs_pump(shared: &Arc<Shared>) {
    let mut pending: VecDeque<Job> = VecDeque::new();
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        let mut progressed = false;
        while let Some(job) = pending.pop_front() {
            match shared.queue.try_push_reclaim(job, Priority::Background) {
                Ok(()) => {
                    progressed = true;
                    shared.metrics.class_admitted[Priority::Background.index()].inc();
                    shared.metrics.queue_depth.set(shared.queue.len() as i64);
                }
                Err((job, PushError::Full)) => {
                    pending.push_front(job);
                    break;
                }
                Err((_, PushError::Closed)) => return,
            }
        }
        {
            let now = Instant::now();
            let mut table = shared.jobs.table.lock();
            table.evict_expired(now);
            if pending.is_empty() {
                for (id, work) in table.next_slices(SLICE_BATCH, now) {
                    progressed = true;
                    pending.push_back(Job::Slice {
                        id,
                        work: Box::new(work),
                    });
                }
            }
            if !progressed {
                let (guard, _timed_out) = table.wait_timeout(&shared.jobs.changed, PUMP_TICK);
                drop(guard);
            }
        }
        shared.jobs.sync_metrics(&shared.metrics);
    }
}

fn error_body(message: &str) -> String {
    tsc_bench::json::Json::object()
        .field("error", message)
        .pretty()
}
