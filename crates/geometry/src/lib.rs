//! Layout and mesh geometry for 3D-IC thermal co-design.
//!
//! This crate provides the spatial vocabulary shared by the floorplanner,
//! the pillar placer and the thermal solvers:
//!
//! * [`Point`] / [`Rect`] — unit-safe 2-D layout primitives (floorplan
//!   units, macros, pillar footprints);
//! * [`Grid2`] / [`Grid3`] — dense row-major fields over uniform meshes
//!   (power maps, temperature maps, conductivity fields);
//! * [`LayerStack`] — the vertical material recipe of a 3D IC (device
//!   silicon, lumped BEOL, thermal-dielectric layers, handle wafer), with
//!   helpers to discretize each slab into mesh cells.
//!
//! # Example
//!
//! ```
//! use tsc_geometry::{Grid2, Rect};
//! use tsc_units::Length;
//!
//! // A 64x64 power map over a 1 mm x 1 mm die, with a hot 250 µm square.
//! let die = Rect::from_origin_size(
//!     Length::ZERO, Length::ZERO,
//!     Length::from_millimeters(1.0), Length::from_millimeters(1.0));
//! let mut map = Grid2::filled(64, 64, 0.0_f64);
//! let hot = Rect::from_origin_size(
//!     Length::from_micrometers(100.0), Length::from_micrometers(100.0),
//!     Length::from_micrometers(250.0), Length::from_micrometers(250.0));
//! map.paint_rect(&die, &hot, 95.0);
//! assert!(map.iter().any(|&v| v == 95.0));
//! ```

// No crate outside tsc-thermal may contain `unsafe` (enforced
// statically here and by `cargo run -p tsc-analyze`).
#![forbid(unsafe_code)]

mod grid2;
mod grid3;
mod layer;
mod point;
mod rect;

pub use grid2::Grid2;
pub use grid3::{Dim3, Grid3, Index3};
pub use layer::{LayerKind, LayerSlab, LayerStack};
pub use point::{Index2, Point};
pub use rect::Rect;
