//! Tier-scaling searches and penalty sweeps (Figs. 9–11, Table I).

use crate::flows::{run_flow_with, CoolingStrategy, FlowConfig};
use tsc_designs::Design;
use tsc_thermal::{SolveContext, SolveError};
use tsc_units::Ratio;

/// One point of a tier-scaling curve (Fig. 9 / Fig. 11).
#[derive(Debug, Clone)]
pub struct ScalingPoint {
    /// Tier count.
    pub tiers: usize,
    /// Junction temperature at that count.
    pub junction_celsius: f64,
    /// Whether the configured limit held.
    pub meets_limit: bool,
}

/// Sweeps tier count from 1 to `max_tiers`, producing the Fig. 9 curve
/// for one design/strategy/heatsink combination.
///
/// # Errors
///
/// Propagates solver failures.
pub fn tier_curve(
    design: &Design,
    base: &FlowConfig,
    max_tiers: usize,
) -> Result<Vec<ScalingPoint>, SolveError> {
    tier_curve_with(design, base, max_tiers, &mut SolveContext::new())
}

/// [`tier_curve`] against a caller-owned [`SolveContext`]. Each tier
/// count changes the mesh (cold assembly), but long-running callers
/// sweeping the same curve repeatedly still skip the final re-assembly
/// and keep the warm field when cell counts line up.
///
/// # Errors
///
/// Propagates solver failures.
pub fn tier_curve_with(
    design: &Design,
    base: &FlowConfig,
    max_tiers: usize,
    ctx: &mut SolveContext,
) -> Result<Vec<ScalingPoint>, SolveError> {
    let mut out = Vec::with_capacity(max_tiers);
    for n in 1..=max_tiers {
        let cfg = FlowConfig {
            tiers: n,
            ..base.clone()
        };
        let r = run_flow_with(design, &cfg, ctx)?;
        out.push(ScalingPoint {
            tiers: n,
            junction_celsius: r.junction_temperature.celsius(),
            meets_limit: r.meets_limit,
        });
    }
    Ok(out)
}

/// The largest tier count whose junction stays within the limit
/// (scanning upward and stopping at the first violation, since the
/// junction rises monotonically with tier count).
///
/// # Errors
///
/// Propagates solver failures.
pub fn max_tiers(design: &Design, base: &FlowConfig, cap: usize) -> Result<usize, SolveError> {
    max_tiers_with(design, base, cap, &mut SolveContext::new())
}

/// [`max_tiers`] against a caller-owned [`SolveContext`].
///
/// # Errors
///
/// Propagates solver failures.
pub fn max_tiers_with(
    design: &Design,
    base: &FlowConfig,
    cap: usize,
    ctx: &mut SolveContext,
) -> Result<usize, SolveError> {
    let mut best = 0;
    for n in 1..=cap {
        let cfg = FlowConfig {
            tiers: n,
            ..base.clone()
        };
        if run_flow_with(design, &cfg, ctx)?.meets_limit {
            best = n;
        } else {
            break;
        }
    }
    Ok(best)
}

/// One cell of the Fig. 10 penalty maps.
#[derive(Debug, Clone)]
pub struct PenaltyCell {
    /// Footprint budget (percent).
    pub area_percent: f64,
    /// Delay budget (percent).
    pub delay_percent: f64,
    /// Supported tiers within 125 °C.
    pub supported_tiers: usize,
}

/// Sweeps an (area budget × delay budget) grid, reporting supported tier
/// counts — the data behind the Fig. 10 heatmaps.
///
/// # Errors
///
/// Propagates solver failures.
pub fn penalty_map(
    design: &Design,
    strategy: CoolingStrategy,
    area_percents: &[f64],
    delay_percents: &[f64],
    cap: usize,
    lateral_cells: usize,
) -> Result<Vec<PenaltyCell>, SolveError> {
    let mut out = Vec::with_capacity(area_percents.len() * delay_percents.len());
    // One context across the whole grid: neighbouring budget cells visit
    // the same tier counts, so warm fields and cached operators carry.
    let mut ctx = SolveContext::new();
    for &a in area_percents {
        for &d in delay_percents {
            let base = FlowConfig {
                strategy,
                area_budget: Ratio::from_percent(a),
                delay_budget: Ratio::from_percent(d),
                lateral_cells,
                ..FlowConfig::default()
            };
            let n = max_tiers_with(design, &base, cap, &mut ctx)?;
            out.push(PenaltyCell {
                area_percent: a,
                delay_percent: d,
                supported_tiers: n,
            });
        }
    }
    Ok(out)
}

/// The minimum footprint budget (bisected to `tol_percent`) that lets a
/// strategy support `tiers` within the limit, given a generous delay
/// budget — the Table I search. Returns `None` if even `max_area`
/// fails.
///
/// # Errors
///
/// Propagates solver failures.
pub fn min_area_for_tiers(
    design: &Design,
    strategy: CoolingStrategy,
    tiers: usize,
    delay_budget: Ratio,
    max_area: Ratio,
    tol_percent: f64,
    lateral_cells: usize,
) -> Result<Option<Ratio>, SolveError> {
    // The mesh is fixed (tier count and resolution never change inside
    // the bisection), so one context warm-starts every probe.
    min_area_for_tiers_with(
        design,
        strategy,
        tiers,
        delay_budget,
        max_area,
        tol_percent,
        lateral_cells,
        &mut SolveContext::new(),
    )
}

/// [`min_area_for_tiers`] against a caller-owned [`SolveContext`].
///
/// # Errors
///
/// Propagates solver failures.
#[allow(clippy::too_many_arguments)]
pub fn min_area_for_tiers_with(
    design: &Design,
    strategy: CoolingStrategy,
    tiers: usize,
    delay_budget: Ratio,
    max_area: Ratio,
    tol_percent: f64,
    lateral_cells: usize,
    ctx: &mut SolveContext,
) -> Result<Option<Ratio>, SolveError> {
    let mut feasible = |area: f64| -> Result<bool, SolveError> {
        let cfg = FlowConfig {
            strategy,
            tiers,
            area_budget: Ratio::from_percent(area),
            delay_budget,
            lateral_cells,
            ..FlowConfig::default()
        };
        Ok(run_flow_with(design, &cfg, ctx)?.meets_limit)
    };
    let hi0 = max_area.percent();
    if !feasible(hi0)? {
        return Ok(None);
    }
    let (mut lo, mut hi) = (0.0_f64, hi0);
    while hi - lo > tol_percent {
        let mid = 0.5 * (lo + hi);
        if feasible(mid)? {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Ok(Some(Ratio::from_percent(hi)))
}

/// Convenience record for Table I rows.
#[derive(Debug, Clone)]
pub struct PenaltyRow {
    /// Strategy of this row.
    pub strategy: CoolingStrategy,
    /// Minimum footprint penalty found (percent), if feasible.
    pub footprint_percent: Option<f64>,
    /// Delay penalty at that footprint (percent).
    pub delay_percent: Option<f64>,
}

/// Builds one Table I row: minimum footprint for `tiers`, and the delay
/// penalty that footprint incurs.
///
/// # Errors
///
/// Propagates solver failures.
pub fn table1_row(
    design: &Design,
    strategy: CoolingStrategy,
    tiers: usize,
    lateral_cells: usize,
) -> Result<PenaltyRow, SolveError> {
    use tsc_phydes::timing::DelayModel;
    let area = min_area_for_tiers(
        design,
        strategy,
        tiers,
        Ratio::from_percent(100.0), // generous: report the delay it costs
        Ratio::from_percent(95.0),
        0.5,
        lateral_cells,
    )?;
    let delay = area.map(|a| {
        DelayModel::calibrated()
            .delay_penalty(&crate::flows::timing_impact(strategy, a))
            .percent()
    });
    Ok(PenaltyRow {
        strategy,
        footprint_percent: area.map(|a| a.percent()),
        delay_percent: delay,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsc_designs::gemmini;
    use tsc_thermal::Heatsink;

    fn base(strategy: CoolingStrategy, area: f64, delay: f64) -> FlowConfig {
        FlowConfig {
            strategy,
            area_budget: Ratio::from_percent(area),
            delay_budget: Ratio::from_percent(delay),
            lateral_cells: 10,
            ..FlowConfig::default()
        }
    }

    #[test]
    fn tier_curve_is_monotone() {
        let d = gemmini::design();
        let curve = tier_curve(
            &d,
            &base(CoolingStrategy::ConventionalDummyVias, 10.0, 3.0),
            6,
        )
        .expect("solves");
        assert_eq!(curve.len(), 6);
        for w in curve.windows(2) {
            assert!(w[1].junction_celsius > w[0].junction_celsius);
        }
    }

    #[test]
    fn fig9_shape_conventional_vs_scaffolding() {
        // The Fig. 9 anchor: at equal 10%/~3% penalties, conventional
        // supports ~3-4 tiers, scaffolding ~12.
        let d = gemmini::design();
        let conv = max_tiers(
            &d,
            &base(CoolingStrategy::ConventionalDummyVias, 10.0, 2.8),
            16,
        )
        .expect("solves");
        let scaf =
            max_tiers(&d, &base(CoolingStrategy::Scaffolding, 10.0, 2.8), 16).expect("solves");
        assert!(
            (3..=5).contains(&conv),
            "conventional at iso-penalty: {conv} tiers (paper: 3)"
        );
        assert!(
            (11..=16).contains(&scaf),
            "scaffolding at iso-penalty: {scaf} tiers (paper: 12)"
        );
        // Paper reports 4x (12 vs 3); our slightly cooler conventional
        // baseline lands at 2.5-3x — same story, documented in
        // EXPERIMENTS.md.
        assert!(
            scaf as f64 >= 2.5 * conv as f64,
            "the 3-4x headline: conventional {conv}, scaffolding {scaf}"
        );
    }

    #[test]
    fn microfluidic_heatsink_flips_low_tier_counts() {
        // Fig. 11: with Tj<125 °C, microfluidics (25 °C water) gives
        // conventional more headroom at low counts, but scaffolding
        // still scales further.
        let d = gemmini::design();
        let mf = FlowConfig {
            heatsink: Heatsink::microfluidic(),
            ..base(CoolingStrategy::Scaffolding, 10.0, 2.8)
        };
        let scaf_mf = max_tiers(&d, &mf, 14).expect("solves");
        let conv_mf = max_tiers(
            &d,
            &FlowConfig {
                strategy: CoolingStrategy::ConventionalDummyVias,
                ..mf.clone()
            },
            14,
        )
        .expect("solves");
        assert!(
            scaf_mf > conv_mf,
            "scaffolding {scaf_mf} vs conventional {conv_mf}"
        );
        // Paper: 8 vs 5 tiers.
        assert!(
            (6..=10).contains(&scaf_mf),
            "scaffolded microfluidic: {scaf_mf}"
        );
        assert!(
            (3..=7).contains(&conv_mf),
            "conventional microfluidic: {conv_mf}"
        );
    }

    #[test]
    fn min_area_search_is_consistent() {
        let d = gemmini::design();
        let a = min_area_for_tiers(
            &d,
            CoolingStrategy::Scaffolding,
            10,
            Ratio::from_percent(100.0),
            Ratio::from_percent(60.0),
            1.0,
            10,
        )
        .expect("solves")
        .expect("feasible");
        // Supporting 10 tiers needs a nonzero but modest pillar budget.
        assert!(
            a.percent() > 0.5 && a.percent() < 20.0,
            "min area for 10 tiers: {a}"
        );
    }

    #[test]
    fn infeasible_min_area_is_none() {
        let d = gemmini::design();
        let a = min_area_for_tiers(
            &d,
            CoolingStrategy::ConventionalDummyVias,
            16,
            Ratio::from_percent(100.0),
            Ratio::from_percent(20.0),
            1.0,
            10,
        )
        .expect("solves");
        assert!(a.is_none(), "16 conventional tiers in 20% area: impossible");
    }
}
