//! Benches of the physical-design kernels: sequence-pair evaluation,
//! SA floorplanning, fill/delay models, scheduling. In-repo harness.

use tsc_bench::timing::Bench;
use tsc_core::flows::{timing_impact, CoolingStrategy};
use tsc_phydes::anneal::Schedule;
use tsc_phydes::fill::FillModel;
use tsc_phydes::floorplan::{floorplan, place_sequence_pair, FloorplanConfig, Module, Net};
use tsc_phydes::schedule::{assign, Task, TierRanking};
use tsc_phydes::timing::DelayModel;
use tsc_units::{Length, Power, Ratio, TempDelta};

fn modules(n: usize) -> Vec<Module> {
    (0..n)
        .map(|i| {
            let side = Length::from_micrometers(40.0 + (i % 7) as f64 * 15.0);
            Module::soft(
                format!("m{i}"),
                side,
                side,
                Power::from_milliwatts(1.0 + i as f64),
            )
        })
        .collect()
}

fn nets(n: usize) -> Vec<Net> {
    (1..n).map(|i| Net { a: i - 1, b: i }).collect()
}

fn main() {
    let ms = modules(20);
    let order: Vec<usize> = (0..20).collect();
    let rot = vec![false; 20];
    let b = Bench::group("sequence_pair");
    b.run("place_sequence_pair_20", 20, || {
        place_sequence_pair(&ms, &order, &order, &rot)
    });

    let ms10 = modules(10);
    let ns = nets(10);
    let cfg = FloorplanConfig {
        schedule: Schedule::quick(),
        ..FloorplanConfig::default()
    };
    let b = Bench::group("sa_floorplan");
    b.run("quick_10_modules", 5, || floorplan(&ms10, &ns, &cfg));

    let b = Bench::group("models");
    let fill = FillModel::calibrated();
    b.run("fill_model_eval", 20, || {
        fill.coupling_capacitance(Ratio::from_percent(40.0))
    });
    let delay = DelayModel::calibrated();
    b.run("delay_model_eval", 20, || {
        delay.delay_penalty(&timing_impact(
            CoolingStrategy::Scaffolding,
            Ratio::from_percent(10.0),
        ))
    });

    let rankings: Vec<TierRanking> = (0..12)
        .map(|t| TierRanking {
            tier: t,
            solo_rise: TempDelta::new(1.0 + t as f64),
        })
        .collect();
    let tasks: Vec<Task> = (0..12)
        .map(|i| Task::new(format!("t{i}"), Power::from_watts(f64::from(i as u32))))
        .collect();
    let b = Bench::group("scheduling");
    b.run("thermal_aware_assignment_12", 20, || {
        assign(rankings.clone(), &tasks)
    });
}
