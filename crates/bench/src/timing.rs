//! Minimal measured-median benchmark harness.
//!
//! The container this reproduction builds in has no network access, so
//! Criterion cannot be fetched; the four `benches/*.rs` targets
//! (`harness = false`) use this module instead. It keeps the properties
//! that matter for kernel timing — warmup before measurement, many
//! samples, a robust (median) statistic, and a `black_box` to defeat
//! dead-code elimination — and drops the statistical machinery we do not
//! need for coarse speedup comparisons.
//!
//! Every sample runs the closure once; `BENCH_FAST=1` in the environment
//! caps samples at 3 for a quick smoke pass (used by CI).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One benchmark group printing aligned results.
pub struct Bench {
    group: String,
    fast: bool,
}

/// Result of a single measured benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Median wall-clock time per iteration.
    pub median: Duration,
    /// Minimum observed time per iteration.
    pub min: Duration,
    /// Samples measured.
    pub samples: usize,
}

impl Measurement {
    /// Median time in seconds.
    #[must_use]
    pub fn seconds(&self) -> f64 {
        self.median.as_secs_f64()
    }
}

impl Bench {
    /// Starts a named group (prints a banner).
    #[must_use]
    pub fn group(name: &str) -> Self {
        println!("\n== bench group: {name}");
        Self {
            group: name.to_string(),
            fast: std::env::var_os("BENCH_FAST").is_some(),
        }
    }

    /// Measures `f`, printing and returning the median per-iteration time.
    ///
    /// Warms up for ~3 iterations (capped at 1 s), then takes up to
    /// `samples` timed runs (capped at 3 when `BENCH_FAST` is set).
    pub fn run<T>(&self, name: &str, samples: usize, mut f: impl FnMut() -> T) -> Measurement {
        let samples = if self.fast {
            samples.min(3)
        } else {
            samples.max(1)
        };
        // Warmup: run until ~1 s or 3 iterations, whichever first.
        let warm_start = Instant::now();
        for _ in 0..3 {
            black_box(f());
            if warm_start.elapsed() > Duration::from_secs(1) {
                break;
            }
        }
        let mut times = Vec::with_capacity(samples);
        for _ in 0..samples {
            let t0 = Instant::now();
            black_box(f());
            times.push(t0.elapsed());
        }
        times.sort_unstable();
        let m = Measurement {
            median: times[times.len() / 2],
            min: times[0],
            samples,
        };
        println!(
            "  {:<44} median {:>12.3?}  min {:>12.3?}  ({} samples)",
            format!("{}/{}", self.group, name),
            m.median,
            m.min,
            m.samples
        );
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let b = Bench::group("selftest");
        let m = b.run("spin", 3, || {
            let mut acc = 0u64;
            for i in 0..10_000u64 {
                acc = acc.wrapping_add(black_box(i));
            }
            acc
        });
        assert!(m.median > Duration::ZERO);
        assert!(m.min <= m.median);
        assert_eq!(m.samples, 3);
    }
}
