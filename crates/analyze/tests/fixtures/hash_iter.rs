//! Fixture: a numeric reduction over `HashMap` iteration order.

use std::collections::HashMap;

pub fn total(power: &HashMap<String, f64>) -> f64 {
    power.values().sum::<f64>()
}

pub fn accumulate(power: HashMap<String, f64>) -> f64 {
    let mut acc = 0.0;
    for (_k, v) in &power {
        acc += v;
    }
    acc
}
