//! Exact affine superposition of solutions that share one operator.
//!
//! The steady-state system is linear: `A·T = P + b`, where the operator
//! `A` and the boundary term `b` are fixed by geometry, materials and
//! heatsinks, and `P` is the staged power vector.  Given two solves
//! `A·T_a = P_a + b` and `A·T_b = P_b + b`, any blended load
//! `P = (1−α)·P_a + α·P_b` is solved *exactly* by
//! `T = (1−α)·T_a + α·T_b` — the constant boundary term blends to
//! itself, so superposition holds for the affine (not just linear)
//! combination.
//!
//! [`affine_family`] detects when a family of power vectors lies on one
//! such line.  Utilization sweeps over a fixed design do by
//! construction: per-class power density is affine in utilization
//! (`nominal · (leak + (1−leak)·u·f)`), so every cell's power is
//! `p(u) = c₀ + c₁·u` and the whole vector moves along one direction as
//! `u` varies.  [`blend_solutions`] then materialises the interpolated
//! solutions without touching the solver — two anchor solves price an
//! arbitrarily long sweep.
//!
//! Membership is *verified elementwise*, never assumed: a vector that
//! strays from the fitted line by more than ~1e−9 of the family's power
//! scale (float-rounding headroom above the ~1e−15 error of evaluating
//! the affine density model itself) rejects the whole family, and
//! callers fall back to per-item solves.  Fits are also restricted to
//! interpolation (`α ∈ [0, 1]`), so blending never amplifies anchor
//! solver error.

use crate::analysis::EnergyBalance;
use crate::field::TemperatureField;
use crate::solver::Solution;
use tsc_geometry::Grid3;
use tsc_units::Power;

/// Relative elementwise tolerance for family membership.
const MEMBERSHIP_RTOL: f64 = 1e-9;

/// Slack on the `α ∈ [0, 1]` interpolation check, covering rounding in
/// the least-squares fit of an exact member.
const ALPHA_SLACK: f64 = 1e-6;

/// A family of power vectors on the line between two anchors.
#[derive(Debug, Clone)]
pub struct AffineFamily {
    /// Index of the low anchor (smallest total power).
    pub anchor_low: usize,
    /// Index of the high anchor (largest total power).
    pub anchor_high: usize,
    /// Per-member blend coordinate: member `i` equals
    /// `(1−α_i)·powers[anchor_low] + α_i·powers[anchor_high]` within
    /// [`affine_family`]'s verification tolerance.  `alphas[anchor_low]`
    /// is 0 and `alphas[anchor_high]` is 1 (up to fit rounding).
    pub alphas: Vec<f64>,
}

/// Detects whether `powers` all lie on the segment between its two
/// total-power extremes.
///
/// Returns `None` — caller should solve each member directly — when the
/// family has fewer than 3 members (nothing to amortise), mixes vector
/// lengths, is degenerate (all members coincide), or any member strays
/// from the fitted line beyond [`MEMBERSHIP_RTOL`] of the family's
/// largest |power|.  Anchors are chosen at the extremes so every
/// verified coordinate is an interpolation, `α ∈ [0, 1]`.
#[must_use]
pub fn affine_family(powers: &[Vec<f64>]) -> Option<AffineFamily> {
    if powers.len() < 3 {
        return None;
    }
    let len = powers[0].len();
    if len == 0 || powers.iter().any(|p| p.len() != len) {
        return None;
    }

    let totals: Vec<f64> = powers.iter().map(|p| p.iter().sum()).collect();
    if totals.iter().any(|t| !t.is_finite()) {
        return None;
    }
    let (anchor_low, _) = totals
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))?;
    let (anchor_high, _) = totals
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))?;

    let scale = powers
        .iter()
        .flat_map(|p| p.iter())
        .fold(0.0_f64, |m, v| m.max(v.abs()));
    // tsc-analyze: allow(float-eq): a fold of abs() values is exactly 0.0
    // only when every power entry is exactly zero — the all-zero family
    // has no line to fit and must be rejected before dividing by scale.
    if scale == 0.0 {
        return None;
    }
    let low = &powers[anchor_low];
    let high = &powers[anchor_high];
    let dd: f64 = low.iter().zip(high).map(|(a, b)| (b - a) * (b - a)).sum();
    // All members coincide (or differ below verification resolution):
    // no line to fit, and direct solves converge instantly anyway.
    if dd.sqrt() <= MEMBERSHIP_RTOL * scale {
        return None;
    }

    let tol = MEMBERSHIP_RTOL * scale;
    let mut alphas = Vec::with_capacity(powers.len());
    for member in powers {
        // Least-squares projection onto the anchor direction…
        let dot: f64 = member
            .iter()
            .zip(low)
            .zip(high)
            .map(|((m, a), b)| (m - a) * (b - a))
            .sum();
        let alpha = dot / dd;
        if !((-ALPHA_SLACK)..=1.0 + ALPHA_SLACK).contains(&alpha) {
            return None;
        }
        // …then an exact elementwise residual check: membership is
        // verified, not trusted.
        for ((m, a), b) in member.iter().zip(low).zip(high) {
            if (m - (a + alpha * (b - a))).abs() > tol {
                return None;
            }
        }
        alphas.push(alpha.clamp(0.0, 1.0));
    }
    Some(AffineFamily {
        anchor_low,
        anchor_high,
        alphas,
    })
}

/// Blends two solutions of the *same operator* as
/// `(1−alpha)·low + alpha·high`.
///
/// Exact by superposition when the corresponding power vectors blend
/// with the same coordinate (see the module docs); use
/// [`affine_family`] to establish that precondition.  The returned
/// stats record zero iterations/matvecs — the blend does no solver
/// work — and carry the worse of the two anchor residuals, which bounds
/// the blend's own relative residual for `alpha ∈ [0, 1]`.
///
/// # Panics
///
/// Panics if the two temperature fields have different mesh dimensions:
/// that means the operators differ and superposition is meaningless.
#[must_use]
pub fn blend_solutions(low: &Solution, high: &Solution, alpha: f64) -> Solution {
    assert_eq!(
        low.temperatures.dim(),
        high.temperatures.dim(),
        "blend_solutions requires both anchors on the same mesh"
    );
    let beta = 1.0 - alpha;

    let mut kelvin = Grid3::filled(low.temperatures.dim(), 0.0_f64);
    for ((out, a), b) in kelvin
        .as_mut_slice()
        .iter_mut()
        .zip(low.temperatures.iter_kelvin())
        .zip(high.temperatures.iter_kelvin())
    {
        *out = beta * a + alpha * b;
    }

    let energy = EnergyBalance {
        injected: Power::from_watts(
            beta * low.energy.injected.watts() + alpha * high.energy.injected.watts(),
        ),
        extracted: Power::from_watts(
            beta * low.energy.extracted.watts() + alpha * high.energy.extracted.watts(),
        ),
    };

    // Zero-work observability record: the blend ran no iterations, and
    // its residual is bounded by the anchors' (convexity for α∈[0,1]).
    let mut stats = high.stats.clone();
    stats.iterations = 0;
    stats.matvecs = 0;
    stats.cycles = 0;
    stats.refinements = 0;
    stats.level_residuals = Vec::new();
    stats.trajectory = Vec::new();
    stats.assembly_seconds = 0.0;
    stats.solve_seconds = 0.0;
    stats.residual = low.stats.residual.max(high.stats.residual);

    Solution {
        temperatures: TemperatureField::from_kelvin(kelvin),
        stats,
        energy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Problem;
    use crate::solver::CgSolver;
    use crate::Heatsink;
    use tsc_units::{Length, ThermalConductivity};

    fn base_problem() -> Problem {
        let mut p = Problem::uniform_block(
            8,
            8,
            6,
            Length::from_millimeters(1.0),
            Length::from_millimeters(1.0),
            Length::from_micrometers(60.0),
            ThermalConductivity::new(120.0),
        );
        p.set_bottom_heatsink(Heatsink::two_phase());
        p
    }

    /// A power vector affine in a scalar `u`: `p(u) = base + u · slope`,
    /// with spatial structure so the fit is not trivially uniform.
    fn painted(u: f64) -> Vec<f64> {
        let dim = base_problem().dim();
        (0..dim.len())
            .map(|flat| {
                let cell = flat as f64;
                1e-4 * (1.0 + (cell % 7.0)) + u * 3e-4 * (1.0 + (cell % 5.0))
            })
            .collect()
    }

    fn solve_with_power(power: &[f64]) -> Solution {
        let mut p = base_problem();
        p.clear_power();
        for (flat, watts) in power.iter().enumerate() {
            let idx = p.dim().unflat(flat);
            p.add_power(idx.i, idx.j, idx.k, Power::from_watts(*watts));
        }
        CgSolver::new()
            .with_tolerance(1e-12)
            .solve(&p)
            .expect("solve")
    }

    #[test]
    fn detects_a_utilization_style_sweep() {
        let powers: Vec<Vec<f64>> = [0.55, 0.20, 1.0, 0.60, 0.20]
            .iter()
            .map(|&u| painted(u))
            .collect();
        let family = affine_family(&powers).expect("affine family");
        assert_eq!(family.anchor_low, 1, "lowest total power");
        assert_eq!(family.anchor_high, 2, "highest total power");
        assert!(family.alphas[1].abs() < 1e-12);
        assert!((family.alphas[2] - 1.0).abs() < 1e-12);
        // u = 0.55 sits at (0.55 − 0.2) / (1.0 − 0.2) = 0.4375.
        assert!((family.alphas[0] - 0.4375).abs() < 1e-9);
        assert!((family.alphas[3] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn rejects_members_off_the_line() {
        let mut powers: Vec<Vec<f64>> = [0.2, 0.5, 1.0].iter().map(|&u| painted(u)).collect();
        // Perturb one cell of the middle member well past tolerance.
        powers[1][17] += 1e-3;
        assert!(affine_family(&powers).is_none());
    }

    #[test]
    fn rejects_degenerate_and_small_families() {
        assert!(affine_family(&[painted(0.5), painted(0.9)]).is_none());
        let same = vec![painted(0.5); 4];
        assert!(affine_family(&same).is_none());
        assert!(affine_family(&[vec![0.0; 8], vec![0.0; 8], vec![0.0; 8]]).is_none());
    }

    #[test]
    fn blend_matches_a_direct_solve() {
        let p_low = painted(0.2);
        let p_high = painted(1.0);
        let p_mid = painted(0.55);
        let family =
            affine_family(&[p_low.clone(), p_high.clone(), p_mid.clone()]).expect("family");
        let low = solve_with_power(&p_low);
        let high = solve_with_power(&p_high);
        let direct = solve_with_power(&p_mid);
        let blended = blend_solutions(&low, &high, family.alphas[2]);

        assert_eq!(blended.stats.iterations, 0);
        assert_eq!(blended.stats.matvecs, 0);
        let mut worst = 0.0_f64;
        for (b, d) in blended
            .temperatures
            .iter_kelvin()
            .zip(direct.temperatures.iter_kelvin())
        {
            worst = worst.max((b - d).abs() / d.abs());
        }
        assert!(
            worst < 1e-9,
            "superposed field departs from the direct solve: rel {worst:.3e}"
        );
        let rel_energy = (blended.energy.injected.watts() - direct.energy.injected.watts()).abs()
            / direct.energy.injected.watts();
        assert!(rel_energy < 1e-12, "injected power blends affinely");
    }
}
