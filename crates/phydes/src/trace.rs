//! Synthetic workload activity traces — the VCS-simulation substitute
//! for *temporal* power behaviour.
//!
//! The paper's power estimation simulates benchmark activity (spmv on
//! Rocket, matrix multiplication on Gemmini) and takes per-unit maxima;
//! its scheduling/gating discussions (Sec. IV Observation 5, ref. \[4\])
//! need the activity *over time*. This module generates phase-structured
//! utilization traces with the published characteristics:
//!
//! * **matmul** — long compute phases at the measured 72 % array
//!   utilization with short memory-bound prologues;
//! * **spmv** — memory-bound: low compute utilization, high cache
//!   activity, irregular phase lengths;
//! * **gated round-robin** — the Fig. 12 pattern: exactly one of `n`
//!   units active per phase.

use tsc_units::Ratio;

/// One phase of a trace: a duration and a utilization per tracked unit.
#[derive(Debug, Clone, PartialEq)]
pub struct Phase {
    /// Phase length in cycles.
    pub cycles: u64,
    /// Utilization of each tracked unit during the phase.
    pub utilization: Vec<Ratio>,
}

/// A phase-structured activity trace over named units.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Names of the tracked units (parallel to each phase's vector).
    pub units: Vec<String>,
    /// The phases, in execution order.
    pub phases: Vec<Phase>,
}

impl Trace {
    /// Total trace length in cycles.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.phases.iter().map(|p| p.cycles).sum()
    }

    /// Cycle-weighted average utilization of unit `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range or the trace is empty.
    #[must_use]
    pub fn average_utilization(&self, u: usize) -> Ratio {
        assert!(u < self.units.len(), "unit index out of range");
        let total = self.total_cycles();
        assert!(total > 0, "trace is empty");
        let weighted: f64 = self
            .phases
            .iter()
            .map(|p| p.utilization[u].fraction() * p.cycles as f64)
            .sum();
        Ratio::from_fraction(weighted / total as f64)
    }

    /// Maximum utilization of unit `u` over the trace — what PrimePower
    /// max-power extraction reports.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[must_use]
    pub fn peak_utilization(&self, u: usize) -> Ratio {
        assert!(u < self.units.len(), "unit index out of range");
        self.phases
            .iter()
            .map(|p| p.utilization[u])
            .fold(Ratio::ZERO, Ratio::max)
    }

    /// Utilization of every unit at an absolute cycle, or `None` past
    /// the end.
    #[must_use]
    pub fn at_cycle(&self, cycle: u64) -> Option<&[Ratio]> {
        let mut acc = 0u64;
        for p in &self.phases {
            acc += p.cycles;
            if cycle < acc {
                return Some(&p.utilization);
            }
        }
        None
    }
}

/// A matmul-like trace over `[array, cache]`: `bursts` compute phases at
/// the measured 72 % array utilization, each preceded by a short
/// memory-bound tile-load phase.
///
/// # Panics
///
/// Panics if `bursts` is zero.
#[must_use]
pub fn matmul(bursts: usize) -> Trace {
    assert!(bursts > 0, "need at least one burst");
    let mut phases = Vec::with_capacity(2 * bursts);
    for _ in 0..bursts {
        phases.push(Phase {
            cycles: 2_000,
            utilization: vec![Ratio::from_percent(8.0), Ratio::from_percent(90.0)],
        });
        phases.push(Phase {
            cycles: 10_000,
            utilization: vec![Ratio::from_percent(72.0), Ratio::from_percent(35.0)],
        });
    }
    Trace {
        units: vec!["array".into(), "cache".into()],
        phases,
    }
}

/// An spmv-like trace over `[core, cache]`: memory-bound with irregular
/// (deterministically varied) phase lengths.
///
/// # Panics
///
/// Panics if `phases` is zero.
#[must_use]
pub fn spmv(phases: usize) -> Trace {
    assert!(phases > 0, "need at least one phase");
    let out = (0..phases)
        .map(|i| {
            // Deterministic irregularity: row lengths vary 1-4x.
            let stretch = 1 + (i * 2654435761) % 4;
            Phase {
                cycles: 1_500 * stretch as u64,
                utilization: vec![
                    Ratio::from_percent(20.0 + 10.0 * ((i % 3) as f64)),
                    Ratio::from_percent(85.0),
                ],
            }
        })
        .collect();
    Trace {
        units: vec!["core".into(), "cache".into()],
        phases: out,
    }
}

/// A synthetic CSR sparse matrix with deterministic, power-law-ish row
/// lengths — the input to the honest SpMV timing model below (the
/// riscv-tests `spmv` benchmark substitute of Sec. IIIC).
#[derive(Debug, Clone, PartialEq)]
pub struct SparseMatrix {
    /// Number of rows.
    pub rows: usize,
    /// Non-zeros per row (deterministic irregularity).
    pub row_nnz: Vec<usize>,
}

impl SparseMatrix {
    /// Builds a matrix with `rows` rows averaging `avg_nnz` non-zeros,
    /// spread irregularly (some rows 4× denser than others) — the shape
    /// that makes spmv memory-bound and phase-irregular.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `avg_nnz` is zero.
    #[must_use]
    pub fn synthetic(rows: usize, avg_nnz: usize) -> Self {
        assert!(rows > 0 && avg_nnz > 0, "matrix must be non-empty");
        let row_nnz = (0..rows)
            .map(|r| {
                // Knuth-hash irregularity in [avg/2, 2*avg].
                let h = (r.wrapping_mul(2654435761)) % 1000;
                let scale = 0.5 + 1.5 * (h as f64 / 1000.0);
                ((avg_nnz as f64 * scale).round() as usize).max(1)
            })
            .collect();
        Self { rows, row_nnz }
    }

    /// Total non-zeros.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.row_nnz.iter().sum()
    }
}

/// Timing parameters of the in-order core running SpMV.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpmvTiming {
    /// Cycles of useful work per non-zero (load ×2, FMA, index math).
    pub cycles_per_nnz: u64,
    /// Probability that the column-vector gather misses the cache —
    /// the irregular-access signature of spmv.
    pub miss_rate: Ratio,
    /// Stall cycles per miss (the memory round trip ultra-dense 3D
    /// shortens — the paper's motivation for the workload).
    pub miss_penalty: u64,
}

impl SpmvTiming {
    /// A 2D-baseline memory system: 40 % gather miss rate, 60-cycle
    /// round trips.
    #[must_use]
    pub fn planar_baseline() -> Self {
        Self {
            cycles_per_nnz: 4,
            miss_rate: Ratio::from_percent(40.0),
            miss_penalty: 60,
        }
    }

    /// An ultra-dense-3D memory system (on-tier LLC): the same misses
    /// cost 8 cycles.
    #[must_use]
    pub fn ultra_dense_3d() -> Self {
        Self {
            miss_penalty: 8,
            ..Self::planar_baseline()
        }
    }
}

/// Runs the SpMV timing model over `matrix`, emitting one trace phase
/// per row block of `rows_per_phase` rows, with core utilization =
/// compute cycles / total cycles and cache utilization from the access
/// rate.
///
/// # Panics
///
/// Panics if `rows_per_phase` is zero.
#[must_use]
pub fn spmv_from_matrix(
    matrix: &SparseMatrix,
    timing: &SpmvTiming,
    rows_per_phase: usize,
) -> Trace {
    assert!(rows_per_phase > 0, "need at least one row per phase");
    let mut phases = Vec::new();
    for block in matrix.row_nnz.chunks(rows_per_phase) {
        let nnz: usize = block.iter().sum();
        let compute = nnz as u64 * timing.cycles_per_nnz;
        let misses = (nnz as f64 * timing.miss_rate.fraction()).round() as u64;
        let stalls = misses * timing.miss_penalty;
        let total = (compute + stalls).max(1);
        let core_util = Ratio::from_fraction(compute as f64 / total as f64);
        // Two accesses per nnz against a single-ported cache.
        let cache_util = Ratio::from_fraction((2.0 * nnz as f64 / total as f64).min(1.0));
        phases.push(Phase {
            cycles: total,
            utilization: vec![core_util, cache_util],
        });
    }
    Trace {
        units: vec!["core".into(), "cache".into()],
        phases,
    }
}

/// The Fig. 12 gating pattern: `rounds` round-robin rotations over `n`
/// units, exactly one active (at full utilization) per phase.
///
/// # Panics
///
/// Panics if `n` or `rounds` is zero.
#[must_use]
pub fn gated_round_robin(n: usize, rounds: usize, phase_cycles: u64) -> Trace {
    assert!(n > 0 && rounds > 0, "need units and rounds");
    let units = (0..n).map(|i| format!("mac{i}")).collect();
    let phases = (0..n * rounds)
        .map(|p| Phase {
            cycles: phase_cycles,
            utilization: (0..n)
                .map(|u| if u == p % n { Ratio::ONE } else { Ratio::ZERO })
                .collect(),
        })
        .collect();
    Trace { units, phases }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_trace_matches_measured_utilization() {
        // Cycle-weighted array utilization lands near the paper's 72%
        // measurement minus the load prologues.
        let t = matmul(4);
        let avg = t.average_utilization(0).percent();
        assert!((55.0..72.0).contains(&avg), "array average {avg}%");
        assert!((t.peak_utilization(0).percent() - 72.0).abs() < 1e-9);
    }

    #[test]
    fn spmv_is_memory_bound() {
        let t = spmv(9);
        let core = t.average_utilization(0).percent();
        let cache = t.average_utilization(1).percent();
        assert!(cache > 2.0 * core, "spmv: cache {cache}% vs core {core}%");
    }

    #[test]
    fn gated_pattern_has_one_hot_phases() {
        let t = gated_round_robin(4, 2, 1_000);
        assert_eq!(t.phases.len(), 8);
        for p in &t.phases {
            let active = p.utilization.iter().filter(|u| u.fraction() > 0.0).count();
            assert_eq!(active, 1, "exactly one unit active");
        }
        // Every unit averages 1/n utilization.
        for u in 0..4 {
            assert!((t.average_utilization(u).percent() - 25.0).abs() < 1e-9);
        }
    }

    #[test]
    fn cycle_lookup() {
        let t = gated_round_robin(2, 1, 100);
        assert_eq!(t.total_cycles(), 200);
        let first = t.at_cycle(0).expect("in range");
        assert_eq!(first[0], Ratio::ONE);
        let second = t.at_cycle(150).expect("in range");
        assert_eq!(second[1], Ratio::ONE);
        assert!(t.at_cycle(200).is_none());
    }

    #[test]
    fn spmv_kernel_is_memory_bound_on_planar_memory() {
        let m = SparseMatrix::synthetic(256, 12);
        let t = spmv_from_matrix(&m, &SpmvTiming::planar_baseline(), 32);
        let core = t.average_utilization(0).percent();
        assert!(
            core < 30.0,
            "planar spmv should stall most of the time: core {core}%"
        );
    }

    #[test]
    fn ultra_dense_memory_unblocks_spmv() {
        // The paper's premise: ultra-dense 3D memory-on-logic removes the
        // memory wall. Same kernel, short round trips: core utilization
        // jumps several-fold.
        let m = SparseMatrix::synthetic(256, 12);
        let planar = spmv_from_matrix(&m, &SpmvTiming::planar_baseline(), 32);
        let dense = spmv_from_matrix(&m, &SpmvTiming::ultra_dense_3d(), 32);
        let up = dense.average_utilization(0).fraction() / planar.average_utilization(0).fraction();
        assert!(up > 2.5, "3D memory speedup on spmv: {up:.2}x");
        // And the wall-clock (cycles) shrinks accordingly.
        assert!(dense.total_cycles() < planar.total_cycles() / 2);
    }

    #[test]
    fn spmv_kernel_conserves_work() {
        let m = SparseMatrix::synthetic(100, 8);
        let t = spmv_from_matrix(&m, &SpmvTiming::ultra_dense_3d(), 10);
        // Compute cycles summed over phases equal nnz * cycles_per_nnz.
        let compute: f64 = t
            .phases
            .iter()
            .map(|p| p.utilization[0].fraction() * p.cycles as f64)
            .sum();
        let expected = m.nnz() as f64 * 4.0;
        assert!(
            (compute - expected).abs() / expected < 0.01,
            "{compute} vs {expected}"
        );
    }

    #[test]
    fn spmv_phase_lengths_vary() {
        let t = spmv(8);
        let lens: std::collections::BTreeSet<u64> = t.phases.iter().map(|p| p.cycles).collect();
        assert!(lens.len() > 1, "irregular phases expected");
    }

    #[test]
    #[should_panic(expected = "unit index out of range")]
    fn bad_unit_rejected() {
        let _ = matmul(1).average_utilization(5);
    }
}
