//! Request/response model for the solve service.
//!
//! Bodies are the `tsc_bench::json` dialect.  Each heavy endpoint has a
//! typed request struct parsed from JSON with defaults and range
//! validation, a *canonical* JSON form (defaults applied, keys sorted by
//! the emitter) whose FNV-1a hash is the coalescing key — two requests
//! that differ only in field order or omitted defaults coalesce onto the
//! same in-flight solve — and an executor that runs the solve through a
//! pooled [`SolveContext`] and renders the response body.

use tsc_bench::json::Json;
use tsc_core::beol::BeolProperties;
use tsc_core::flows::{run_flow_with, CoolingStrategy, FlowConfig};
use tsc_core::pillars::{self, PlacementConfig};
use tsc_core::stack::{self, StackConfig, StackSolution};
use tsc_designs::{fujitsu, gemmini, rocket, Design};
use tsc_geometry::Grid3;
use tsc_thermal::transient::{capacity, TransientRun};
use tsc_thermal::{
    operator_fingerprint, ContextStats, Heatsink, OperatorSignature, Solution, SolveContext,
};
use tsc_units::{Ratio, Temperature};

use crate::metrics::Metrics;
use crate::pool::{Checkout, ContextKey, ContextPool, ServicePools, TransientState};

/// FNV-1a over bytes — the service's only hash, used for coalesce and
/// pool keys.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// The built-in design registry served by `GET /v1/designs` and referenced
/// by name in requests.
pub fn registry() -> &'static [(&'static str, Design)] {
    use std::sync::OnceLock;
    static REGISTRY: OnceLock<Vec<(&'static str, Design)>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        vec![
            ("gemmini", gemmini::design()),
            ("gemmini-memory", gemmini::memory_tier()),
            ("rocket", rocket::design()),
            ("fujitsu", fujitsu::design()),
        ]
    })
}

fn lookup_design(name: &str) -> Result<&'static Design, String> {
    registry()
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, d)| d)
        .ok_or_else(|| format!("unknown design {name:?}; see GET /v1/designs"))
}

/// The `GET /v1/designs` body (computed once — the registry is static).
pub fn designs_body() -> String {
    let items: Vec<Json> = registry()
        .iter()
        .map(|(name, design)| {
            Json::object()
                .field("name", *name)
                .field("units", design.units.len())
                .field("die_area_mm2", design.die_area().get() * 1e6)
                .field("total_power_w", design.total_power(Ratio::ONE).get())
        })
        .collect();
    Json::object().field("designs", items).pretty()
}

fn parse_heatsink(name: &str) -> Result<Heatsink, String> {
    match name {
        "two-phase" => Ok(Heatsink::two_phase()),
        "microfluidic" => Ok(Heatsink::microfluidic()),
        "forced-air" => Ok(Heatsink::forced_air()),
        other => Err(format!(
            "unknown heatsink {other:?} (two-phase | microfluidic | forced-air)"
        )),
    }
}

fn parse_strategy(name: &str) -> Result<CoolingStrategy, String> {
    match name {
        "scaffolding" => Ok(CoolingStrategy::Scaffolding),
        "vertical-only" => Ok(CoolingStrategy::VerticalOnly),
        "conventional" => Ok(CoolingStrategy::ConventionalDummyVias),
        other => Err(format!(
            "unknown strategy {other:?} (scaffolding | vertical-only | conventional)"
        )),
    }
}

fn strategy_name(strategy: CoolingStrategy) -> &'static str {
    match strategy {
        CoolingStrategy::Scaffolding => "scaffolding",
        CoolingStrategy::VerticalOnly => "vertical-only",
        CoolingStrategy::ConventionalDummyVias => "conventional",
    }
}

fn heatsink_name(hs: &Heatsink) -> &'static str {
    // Reverse lookup by the convective coefficient — the three presets
    // are the only values the parser admits.
    let h = hs.h.get();
    if (h - Heatsink::two_phase().h.get()).abs() < 1e-9 {
        "two-phase"
    } else if (h - Heatsink::microfluidic().h.get()).abs() < 1e-9 {
        "microfluidic"
    } else {
        "forced-air"
    }
}

/// Pull an integer field with range validation.
fn int_field(
    body: &Json,
    key: &str,
    default: usize,
    lo: usize,
    hi: usize,
) -> Result<usize, String> {
    match body.get(key) {
        None => Ok(default),
        Some(v) => {
            let n = v
                .as_usize()
                .ok_or_else(|| format!("{key} must be a non-negative integer"))?;
            if n < lo || n > hi {
                return Err(format!("{key} must be in [{lo}, {hi}], got {n}"));
            }
            Ok(n)
        }
    }
}

/// Pull a float field (percent-style) with range validation.
fn num_field(body: &Json, key: &str, default: f64, lo: f64, hi: f64) -> Result<f64, String> {
    match body.get(key) {
        None => Ok(default),
        Some(v) => {
            let x = v
                .as_f64()
                .ok_or_else(|| format!("{key} must be a number"))?;
            if !x.is_finite() || x < lo || x > hi {
                return Err(format!("{key} must be in [{lo}, {hi}]"));
            }
            Ok(x)
        }
    }
}

fn str_field<'a>(body: &'a Json, key: &str, default: &'a str) -> Result<&'a str, String> {
    match body.get(key) {
        None => Ok(default),
        Some(v) => v.as_str().ok_or_else(|| format!("{key} must be a string")),
    }
}

fn design_field(body: &Json) -> Result<String, String> {
    body.get("design")
        .ok_or_else(|| "missing required field \"design\"".to_string())?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| "design must be a string".to_string())
}

/// `POST /v1/solve` — one stack solve at a fixed configuration.
#[derive(Debug, Clone)]
pub struct SolveRequest {
    pub design: String,
    pub tiers: usize,
    pub lateral_cells: usize,
    pub utilization_percent: f64,
    pub strategy: CoolingStrategy,
    pub heatsink: Heatsink,
    pub area_budget_percent: f64,
}

impl SolveRequest {
    pub fn parse(body: &Json) -> Result<Self, String> {
        let req = SolveRequest {
            design: design_field(body)?,
            tiers: int_field(body, "tiers", 8, 1, 64)?,
            lateral_cells: int_field(body, "lateral_cells", 12, 4, 64)?,
            utilization_percent: num_field(body, "utilization_percent", 100.0, 1.0, 100.0)?,
            strategy: parse_strategy(str_field(body, "strategy", "scaffolding")?)?,
            heatsink: parse_heatsink(str_field(body, "heatsink", "two-phase")?)?,
            area_budget_percent: num_field(body, "area_budget_percent", 10.0, 0.0, 30.0)?,
        };
        lookup_design(&req.design)?;
        Ok(req)
    }

    /// Canonical JSON with defaults applied — the coalescing identity.
    pub fn canonical(&self) -> Json {
        Json::object()
            .field("design", self.design.as_str())
            .field("tiers", self.tiers)
            .field("lateral_cells", self.lateral_cells)
            .field("utilization_percent", self.utilization_percent)
            .field("strategy", strategy_name(self.strategy))
            .field("heatsink", heatsink_name(&self.heatsink))
            .field("area_budget_percent", self.area_budget_percent)
    }

    /// The canonical form *minus* the power-only knob.  Utilization
    /// enters the built stack solely through the per-tier power maps
    /// (never the operator), so two solve requests that agree on this
    /// form assemble the same operator — a computable proxy for the
    /// operator fingerprint that needs no stack build.  Batch grouping
    /// and shard routing key on it.
    pub fn operator_canonical(&self) -> Json {
        Json::object()
            .field("design", self.design.as_str())
            .field("tiers", self.tiers)
            .field("lateral_cells", self.lateral_cells)
            .field("strategy", strategy_name(self.strategy))
            .field("heatsink", heatsink_name(&self.heatsink))
            .field("area_budget_percent", self.area_budget_percent)
    }

    fn stack_config(&self, design: &Design) -> StackConfig {
        let spend = Ratio::from_percent(self.area_budget_percent);
        let (beol, pillar_map) = match self.strategy {
            CoolingStrategy::Scaffolding => (
                BeolProperties::scaffolded(),
                Some(pillars::uniform_routable_map(
                    design,
                    spend,
                    self.lateral_cells,
                )),
            ),
            CoolingStrategy::VerticalOnly => (
                BeolProperties::conventional(),
                Some(pillars::uniform_routable_map(
                    design,
                    spend,
                    self.lateral_cells,
                )),
            ),
            CoolingStrategy::ConventionalDummyVias => {
                (BeolProperties::with_dummy_fill(spend), None)
            }
        };
        let utilization = Ratio::from_percent(self.utilization_percent);
        let mut config = StackConfig::uniform(self.tiers, beol, self.heatsink)
            .with_lateral_cells(self.lateral_cells)
            .with_utilizations(vec![utilization; self.tiers]);
        if let Some(map) = pillar_map {
            config = config.with_pillar_map(map);
        }
        config
    }
}

/// `POST /v1/flow` — a full co-design flow run ([`run_flow_with`]).
#[derive(Debug, Clone)]
pub struct FlowRequest {
    pub design: String,
    pub config: FlowConfig,
}

impl FlowRequest {
    pub fn parse(body: &Json) -> Result<Self, String> {
        let defaults = FlowConfig::default();
        let config = FlowConfig {
            strategy: parse_strategy(str_field(body, "strategy", "scaffolding")?)?,
            tiers: int_field(body, "tiers", defaults.tiers, 1, 64)?,
            heatsink: parse_heatsink(str_field(body, "heatsink", "two-phase")?)?,
            t_limit: Temperature::from_celsius(num_field(
                body,
                "t_limit_celsius",
                defaults.t_limit.celsius(),
                50.0,
                200.0,
            )?),
            area_budget: Ratio::from_percent(num_field(
                body,
                "area_budget_percent",
                defaults.area_budget.percent(),
                0.0,
                30.0,
            )?),
            delay_budget: Ratio::from_percent(num_field(
                body,
                "delay_budget_percent",
                defaults.delay_budget.percent(),
                0.0,
                20.0,
            )?),
            utilization: Ratio::from_percent(num_field(
                body,
                "utilization_percent",
                100.0,
                1.0,
                100.0,
            )?),
            lateral_cells: int_field(body, "lateral_cells", defaults.lateral_cells, 4, 64)?,
        };
        let req = FlowRequest {
            design: design_field(body)?,
            config,
        };
        lookup_design(&req.design)?;
        Ok(req)
    }

    pub fn canonical(&self) -> Json {
        Json::object()
            .field("design", self.design.as_str())
            .field("strategy", strategy_name(self.config.strategy))
            .field("tiers", self.config.tiers)
            .field("heatsink", heatsink_name(&self.config.heatsink))
            .field("t_limit_celsius", self.config.t_limit.celsius())
            .field("area_budget_percent", self.config.area_budget.percent())
            .field("delay_budget_percent", self.config.delay_budget.percent())
            .field("utilization_percent", self.config.utilization.percent())
            .field("lateral_cells", self.config.lateral_cells)
    }
}

/// `POST /v1/pillars` — a pillar placement run ([`pillars::place_with`]).
#[derive(Debug, Clone)]
pub struct PillarsRequest {
    pub design: String,
    pub config: PlacementConfig,
}

impl PillarsRequest {
    pub fn parse(body: &Json) -> Result<Self, String> {
        let mut config = PlacementConfig::paper_default();
        config.tiers = int_field(body, "tiers", config.tiers, 1, 64)?;
        config.lateral_cells = int_field(body, "lateral_cells", config.lateral_cells, 4, 64)?;
        config.t_target = Temperature::from_celsius(num_field(
            body,
            "t_target_celsius",
            config.t_target.celsius(),
            50.0,
            200.0,
        )?);
        config.max_density = Ratio::from_percent(num_field(
            body,
            "max_density_percent",
            config.max_density.percent(),
            1.0,
            100.0,
        )?);
        config.heatsink = parse_heatsink(str_field(body, "heatsink", "two-phase")?)?;
        let req = PillarsRequest {
            design: design_field(body)?,
            config,
        };
        lookup_design(&req.design)?;
        Ok(req)
    }

    pub fn canonical(&self) -> Json {
        Json::object()
            .field("design", self.design.as_str())
            .field("tiers", self.config.tiers)
            .field("lateral_cells", self.config.lateral_cells)
            .field("t_target_celsius", self.config.t_target.celsius())
            .field("max_density_percent", self.config.max_density.percent())
            .field("heatsink", heatsink_name(&self.config.heatsink))
    }
}

/// `POST /v1/transient` — opens a stateful streaming session over one
/// stack: the embedded [`SolveRequest`] fixes the geometry and initial
/// power, and the session knobs bound how long the implicit scheme may
/// be stepped.
#[derive(Debug, Clone)]
pub struct TransientRequest {
    pub solve: SolveRequest,
    pub dt_seconds: f64,
    pub max_steps: u64,
    /// Peak-temperature threshold for in-band `thermal_runaway` alarms;
    /// `None` disables the detector.
    pub runaway_celsius: Option<f64>,
}

impl TransientRequest {
    pub fn parse(body: &Json) -> Result<Self, String> {
        let runaway_celsius = match body.get("runaway_celsius") {
            None => None,
            Some(_) => Some(num_field(body, "runaway_celsius", 0.0, 0.0, 1000.0)?),
        };
        Ok(TransientRequest {
            solve: SolveRequest::parse(body)?,
            dt_seconds: num_field(body, "dt_seconds", 5e-6, 1e-9, 1.0)?,
            max_steps: int_field(body, "max_steps", 100_000, 1, 10_000_000)? as u64,
            runaway_celsius,
        })
    }

    /// The pooled-state identity: the operator canonical (utilization is
    /// power-only and re-staged on reuse) plus the exact timestep bits —
    /// the shifted operator `C/Δt + A` bakes `Δt` in, so sessions with
    /// different timesteps must never share a pooled scheme.
    pub fn session_pool_id(&self) -> String {
        format!(
            "transient\n{}\ndt_bits={:016x}",
            self.solve.operator_canonical().pretty(),
            self.dt_seconds.to_bits()
        )
    }

    /// Shard-affinity key: sessions land beside the steady solves for
    /// the same operator, where the contexts are already warm.
    pub fn affinity_key(&self) -> u64 {
        fnv1a(
            format!(
                "solve-operator\n{}",
                self.solve.operator_canonical().pretty()
            )
            .as_bytes(),
        )
    }

    /// Build fresh session state: stack build, transient staging, and
    /// multigrid hierarchy construction.
    ///
    /// # Errors
    ///
    /// `(status, message)` — staging failures map to 500.
    pub fn build_state(&self) -> Result<TransientState, (u16, String)> {
        let design = lookup_design(&self.solve.design).map_err(|e| (500, e))?;
        let stack = stack::build(design, &self.solve.stack_config(design));
        let caps = Grid3::filled(stack.problem.dim(), capacity::SILICON);
        let run = TransientRun::new(
            &stack.problem,
            &caps,
            self.dt_seconds,
            self.solve.heatsink.ambient,
        )
        .map_err(|e| (500, format!("transient staging failed: {e}")))?
        .with_multigrid()
        .map_err(|e| (500, format!("transient staging failed: {e}")))?;
        Ok(TransientState { run, stack })
    }

    /// Re-initialise pooled state for a new session: reset the field to
    /// this request's ambient and delta-restage this request's power.
    /// The pooled scheme shares this request's operator and timestep by
    /// key construction, so only field + rhs need replaying — the
    /// trajectory is bitwise the one a freshly built state produces.
    pub fn reuse_state(&self, state: &mut TransientState) -> Result<(), (u16, String)> {
        let design = lookup_design(&self.solve.design).map_err(|e| (500, e))?;
        state.run.reset(self.solve.heatsink.ambient);
        stack::repower(&mut state.stack, design, &self.solve.stack_config(design));
        state
            .run
            .restage_power_delta(state.stack.problem.power_flat());
        Ok(())
    }

    /// Apply a mid-session power update: repaint the stack's power maps
    /// at `utilization_percent` and delta-restage the running scheme.
    pub fn set_power(
        &self,
        state: &mut TransientState,
        utilization_percent: f64,
    ) -> Result<(), (u16, String)> {
        let design = lookup_design(&self.solve.design).map_err(|e| (500, e))?;
        let mut dimmed = self.solve.clone();
        dimmed.utilization_percent = utilization_percent;
        stack::repower(&mut state.stack, design, &dimmed.stack_config(design));
        state
            .run
            .restage_power_delta(state.stack.problem.power_flat());
        Ok(())
    }
}

/// A parsed heavy-endpoint request, ready for a worker.
#[derive(Debug, Clone)]
pub enum ApiJob {
    Solve(SolveRequest),
    Flow(FlowRequest),
    Pillars(PillarsRequest),
}

impl ApiJob {
    /// Parse the body for `path`, or `None` when `path` is not a heavy
    /// endpoint.
    pub fn parse(path: &str, body: &[u8]) -> Option<Result<ApiJob, String>> {
        let endpoint = match path {
            "/v1/solve" => "solve",
            "/v1/flow" => "flow",
            "/v1/pillars" => "pillars",
            _ => return None,
        };
        let parsed = (|| {
            let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
            let json =
                tsc_bench::json::parse(text).map_err(|e| format!("invalid JSON body: {e}"))?;
            ApiJob::parse_item(endpoint, &json)
        })();
        Some(parsed)
    }

    /// Parse one already-decoded JSON object for an endpoint name —
    /// shared by the single-request paths and the batch envelope.
    ///
    /// # Errors
    ///
    /// The validation message, for a 400 (or per-item error).
    pub fn parse_item(endpoint: &str, json: &Json) -> Result<ApiJob, String> {
        match endpoint {
            "solve" => SolveRequest::parse(json).map(ApiJob::Solve),
            "flow" => FlowRequest::parse(json).map(ApiJob::Flow),
            "pillars" => PillarsRequest::parse(json).map(ApiJob::Pillars),
            other => Err(format!(
                "unknown endpoint {other:?} (solve | flow | pillars)"
            )),
        }
    }

    /// The metrics endpoint label.
    pub fn endpoint(&self) -> &'static str {
        match self {
            ApiJob::Solve(_) => "solve",
            ApiJob::Flow(_) => "flow",
            ApiJob::Pillars(_) => "pillars",
        }
    }

    /// The full canonical identity: endpoint + canonical JSON.  This is
    /// what pools store beside the hash and compare on every hit.
    pub fn canonical_id(&self) -> String {
        let canonical = match self {
            ApiJob::Solve(r) => r.canonical(),
            ApiJob::Flow(r) => r.canonical(),
            ApiJob::Pillars(r) => r.canonical(),
        };
        format!("{}\n{}", self.endpoint(), canonical.pretty())
    }

    /// The coalescing key: FNV-1a of [`ApiJob::canonical_id`].  Requests
    /// that differ only in key order or omitted defaults share a key.
    /// This hash routes; it never stands in for the identity itself.
    pub fn coalesce_key(&self) -> u64 {
        fnv1a(self.canonical_id().as_bytes())
    }

    /// The operator-affinity key: solve requests that assemble the same
    /// operator (identical geometry, utilization free) share one key, so
    /// the batch endpoint can run them through a single checked-out
    /// context and the shard router keeps a design's contexts hot on one
    /// shard.  Flow/pillars runs have no power-only delta, so their
    /// affinity is their full identity.
    pub fn affinity_key(&self) -> u64 {
        match self {
            ApiJob::Solve(r) => {
                fnv1a(format!("solve-operator\n{}", r.operator_canonical().pretty()).as_bytes())
            }
            ApiJob::Flow(_) | ApiJob::Pillars(_) => self.coalesce_key(),
        }
    }

    /// Execute against the service pools, recording pool and solver
    /// metrics.
    ///
    /// # Errors
    ///
    /// `(status, message)` — solver failures map to 500.
    pub fn execute(
        &self,
        pools: &ServicePools,
        metrics: &Metrics,
    ) -> Result<String, (u16, String)> {
        let pool = &pools.contexts;
        match self {
            ApiJob::Solve(req) => {
                // lookup_design was validated at parse time; a racing
                // registry change is impossible (it is a static).
                let design = lookup_design(&req.design).map_err(|e| (500, e))?;
                // The built stack (mesh + assembled problem) costs about
                // as much as a cold solve, so it is cached too — keyed by
                // the canonical body, which determines the build exactly.
                let stack_id = self.canonical_id();
                let stack_key = fnv1a(stack_id.as_bytes());
                let stack = match pools.stacks.take(stack_key, &stack_id) {
                    Some(stack) => {
                        metrics.stack_cache_hits.inc();
                        stack
                    }
                    None => {
                        metrics.stack_cache_misses.inc();
                        stack::build(design, &req.stack_config(design))
                    }
                };
                // Pool key is the PR-2 operator fingerprint: geometry-true,
                // so distinct requests that assemble the same operator
                // share pooled state.  The full signature rides along so a
                // 64-bit fingerprint collision degrades to a miss.
                let key = operator_fingerprint(&stack.problem);
                let ctx_key = ContextKey::Operator(OperatorSignature::of(&stack.problem));
                let result = run_pooled(pool, metrics, key, ctx_key, |ctx| {
                    let solution = ctx
                        .solve(&stack.problem, &stack::hot_loop_solver())
                        .map_err(|e| (500, format!("solve failed: {e}")))?;
                    let stack_solution = StackSolution {
                        solution,
                        layout: stack.layout.clone(),
                    };
                    Ok(render_solve(req, &stack_solution, ctx.stats()))
                });
                pools.stacks.put(stack_key, stack_id, stack);
                result
            }
            ApiJob::Flow(req) => {
                let design = lookup_design(&req.design).map_err(|e| (500, e))?;
                let key = self.coalesce_key();
                let ctx_key = ContextKey::Canonical(self.canonical_id());
                run_pooled(pool, metrics, key, ctx_key, |ctx| {
                    let result = run_flow_with(design, &req.config, ctx)
                        .map_err(|e| (500, format!("flow failed: {e}")))?;
                    Ok(Json::object()
                        .field("strategy", strategy_name(result.strategy))
                        .field("tiers", result.tiers)
                        .field("junction_celsius", result.junction_temperature.celsius())
                        .field(
                            "footprint_penalty_percent",
                            result.footprint_penalty.percent(),
                        )
                        .field("delay_penalty_percent", result.delay_penalty.percent())
                        .field("pillar_density_percent", result.pillar_density.percent())
                        .field("fill_slack_percent", result.fill_slack.percent())
                        .field("meets_limit", result.meets_limit)
                        .pretty())
                })
            }
            ApiJob::Pillars(req) => {
                let design = lookup_design(&req.design).map_err(|e| (500, e))?;
                let key = self.coalesce_key();
                let ctx_key = ContextKey::Canonical(self.canonical_id());
                run_pooled(pool, metrics, key, ctx_key, |ctx| {
                    let plan = pillars::place_with(design, &req.config, ctx)
                        .map_err(|e| (500, format!("placement failed: {e}")))?;
                    Ok(match plan {
                        Some(plan) => Json::object()
                            .field("found", true)
                            .field("pillars", plan.positions.len())
                            .field("replicas", plan.replicas)
                            .field("area_penalty_percent", plan.area_penalty.percent())
                            .pretty(),
                        None => Json::object()
                            .field("found", false)
                            .field("reason", "max_density cannot meet the temperature target")
                            .pretty(),
                    })
                })
            }
        }
    }
}

/// Largest number of items one `POST /v1/batch` envelope may carry.
pub const MAX_BATCH_ITEMS: usize = 256;

/// A parsed `POST /v1/batch` envelope.  Envelope-level problems (not
/// JSON, missing/empty/oversized `items`) fail the whole request;
/// item-level validation failures are carried per item so one bad item
/// never fails the batch.
pub struct BatchRequest {
    pub items: Vec<Result<ApiJob, String>>,
}

impl BatchRequest {
    /// Parse the envelope: `{"items": [{...}, ...]}`, each item an
    /// object for one heavy endpoint, selected by its optional
    /// `"endpoint"` field (`solve` default, or `flow` / `pillars`).
    ///
    /// # Errors
    ///
    /// Envelope-level validation message, for a 400.
    pub fn parse(body: &[u8]) -> Result<BatchRequest, String> {
        let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
        let json = tsc_bench::json::parse(text).map_err(|e| format!("invalid JSON body: {e}"))?;
        let items = json
            .get("items")
            .ok_or_else(|| "missing required field \"items\"".to_string())?
            .as_array()
            .ok_or_else(|| "items must be an array".to_string())?;
        if items.is_empty() {
            return Err("items must not be empty".to_string());
        }
        if items.len() > MAX_BATCH_ITEMS {
            return Err(format!(
                "too many items: {} (max {MAX_BATCH_ITEMS})",
                items.len()
            ));
        }
        let items = items
            .iter()
            .map(|item| {
                let endpoint = str_field(item, "endpoint", "solve")?;
                ApiJob::parse_item(endpoint, item)
            })
            .collect();
        Ok(BatchRequest { items })
    }
}

/// Run one job with a per-item panic boundary: a panicking solve becomes
/// a per-item 500 instead of killing the worker (or the batch).
pub fn catch_execute(
    job: &ApiJob,
    pools: &ServicePools,
    metrics: &Metrics,
) -> Result<String, (u16, String)> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| job.execute(pools, metrics))) {
        Ok(result) => result,
        Err(_) => {
            metrics.worker_panics.inc();
            Err((500, "internal error: worker panicked".to_string()))
        }
    }
}

/// Execute a group of jobs that share an [`ApiJob::affinity_key`],
/// returning per-item results in order.
///
/// Solve groups of two or more take the power-delta fast path: the
/// stack is built (or taken from cache) once, the `SolveContext` is
/// checked out once, and every item after the first only *repaints the
/// power maps* ([`stack::repower`]) before re-solving — an operator
/// reuse plus warm start instead of a rebuild plus cold solve.  Mixed
/// or non-solve groups (and any item after an in-group panic) fall back
/// to independent execution.  Every item has its own panic boundary.
pub fn execute_group(
    jobs: &[&ApiJob],
    pools: &ServicePools,
    metrics: &Metrics,
) -> Vec<Result<String, (u16, String)>> {
    let solves: Option<Vec<&SolveRequest>> = jobs
        .iter()
        .map(|job| match job {
            ApiJob::Solve(r) => Some(r),
            _ => None,
        })
        .collect();
    let groupable = jobs.len() >= 2
        && solves.is_some()
        && jobs
            .windows(2)
            .all(|w| w[0].affinity_key() == w[1].affinity_key());
    let Some(reqs) = solves.filter(|_| groupable) else {
        return jobs
            .iter()
            .map(|job| catch_execute(job, pools, metrics))
            .collect();
    };

    execute_solve_group(jobs, &reqs, pools, metrics)
}

fn execute_solve_group(
    jobs: &[&ApiJob],
    reqs: &[&SolveRequest],
    pools: &ServicePools,
    metrics: &Metrics,
) -> Vec<Result<String, (u16, String)>> {
    metrics.batch_groups_total.inc();
    let design = match lookup_design(&reqs[0].design) {
        Ok(design) => design,
        // Unreachable (validated at parse), but never panic a worker.
        Err(e) => return jobs.iter().map(|_| Err((500, e.clone()))).collect(),
    };

    // One stack for the whole group, keyed (initially) by the first
    // item's identity; one context checkout for the whole group.
    let stack_id = jobs[0].canonical_id();
    let stack_key = fnv1a(stack_id.as_bytes());
    let built = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        match pools.stacks.take(stack_key, &stack_id) {
            Some(stack) => {
                metrics.stack_cache_hits.inc();
                stack
            }
            None => {
                metrics.stack_cache_misses.inc();
                stack::build(design, &reqs[0].stack_config(design))
            }
        }
    }));
    let Ok(mut stack) = built else {
        metrics.worker_panics.inc();
        return jobs
            .iter()
            .map(|_| Err((500, "internal error: worker panicked".to_string())))
            .collect();
    };

    let key = operator_fingerprint(&stack.problem);
    let ctx_key = ContextKey::Operator(OperatorSignature::of(&stack.problem));
    let (mut ctx, outcome) = pools.contexts.checkout(key, &ctx_key);
    match outcome {
        Checkout::Hit => metrics.pool_hits.inc(),
        Checkout::Miss => metrics.pool_misses.inc(),
    }
    let before = ctx.stats();

    let mut results = Vec::with_capacity(jobs.len());
    // Identity of the power state currently painted on `stack` — the
    // key it must be re-cached under.
    let mut cached_id = stack_id;
    let mut poisoned = false;
    let mut superposed = false;
    // Whether the planning pass below repainted the stack, so the
    // fallback loop can no longer trust item 0's cached power state.
    let mut repainted = false;

    // Affine fast path: within a group the operator is fixed (only
    // utilization differs, and pillar placement ignores utilization),
    // and power density is affine in utilization — so the group's power
    // vectors usually sit on one line.  Paint each item's power (cheap:
    // no mesh or operator work), fit the family, and when membership
    // verifies elementwise, price the whole sweep with the two extreme
    // solves plus exact superposition of everything in between.
    if jobs.len() >= 3 {
        let planned = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut powers = Vec::with_capacity(reqs.len());
            for req in reqs {
                stack::repower(&mut stack, design, &req.stack_config(design));
                powers.push(stack.problem.power_flat().to_vec());
            }
            tsc_thermal::affine_family(&powers)
        }));
        repainted = true;
        match planned {
            Ok(Some(family)) => {
                let anchors = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                    || -> Result<(Solution, Solution), (u16, String)> {
                        let mut solve_anchor = |stack: &mut _, which: usize| {
                            stack::repower(stack, design, &reqs[which].stack_config(design));
                            ctx.solve(&stack.problem, &stack::hot_loop_solver())
                                .map_err(|e| (500, format!("solve failed: {e}")))
                        };
                        let low = solve_anchor(&mut stack, family.anchor_low)?;
                        let high = solve_anchor(&mut stack, family.anchor_high)?;
                        Ok((low, high))
                    },
                ));
                match anchors {
                    Ok(Ok((low, high))) => {
                        metrics.backend_solves_total.add(2);
                        // The high anchor rides the low anchor's operator
                        // and warm start, like any power-delta item.
                        metrics.batch_group_warm_items_total.inc();
                        cached_id = jobs[family.anchor_high].canonical_id();
                        for (i, req) in reqs.iter().enumerate() {
                            let solution = if i == family.anchor_low {
                                low.clone()
                            } else if i == family.anchor_high {
                                high.clone()
                            } else {
                                metrics.batch_affine_rescales_total.inc();
                                tsc_thermal::blend_solutions(&low, &high, family.alphas[i])
                            };
                            let stack_solution = StackSolution {
                                solution,
                                layout: stack.layout.clone(),
                            };
                            results.push(Ok(render_solve(req, &stack_solution, ctx.stats())));
                        }
                        superposed = true;
                    }
                    // Anchor solve error: stack and context are intact;
                    // fall through and let per-item solves report it.
                    Ok(Err(_)) => {}
                    Err(_) => {
                        metrics.worker_panics.inc();
                        poisoned = true;
                    }
                }
            }
            // Not an affine family — per-item solves below.
            Ok(None) => {}
            Err(_) => {
                metrics.worker_panics.inc();
                poisoned = true;
            }
        }
    }

    for (i, (job, req)) in jobs.iter().zip(reqs).enumerate() {
        if superposed {
            break;
        }
        if poisoned {
            // A panic left the shared stack/context in an unknown state;
            // finish the group on the independent path.
            results.push(catch_execute(job, pools, metrics));
            continue;
        }
        let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
            || -> Result<String, (u16, String)> {
                if i > 0 || repainted {
                    stack::repower(&mut stack, design, &req.stack_config(design));
                }
                let solution = ctx
                    .solve(&stack.problem, &stack::hot_loop_solver())
                    .map_err(|e| (500, format!("solve failed: {e}")))?;
                let stack_solution = StackSolution {
                    solution,
                    layout: stack.layout.clone(),
                };
                Ok(render_solve(req, &stack_solution, ctx.stats()))
            },
        ));
        match attempt {
            Ok(result) => {
                metrics.backend_solves_total.inc();
                if i > 0 {
                    metrics.batch_group_warm_items_total.inc();
                }
                cached_id = job.canonical_id();
                results.push(result);
            }
            Err(_) => {
                metrics.worker_panics.inc();
                results.push(Err((500, "internal error: worker panicked".to_string())));
                poisoned = true;
            }
        }
    }

    accumulate_context_delta(metrics, &before, &ctx.stats());
    if !poisoned {
        let evicted = pools.contexts.checkin(key, ctx_key, ctx);
        metrics.pool_evictions.add(evicted as u64);
        pools
            .stacks
            .put(fnv1a(cached_id.as_bytes()), cached_id, stack);
    }
    results
}

/// Check a context out of the pool, run `body`, accumulate the context's
/// stat deltas into the metrics rollup, and check the context back in.
fn run_pooled<F>(
    pool: &ContextPool,
    metrics: &Metrics,
    key: u64,
    ctx_key: ContextKey,
    body: F,
) -> Result<String, (u16, String)>
where
    F: FnOnce(&mut SolveContext) -> Result<String, (u16, String)>,
{
    let (mut ctx, outcome) = pool.checkout(key, &ctx_key);
    match outcome {
        Checkout::Hit => metrics.pool_hits.inc(),
        Checkout::Miss => metrics.pool_misses.inc(),
    }
    let before = ctx.stats();
    let result = body(&mut ctx);
    accumulate_context_delta(metrics, &before, &ctx.stats());
    metrics.backend_solves_total.inc();
    // Check the context back in even on failure: the context revalidates
    // itself, so a failed solve cannot poison later requests.
    let evicted = pool.checkin(key, ctx_key, ctx);
    metrics.pool_evictions.add(evicted as u64);
    result
}

fn accumulate_context_delta(metrics: &Metrics, before: &ContextStats, after: &ContextStats) {
    let d = |a: usize, b: usize| (a.saturating_sub(b)) as u64;
    metrics
        .solver_iterations
        .add(d(after.total_iterations, before.total_iterations));
    metrics
        .solver_matvecs
        .add(d(after.total_matvecs, before.total_matvecs));
    metrics
        .solver_cycles
        .add(d(after.total_cycles, before.total_cycles));
    metrics
        .ctx_operator_reuses
        .add(d(after.operator_reuses, before.operator_reuses));
    metrics
        .ctx_assemblies
        .add(d(after.assemblies, before.assemblies));
    metrics
        .ctx_hierarchy_builds
        .add(d(after.hierarchy_builds, before.hierarchy_builds));
    metrics
        .ctx_warm_starts
        .add(d(after.warm_starts, before.warm_starts));
}

fn render_solve(req: &SolveRequest, solved: &StackSolution, totals: ContextStats) -> String {
    let profile: Vec<Json> = solved
        .tier_profile()
        .iter()
        .map(|t| Json::from(t.celsius()))
        .collect();
    let stats = &solved.solution.stats;
    Json::object()
        .field("design", req.design.as_str())
        .field("tiers", req.tiers)
        .field("strategy", strategy_name(req.strategy))
        .field("junction_celsius", solved.junction_temperature().celsius())
        .field("tier_profile_celsius", profile)
        .field(
            "solver",
            Json::object()
                .field("iterations", stats.iterations)
                .field("matvecs", stats.matvecs)
                .field("cycles", stats.cycles)
                .field("residual", stats.residual),
        )
        .field(
            "context",
            Json::object()
                .field("solves", totals.solves)
                .field("assemblies", totals.assemblies)
                .field("operator_reuses", totals.operator_reuses)
                .field("warm_starts", totals.warm_starts),
        )
        .pretty()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_json(text: &str) -> Json {
        tsc_bench::json::parse(text).expect("test JSON must parse")
    }

    #[test]
    fn registry_lists_known_designs() {
        let names: Vec<&str> = registry().iter().map(|(n, _)| *n).collect();
        assert!(names.contains(&"gemmini"));
        assert!(names.contains(&"rocket"));
        let body = designs_body();
        let parsed = parse_json(&body);
        let designs = parsed.get("designs").and_then(Json::as_array).unwrap();
        assert_eq!(designs.len(), registry().len());
    }

    #[test]
    fn solve_request_applies_defaults_and_validates() {
        let req = SolveRequest::parse(&parse_json(r#"{"design": "gemmini"}"#)).unwrap();
        assert_eq!(req.tiers, 8);
        assert_eq!(req.lateral_cells, 12);
        assert_eq!(req.strategy, CoolingStrategy::Scaffolding);

        for bad in [
            r#"{}"#,
            r#"{"design": "nope"}"#,
            r#"{"design": "gemmini", "tiers": 0}"#,
            r#"{"design": "gemmini", "tiers": 100}"#,
            r#"{"design": "gemmini", "tiers": 2.5}"#,
            r#"{"design": "gemmini", "strategy": "magic"}"#,
            r#"{"design": "gemmini", "heatsink": "water"}"#,
            r#"{"design": "gemmini", "utilization_percent": -3}"#,
        ] {
            assert!(
                SolveRequest::parse(&parse_json(bad)).is_err(),
                "input {bad}"
            );
        }
    }

    #[test]
    fn coalesce_key_ignores_field_order_and_explicit_defaults() {
        let a = ApiJob::parse("/v1/solve", br#"{"design": "gemmini"}"#)
            .unwrap()
            .unwrap();
        let b = ApiJob::parse(
            "/v1/solve",
            br#"{"tiers": 8, "design": "gemmini", "strategy": "scaffolding"}"#,
        )
        .unwrap()
        .unwrap();
        let c = ApiJob::parse("/v1/solve", br#"{"design": "gemmini", "tiers": 6}"#)
            .unwrap()
            .unwrap();
        assert_eq!(a.coalesce_key(), b.coalesce_key());
        assert_ne!(a.coalesce_key(), c.coalesce_key());
        // Same body on a different endpoint must not collide.
        let flow = ApiJob::parse("/v1/flow", br#"{"design": "gemmini"}"#)
            .unwrap()
            .unwrap();
        assert_ne!(a.coalesce_key(), flow.coalesce_key());
    }

    #[test]
    fn unknown_paths_are_not_jobs() {
        assert!(ApiJob::parse("/v1/nope", b"{}").is_none());
        assert!(ApiJob::parse("/metrics", b"{}").is_none());
    }

    #[test]
    fn execute_solve_returns_parseable_body_and_updates_pool_metrics() {
        let job = ApiJob::parse(
            "/v1/solve",
            br#"{"design": "gemmini-memory", "tiers": 2, "lateral_cells": 6}"#,
        )
        .unwrap()
        .unwrap();
        let pools = ServicePools::new(4);
        let metrics = Metrics::default();
        let body = job.execute(&pools, &metrics).expect("solve should succeed");
        let parsed = parse_json(&body);
        let junction = parsed
            .get("junction_celsius")
            .and_then(Json::as_f64)
            .unwrap();
        assert!(junction > 20.0 && junction < 400.0, "junction {junction}");
        assert_eq!(
            parsed
                .get("tier_profile_celsius")
                .and_then(Json::as_array)
                .unwrap()
                .len(),
            2
        );
        assert_eq!(metrics.pool_misses.get(), 1);
        assert_eq!(metrics.pool_hits.get(), 0);
        assert_eq!(metrics.stack_cache_misses.get(), 1);
        assert_eq!(metrics.backend_solves_total.get(), 1);
        assert!(metrics.ctx_assemblies.get() >= 1);

        // A second identical execute hits both pool levels and reuses the
        // operator.
        let _ = job.execute(&pools, &metrics).expect("second solve");
        assert_eq!(metrics.pool_hits.get(), 1);
        assert_eq!(metrics.stack_cache_hits.get(), 1);
        assert!(metrics.ctx_operator_reuses.get() >= 1);
    }

    #[test]
    fn affinity_key_ignores_utilization_but_nothing_else() {
        let base = ApiJob::parse(
            "/v1/solve",
            br#"{"design": "gemmini", "utilization_percent": 100}"#,
        )
        .unwrap()
        .unwrap();
        let dimmed = ApiJob::parse(
            "/v1/solve",
            br#"{"design": "gemmini", "utilization_percent": 55}"#,
        )
        .unwrap()
        .unwrap();
        let resized = ApiJob::parse(
            "/v1/solve",
            br#"{"design": "gemmini", "lateral_cells": 16}"#,
        )
        .unwrap()
        .unwrap();
        // Power-only variants share an operator; geometry changes do not.
        assert_ne!(base.coalesce_key(), dimmed.coalesce_key());
        assert_eq!(base.affinity_key(), dimmed.affinity_key());
        assert_ne!(base.affinity_key(), resized.affinity_key());
        // Flow jobs have no power-only delta: affinity is full identity.
        let flow = ApiJob::parse("/v1/flow", br#"{"design": "gemmini"}"#)
            .unwrap()
            .unwrap();
        assert_eq!(flow.affinity_key(), flow.coalesce_key());
    }

    #[test]
    fn transient_request_keys_sessions_by_operator_and_dt() {
        let req = TransientRequest::parse(&parse_json(r#"{"design": "gemmini"}"#)).unwrap();
        assert_eq!(req.dt_seconds, 5e-6);
        assert_eq!(req.max_steps, 100_000);
        assert!(req.runaway_celsius.is_none());
        // Utilization is power-only: same pooled scheme, restaged on reuse.
        let dimmed = TransientRequest::parse(&parse_json(
            r#"{"design": "gemmini", "utilization_percent": 50}"#,
        ))
        .unwrap();
        assert_eq!(req.session_pool_id(), dimmed.session_pool_id());
        assert_eq!(req.affinity_key(), dimmed.affinity_key());
        // The timestep is baked into the shifted operator: different dt,
        // different pooled state — but the shard affinity still follows
        // the operator geometry.
        let slower =
            TransientRequest::parse(&parse_json(r#"{"design": "gemmini", "dt_seconds": 1e-5}"#))
                .unwrap();
        assert_ne!(req.session_pool_id(), slower.session_pool_id());
        assert_eq!(req.affinity_key(), slower.affinity_key());
        // Transient sessions share the steady-solve affinity space.
        let steady = ApiJob::parse("/v1/solve", br#"{"design": "gemmini"}"#)
            .unwrap()
            .unwrap();
        assert_eq!(req.affinity_key(), steady.affinity_key());

        for bad in [
            r#"{"design": "gemmini", "dt_seconds": 0}"#,
            r#"{"design": "gemmini", "max_steps": 0}"#,
            r#"{"design": "gemmini", "runaway_celsius": -4}"#,
            r#"{"design": "nope"}"#,
        ] {
            assert!(TransientRequest::parse(&parse_json(bad)).is_err(), "{bad}");
        }
    }

    #[test]
    fn batch_parse_separates_envelope_and_item_errors() {
        // Envelope-level failures reject the whole request.
        assert!(BatchRequest::parse(b"not json").is_err());
        assert!(BatchRequest::parse(br#"{"no_items": 1}"#).is_err());
        assert!(BatchRequest::parse(br#"{"items": 3}"#).is_err());
        assert!(BatchRequest::parse(br#"{"items": []}"#).is_err());
        let oversized = format!(
            r#"{{"items": [{}]}}"#,
            vec![r#"{"design": "gemmini"}"#; MAX_BATCH_ITEMS + 1].join(",")
        );
        assert!(BatchRequest::parse(oversized.as_bytes()).is_err());

        // Item-level failures are carried per item, in order.
        let batch = BatchRequest::parse(
            br#"{"items": [
                {"design": "gemmini"},
                {"design": "nope"},
                {"endpoint": "flow", "design": "gemmini"},
                {"endpoint": "teleport"}
            ]}"#,
        )
        .expect("envelope is valid");
        assert_eq!(batch.items.len(), 4);
        assert!(batch.items[0].is_ok());
        assert!(batch.items[1].is_err());
        assert!(matches!(batch.items[2], Ok(ApiJob::Flow(_))));
        assert!(batch.items[3]
            .as_ref()
            .is_err_and(|e| e.contains("unknown endpoint")));
    }

    #[test]
    fn execute_group_runs_warm_deltas_and_isolates_failures() {
        let utils = [100.0_f64, 70.0, 40.0];
        let jobs: Vec<ApiJob> = utils
            .iter()
            .map(|u| {
                ApiJob::parse(
                    "/v1/solve",
                    format!(
                        r#"{{"design": "gemmini-memory", "tiers": 2, "lateral_cells": 6,
                            "utilization_percent": {u}}}"#
                    )
                    .as_bytes(),
                )
                .unwrap()
                .unwrap()
            })
            .collect();
        let refs: Vec<&ApiJob> = jobs.iter().collect();
        assert!(refs
            .windows(2)
            .all(|w| w[0].affinity_key() == w[1].affinity_key()));

        let pools = ServicePools::new(4);
        let metrics = Metrics::default();
        let results = execute_group(&refs, &pools, &metrics);
        assert_eq!(results.len(), 3);
        for (i, result) in results.iter().enumerate() {
            let body = result
                .as_ref()
                .unwrap_or_else(|e| panic!("item {i}: {e:?}"));
            let junction = parse_json(body)
                .get("junction_celsius")
                .and_then(Json::as_f64)
                .unwrap();
            assert!(junction > 20.0 && junction < 400.0, "item {i}: {junction}");
        }
        // One stack build, one context.  A pure utilization sweep is an
        // affine power family: two anchor solves (u=100 and u=40, the
        // high anchor a repowered warm delta) and the middle item
        // superposed exactly, no third solver run.
        assert_eq!(metrics.batch_groups_total.get(), 1);
        assert_eq!(metrics.batch_group_warm_items_total.get(), 1);
        assert_eq!(metrics.batch_affine_rescales_total.get(), 1);
        assert_eq!(metrics.stack_cache_misses.get(), 1);
        assert_eq!(metrics.pool_misses.get(), 1);
        assert_eq!(metrics.backend_solves_total.get(), 2);

        // Lower utilization must strictly reduce the junction temperature —
        // each item really answers with its own power map (anchors by
        // direct solve, the middle item by superposition).
        let temps: Vec<f64> = results
            .iter()
            .map(|r| {
                parse_json(r.as_ref().unwrap())
                    .get("junction_celsius")
                    .and_then(Json::as_f64)
                    .unwrap()
            })
            .collect();
        assert!(
            temps[0] > temps[1] && temps[1] > temps[2],
            "temps {temps:?}"
        );

        // The group's context and stack went back to the pools (the
        // stack keyed by the last-painted anchor): a follow-up solve of
        // the high anchor is a pure hit.
        let _ = jobs[0].execute(&pools, &metrics).expect("follow-up");
        assert_eq!(metrics.pool_hits.get(), 1);
        assert_eq!(metrics.stack_cache_hits.get(), 1);

        // A mixed group (solve + flow) is not groupable and falls back to
        // independent execution, still one result per job, in order.
        let flow = ApiJob::parse("/v1/flow", br#"{"design": "gemmini", "tiers": 2}"#)
            .unwrap()
            .unwrap();
        let mixed: Vec<&ApiJob> = vec![&jobs[0], &flow];
        let mixed_results = execute_group(&mixed, &pools, &metrics);
        assert_eq!(mixed_results.len(), 2);
        assert!(mixed_results.iter().all(Result::is_ok));
        assert_eq!(
            metrics.batch_groups_total.get(),
            1,
            "ungroupable jobs bypass the grouped path"
        );
    }
}
