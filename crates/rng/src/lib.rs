//! Small deterministic pseudo-random number generator.
//!
//! The workspace needs randomness in two places: the simulated-annealing
//! floorplanner (`tsc-phydes`) and the randomized property tests that
//! fuzz solver invariants. Both need *reproducible* streams far more than
//! they need cryptographic quality, so this crate provides a SplitMix64
//! generator — a tiny, well-studied mixer with a full 2^64 period over
//! its counter, no bad seeds (even 0), and exact cross-platform
//! determinism. Keeping it in-repo also keeps the build hermetic: no
//! network access is needed to compile the workspace.
//!
//! ```
//! use tsc_rng::Rng64;
//! let mut rng = Rng64::seed_from_u64(42);
//! let a = rng.gen_range(0..10);
//! assert!(a < 10);
//! let f = rng.gen_f64();
//! assert!((0.0..1.0).contains(&f));
//! ```

// No crate outside tsc-thermal may contain `unsafe` (enforced
// statically here and by `cargo run -p tsc-analyze`).
#![forbid(unsafe_code)]

use core::ops::Range;

/// SplitMix64 pseudo-random generator.
///
/// Deterministic for a given seed, `Send`, and cheap to clone (16 bytes
/// of state would be xoshiro; SplitMix64 carries just 8).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Seeds the generator. Every seed, including zero, is valid.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The raw generator word. Together with [`Rng64::from_state`] this
    /// lets checkpointing code persist a stream mid-sequence and resume
    /// it bitwise-identically.
    #[must_use]
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Rebuilds a generator at an exact stream position captured by
    /// [`Rng64::state`]. Unlike [`Rng64::seed_from_u64`] this is a
    /// resume, not a fresh seed — the distinction only matters for
    /// reading checkpoint code.
    #[must_use]
    pub fn from_state(state: u64) -> Self {
        Self { state }
    }

    /// Next raw 64-bit output (SplitMix64 step).
    #[allow(clippy::should_implement_trait)]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)` with 53 random mantissa bits.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform boolean.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Uniform `usize` in `[range.start, range.end)`.
    ///
    /// Uses Lemire's multiply-shift reduction; the modulo bias is below
    /// 2^-32 for any range this workspace uses, which is negligible next
    /// to the sampling noise of the tests that call it.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range(&mut self, range: Range<usize>) -> usize {
        assert!(
            range.start < range.end,
            "gen_range requires a non-empty range"
        );
        let span = (range.end - range.start) as u64;
        let hi = ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64;
        range.start + hi as usize
    }

    /// Uniform `f64` in `[range.start, range.end)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or either bound is non-finite.
    pub fn gen_range_f64(&mut self, range: Range<f64>) -> f64 {
        assert!(
            range.start.is_finite() && range.end.is_finite() && range.start < range.end,
            "gen_range_f64 requires a finite non-empty range"
        );
        range.start + self.gen_f64() * (range.end - range.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng64::seed_from_u64(7);
        let mut b = Rng64::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng64::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut rng = Rng64::seed_from_u64(0);
        for _ in 0..10_000 {
            let f = rng.gen_f64();
            assert!((0.0..1.0).contains(&f), "{f} out of [0,1)");
        }
    }

    #[test]
    fn ranges_hit_all_values() {
        let mut rng = Rng64::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..5)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all range values reachable");
    }

    #[test]
    fn float_range_respects_bounds() {
        let mut rng = Rng64::seed_from_u64(11);
        for _ in 0..1_000 {
            let v = rng.gen_range_f64(-3.0..7.5);
            assert!((-3.0..7.5).contains(&v));
        }
    }

    #[test]
    fn mean_is_roughly_centred() {
        let mut rng = Rng64::seed_from_u64(99);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen_f64()).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }

    #[test]
    fn state_roundtrip_resumes_the_stream() {
        let mut a = Rng64::seed_from_u64(19);
        for _ in 0..13 {
            let _ = a.next_u64();
        }
        let mut b = Rng64::from_state(a.state());
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    #[should_panic(expected = "non-empty range")]
    fn empty_range_panics() {
        let mut rng = Rng64::seed_from_u64(1);
        let _ = rng.gen_range(3..3);
    }
}
