//! Mixed-precision solver kernels: an f32 multigrid-preconditioned CG
//! wrapped in f64 iterative refinement.
//!
//! The stencil solvers are memory-bandwidth-bound, so halving the bytes
//! per cell roughly halves the wall clock — but a raw f32 solve cannot
//! reach the 1e-11 relative tolerance the golden flows pin. The classic
//! fix is iterative refinement: the **outer** loop computes the true
//! residual `r = b − A·x` in f64, normalises it to unit norm (so the
//! inner problem always sits in the well-scaled centre of the f32
//! range), solves the correction equation `A·d ≈ r/‖r‖` entirely in f32
//! with MG-PCG to a loose inner tolerance, and accumulates
//! `x += ‖r‖·d` back in f64. Every convergence decision is made on the
//! f64 residual, so the reported tolerance is honest; each pass
//! contracts the residual by roughly the inner tolerance, so a handful
//! of passes reach 1e-11. If a pass fails to contract (f32 has hit its
//! accuracy floor on a pathological operator) the solve falls back to
//! the pure-f64 multigrid path *continuing from the current iterate*,
//! so the mixed path is never less robust than f64 — only faster.
//!
//! The f32 operator is stored structure-of-arrays ([`OpF32`]) and its
//! matvec is written as branch-free per-row passes the autovectorizer
//! handles well, cache-blocked into j-stripes sized so three slabs of a
//! stripe's working set fit in L2 (the stripe is swept through all z
//! before moving on, so each slab's rows are reused from cache as the
//! `k−1`/`k`/`k+1` neighbour of three consecutive sweeps).
//!
//! Determinism: the inner f32 kernels use the same per-slab ordered
//! reductions and colour-disjoint (or reduction-free Chebyshev) writes
//! as the f64 path, so the mixed path is also bitwise independent of
//! the thread count — verified by the race-check harness.

use crate::engine::ExecPlan;
use crate::multigrid::{
    coarsen, coarsen_factors_with, prolong_add, restrict, DenseCholesky, Factors, MgHierarchy,
    MgWorkspace, Smoother,
};
use crate::solver::{
    norm, ordered_sum, slab_dot_wide_parts, Assembled, CgParams, Precision, Preconditioner,
    SolveError, SolverStats,
};
use std::time::Instant;
use tsc_geometry::Dim3;

/// Outer refinement passes before the solve is declared stuck. Each
/// pass contracts the residual by roughly [`INNER_TOL`], so a healthy
/// solve needs ~3; the budget only exists to bound pathological cases
/// (which fall back to f64 long before exhausting it).
const MAX_REFINE: usize = 60;

/// Relative tolerance of the inner f32 correction solve. The *outer*
/// contraction an f32 correction can deliver is floored at roughly
/// `κ(A)·ε_f32` (≈ 1e-2 on the high-contrast production stacks)
/// regardless of how far the inner residual is pushed below it, so the
/// inner solve stops at that floor — solving deeper burns iterations
/// without improving the outer trajectory. The refinement loop simply
/// runs more cheap passes; total inner iterations stay close to what
/// one f64 solve would need.
const INNER_TOL: f64 = 1e-2;

/// Iteration budget of one inner f32 MG-PCG solve. MG-PCG reaches 1e-5
/// in well under 20 iterations on every mesh in the test fleet; the cap
/// converts an inner stall into a prompt f64 fallback.
const INNER_MAX_ITER: usize = 200;

/// An outer pass must contract the f64 residual to at most this factor,
/// or the mixed path is declared stalled and falls back to f64.
const STALL_FACTOR: f64 = 0.25;

/// L2 budget per j-stripe of the blocked matvec, in bytes. Set below
/// typical per-core L2 (512 KiB – 1.25 MiB) to leave room for the
/// neighbouring slabs' stripes that the z-sweep reuses.
const L2_TARGET_BYTES: usize = 256 * 1024;

/// f32 streams touched per cell of the blocked matvec (x and its six
/// neighbour rows alias into three slab stripes: out, x×3, diag, gx,
/// gy×2, gz×2 ≈ 9 rows of 4 bytes).
const STREAM_BYTES_PER_CELL: usize = 9 * 4;

/// Lateral-join threshold of the shadow hierarchy's coarsening rule
/// (the f64 hierarchy uses 0.25). The strict rule semicoarsens z-only
/// through every tier of a 3D stack — grid complexity ≈ 2× the fine
/// mesh. The shadow hierarchy instead coarsens **all** directions at
/// every level (threshold 0), which cuts grid complexity to ≈ 1.15× —
/// affordable only because its smoother is a z-line solve
/// ([`LineZ`]): point smoothers cannot damp the laterally-oscillatory
/// z-smooth modes that full coarsening stops representing, but a line
/// smoother annihilates the entire z-coupled block exactly.
const F32_SEMI_THRESHOLD: f64 = 0.0;

/// Coarsening of the shadow hierarchy stops at or below this many
/// cells (dense f64 Cholesky takes over).
const F32_COARSE_MAX: usize = 512;

/// Damping of the z-line Jacobi smoother. The line solve absorbs the
/// dominant z coupling exactly, leaving a weakly coupled lateral
/// Jacobi iteration, which is well damped just under 1.
const LINE_OMEGA: f32 = 0.9;

/// Structure-of-arrays f32 copy of one [`Assembled`] operator level.
///
/// Same face-conductance indexing as [`Assembled`] (`gx` is
/// `(nx−1)·ny·nz`, x-major; `gy` is `nx·(ny−1)·nz`; `gz` is
/// `nx·ny·(nz−1)`), plus the precomputed reciprocal diagonal the
/// smoothers multiply by instead of dividing.
#[derive(Debug, Clone)]
pub(crate) struct OpF32 {
    dim: Dim3,
    gx: Vec<f32>,
    gy: Vec<f32>,
    gz: Vec<f32>,
    diag: Vec<f32>,
    inv_diag: Vec<f32>,
    /// j-stripe height of the cache-blocked matvec.
    tile_j: usize,
}

fn narrow(v: &[f64]) -> Vec<f32> {
    v.iter().map(|&x| x as f32).collect()
}

impl OpF32 {
    pub(crate) fn from_assembled(op: &Assembled) -> Self {
        let dim = op.dim;
        let row_bytes = dim.nx * STREAM_BYTES_PER_CELL;
        let tile_j = (L2_TARGET_BYTES / row_bytes.max(1))
            .max(8)
            .min(dim.ny.max(1));
        Self {
            dim,
            gx: narrow(&op.gx),
            gy: narrow(&op.gy),
            gz: narrow(&op.gz),
            diag: narrow(&op.diag),
            inv_diag: op.diag.iter().map(|&d| (1.0 / d) as f32).collect(),
            tile_j,
        }
    }

    /// `out[c − range.start] = (A·x)[c]` for `c` in the slab-aligned
    /// `range`, as stripe-blocked branch-free row passes: for each
    /// j-stripe the sweep runs through all z before the next stripe, so
    /// the three slab-stripes a row reads stay resident in L2, and each
    /// pass is a straight-line zip over `nx` the autovectorizer turns
    /// into packed f32 arithmetic. Each output element is accumulated in
    /// a fixed pass order — deterministic regardless of banding.
    pub(crate) fn matvec_range(&self, x: &[f32], out: &mut [f32], range: std::ops::Range<usize>) {
        let (nx, ny, nz) = (self.dim.nx, self.dim.ny, self.dim.nz);
        let slab = nx * ny;
        debug_assert_eq!(range.start % slab, 0, "bands must be slab-aligned");
        debug_assert_eq!(range.end % slab, 0, "bands must be slab-aligned");
        let (k_lo, k_hi) = (range.start / slab, range.end / slab);
        for jt in (0..ny).step_by(self.tile_j) {
            let j_end = (jt + self.tile_j).min(ny);
            for k in k_lo..k_hi {
                for j in jt..j_end {
                    let row = (k * ny + j) * nx;
                    let or = &mut out[row - range.start..row - range.start + nx];
                    let xr = &x[row..row + nx];
                    let dr = &self.diag[row..row + nx];
                    for ((o, d), xv) in or.iter_mut().zip(dr).zip(xr) {
                        *o = d * xv;
                    }
                    if nx > 1 {
                        let gxr = &self.gx[(k * ny + j) * (nx - 1)..][..nx - 1];
                        for ((o, g), xn) in or[..nx - 1].iter_mut().zip(gxr).zip(&xr[1..]) {
                            *o -= g * xn;
                        }
                        for ((o, g), xp) in or[1..].iter_mut().zip(gxr).zip(xr) {
                            *o -= g * xp;
                        }
                    }
                    if j + 1 < ny {
                        let gyr = &self.gy[(k * (ny - 1) + j) * nx..][..nx];
                        let xn = &x[row + nx..][..nx];
                        for ((o, g), xv) in or.iter_mut().zip(gyr).zip(xn) {
                            *o -= g * xv;
                        }
                    }
                    if j > 0 {
                        let gyr = &self.gy[(k * (ny - 1) + j - 1) * nx..][..nx];
                        let xp = &x[row - nx..][..nx];
                        for ((o, g), xv) in or.iter_mut().zip(gyr).zip(xp) {
                            *o -= g * xv;
                        }
                    }
                    if k + 1 < nz {
                        let gzr = &self.gz[(k * ny + j) * nx..][..nx];
                        let xn = &x[row + slab..][..nx];
                        for ((o, g), xv) in or.iter_mut().zip(gzr).zip(xn) {
                            *o -= g * xv;
                        }
                    }
                    if k > 0 {
                        let gzr = &self.gz[((k - 1) * ny + j) * nx..][..nx];
                        let xp = &x[row - slab..][..nx];
                        for ((o, g), xv) in or.iter_mut().zip(gzr).zip(xp) {
                            *o -= g * xv;
                        }
                    }
                }
            }
        }
    }

    /// f32 red-black relaxation sweep — structurally identical to
    /// [`Assembled::rb_sweep`] (colour-disjoint writes through the
    /// generic [`crate::engine::SharedSlice`]), multiplying by the
    /// precomputed reciprocal diagonal.
    pub(crate) fn rb_sweep(
        &self,
        plan: &ExecPlan,
        x: &mut [f32],
        rhs: &[f32],
        omega: f32,
        colours: [usize; 2],
    ) {
        let (nx, ny, nz) = (self.dim.nx, self.dim.ny, self.dim.nz);
        let slab = nx * ny;
        for colour in colours {
            plan.for_each_shared(x, |range, shared| {
                let (k_lo, k_hi) = (range.start / slab, range.end / slab);
                for k in k_lo..k_hi {
                    for j in 0..ny {
                        let i0 = (colour + j + k) % 2;
                        for i in (i0..nx).step_by(2) {
                            let c = (k * ny + j) * nx + i;
                            // SAFETY: `c` has the active colour inside this
                            // worker's own band (exclusive writer); every
                            // index read below is a stencil neighbour of
                            // `c` and therefore of the *other* colour — no
                            // concurrent pass writes it. Identical
                            // discipline to the f64 sweep.
                            unsafe {
                                let mut sigma = 0.0f32;
                                if i > 0 {
                                    sigma += self.gx[(k * ny + j) * (nx - 1) + i - 1]
                                        * shared.get(c - 1);
                                }
                                if i + 1 < nx {
                                    sigma +=
                                        self.gx[(k * ny + j) * (nx - 1) + i] * shared.get(c + 1);
                                }
                                if j > 0 {
                                    sigma += self.gy[(k * (ny - 1) + j - 1) * nx + i]
                                        * shared.get(c - nx);
                                }
                                if j + 1 < ny {
                                    sigma +=
                                        self.gy[(k * (ny - 1) + j) * nx + i] * shared.get(c + nx);
                                }
                                if k > 0 {
                                    sigma +=
                                        self.gz[((k - 1) * ny + j) * nx + i] * shared.get(c - slab);
                                }
                                if k + 1 < nz {
                                    sigma += self.gz[(k * ny + j) * nx + i] * shared.get(c + slab);
                                }
                                let old = shared.get(c);
                                let gs = (rhs[c] + sigma) * self.inv_diag[c];
                                shared.set(c, old + omega * (gs - old));
                            }
                        }
                    }
                }
            });
        }
    }

    /// f32 Chebyshev smoothing application over `[lo, hi]` — the f32
    /// twin of `multigrid::cheb_smooth`: three residual/update pass
    /// pairs, all banded element-wise writes, no reductions.
    #[allow(clippy::too_many_arguments)] // level-local scratch, not an API
    pub(crate) fn cheb_smooth(
        &self,
        plan: &ExecPlan,
        lo: f32,
        hi: f32,
        b: &[f32],
        x: &mut [f32],
        r: &mut [f32],
        d: &mut [f32],
    ) {
        let theta = 0.5 * (hi + lo);
        let delta = 0.5 * (hi - lo);
        let sigma = theta / delta;
        let mut rho = 1.0f32 / sigma;
        plan.map_mut(r, |range, chunk| {
            self.matvec_range(x, chunk, range.clone());
            for (o, bv) in chunk.iter_mut().zip(&b[range]) {
                *o = bv - *o;
            }
        });
        plan.map2_mut(x, d, |range, xs, ds| {
            let rr = &r[range.clone()];
            let inv = &self.inv_diag[range];
            for (((xv, dv), rv), iv) in xs.iter_mut().zip(ds.iter_mut()).zip(rr).zip(inv) {
                let v = rv / theta * iv;
                *dv = v;
                *xv += v;
            }
        });
        for _ in 1..crate::multigrid::CHEB_DEGREE {
            let rho_next = 1.0 / (2.0 * sigma - rho);
            plan.map_mut(r, |range, chunk| {
                self.matvec_range(x, chunk, range.clone());
                for (o, bv) in chunk.iter_mut().zip(&b[range]) {
                    *o = bv - *o;
                }
            });
            let gain = 2.0 * rho_next / delta;
            plan.map2_mut(x, d, |range, xs, ds| {
                let rr = &r[range.clone()];
                let inv = &self.inv_diag[range];
                for (((xv, dv), rv), iv) in xs.iter_mut().zip(ds.iter_mut()).zip(rr).zip(inv) {
                    let v = rho_next * rho * *dv + gain * rv * iv;
                    *dv = v;
                    *xv += v;
                }
            });
            rho = rho_next;
        }
    }
}

/// Thomas factorization of one level's z-line tridiagonal part: for
/// every (i, j) column, the tridiagonal matrix with the operator's full
/// diagonal on the diagonal and `−gz` on the off-diagonals. All
/// `nx·ny` columns share the same elimination recurrence, so both the
/// factorization and the solve run as straight slab-wise vector passes
/// (a "vectorized Thomas" over the lateral plane) instead of per-column
/// scalar loops.
///
/// `w[c] = 1 / (diag[c] − gz[c−slab]·c[c−slab])` is the reciprocal
/// pivot and `c[c] = gz[c]·w[c]` the elimination multiplier (zero on
/// the last slab).
#[derive(Debug, Clone)]
struct LineZ {
    w: Vec<f32>,
    c: Vec<f32>,
}

impl LineZ {
    fn factor(op: &OpF32) -> Self {
        let (slab, nz) = (op.dim.nx * op.dim.ny, op.dim.nz);
        let n = slab * nz;
        let mut w = vec![0.0f32; n];
        let mut c = vec![0.0f32; n];
        for k in 0..nz {
            for s in 0..slab {
                let idx = k * slab + s;
                let denom = if k == 0 {
                    op.diag[idx]
                } else {
                    op.diag[idx] - op.gz[idx - slab] * c[idx - slab]
                };
                w[idx] = 1.0 / denom;
                if k + 1 < nz {
                    c[idx] = op.gz[idx] * w[idx];
                }
            }
        }
        Self { w, c }
    }

    /// `d = T⁻¹·r` for the factored tridiagonal `T`, as slab-wise
    /// forward substitution then back substitution. Serial over slabs
    /// (the recurrence runs along z, the banding direction), so the
    /// result is trivially thread-count independent; each pass is a
    /// straight zip the autovectorizer packs.
    fn solve(&self, dim: Dim3, gz: &[f32], r: &[f32], d: &mut [f32]) {
        let (slab, nz) = (dim.nx * dim.ny, dim.nz);
        for ((dv, rv), wv) in d[..slab].iter_mut().zip(&r[..slab]).zip(&self.w[..slab]) {
            *dv = rv * wv;
        }
        for k in 1..nz {
            let (prev, cur) = d.split_at_mut(k * slab);
            let prev = &prev[(k - 1) * slab..];
            let cur = &mut cur[..slab];
            let row = k * slab..(k + 1) * slab;
            let gzr = &gz[(k - 1) * slab..k * slab];
            for ((((dv, pv), gv), rv), wv) in cur
                .iter_mut()
                .zip(prev)
                .zip(gzr)
                .zip(&r[row.clone()])
                .zip(&self.w[row])
            {
                *dv = (rv + gv * pv) * wv;
            }
        }
        for k in (0..nz.saturating_sub(1)).rev() {
            let (cur, next) = d.split_at_mut((k + 1) * slab);
            let cur = &mut cur[k * slab..];
            let next = &next[..slab];
            for ((dv, nv), cv) in cur
                .iter_mut()
                .zip(next)
                .zip(&self.c[k * slab..(k + 1) * slab])
            {
                *dv += cv * nv;
            }
        }
    }
}

/// Per-level f32 scratch of one inner V-cycle.
#[derive(Debug, Clone)]
struct LevelBufs32 {
    x: Vec<f32>,
    b: Vec<f32>,
    r: Vec<f32>,
    d: Vec<f32>,
}

/// Reusable scratch for the inner f32 MG-PCG: per-level V-cycle
/// buffers, the f64 staging pair for the (f64) coarsest direct solve,
/// and the finest-level CG vectors.
#[derive(Debug, Clone)]
pub(crate) struct WorkspaceF32 {
    r0: Vec<f32>,
    d0: Vec<f32>,
    tail: Vec<LevelBufs32>,
    coarse_b: Vec<f64>,
    coarse_x: Vec<f64>,
    cg_r: Vec<f32>,
    cg_z: Vec<f32>,
    cg_p: Vec<f32>,
    cg_ap: Vec<f32>,
}

/// The f32 shadow of an [`MgHierarchy`]: every level's operator
/// narrowed to [`OpF32`], sharing the f64 hierarchy's coarsening
/// decisions, execution plans, smoother configuration and (still f64)
/// coarsest-level Cholesky factor — the direct solve is a negligible
/// fraction of the cycle, and keeping it in f64 costs nothing while
/// anchoring the cycle's coarse corrections.
#[derive(Debug)]
pub(crate) struct HierarchyF32 {
    ops: Vec<OpF32>,
    dims: Vec<Dim3>,
    factors: Vec<Factors>,
    plans: Vec<ExecPlan>,
    chol: DenseCholesky,
    smoother: SmootherF32,
    cheb: Vec<(f32, f32)>,
    line: Vec<LineZ>,
    nu_pre: usize,
    nu_post: usize,
    omega: f32,
}

/// Smoothers of the shadow hierarchy. The aggressive fully-coarsened
/// chain always smooths with [`LineZ`] (see [`F32_SEMI_THRESHOLD`]);
/// the point variants exist for the mirror fallback, which reuses the
/// f64 hierarchy's semicoarsened chain and its configured smoother.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SmootherF32 {
    RedBlack,
    Chebyshev,
    LineZ,
}

impl HierarchyF32 {
    /// Builds the f32 shadow of an f64 hierarchy with its **own, fully
    /// coarsened chain** ([`F32_SEMI_THRESHOLD`]) smoothed by z-line
    /// Jacobi: the inner cycle is only a preconditioner, so it may
    /// trade spectral detail for a much cheaper grid complexity — a
    /// weaker cycle merely costs inner CG iterations (and a genuinely
    /// stalled pass falls back to f64). The line smoother is what makes
    /// full coarsening affordable on the anisotropic stacks; the
    /// configured point smoother (red-black / Chebyshev) only governs
    /// the f64 hierarchy. Coarse-level execution plans are serial:
    /// those grids are small, and a fixed serial schedule is trivially
    /// thread-count independent. If the chain's coarsest operator fails
    /// the Cholesky SPD check (it cannot, mathematically — Galerkin
    /// aggregation of an SPD operator is SPD — but poisoned
    /// conductances could), the shadow falls back to mirroring `mg`'s
    /// already-factored levels and smoother.
    pub(crate) fn build(fine: &Assembled, mg: &MgHierarchy) -> Self {
        let mut dims = vec![fine.dim()];
        let mut factors: Vec<Factors> = Vec::new();
        let mut chain: Vec<Assembled> = Vec::new();
        loop {
            let cur = chain.last().unwrap_or(fine);
            if cur.dim().len() <= F32_COARSE_MAX {
                break;
            }
            let Some(f) = coarsen_factors_with(cur, F32_SEMI_THRESHOLD) else {
                break;
            };
            let coarse = coarsen(cur, f);
            dims.push(coarse.dim());
            factors.push(f);
            chain.push(coarse);
        }
        let Ok(chol) = DenseCholesky::factor(chain.last().unwrap_or(fine)) else {
            return Self::mirror(fine, mg);
        };
        let levels = || std::iter::once(fine).chain(chain.iter());
        let plans = dims
            .iter()
            .enumerate()
            .map(|(l, &d)| {
                if l == 0 {
                    mg.plans()[0].clone()
                } else {
                    ExecPlan::new(d, 1, usize::MAX)
                }
            })
            .collect();
        let (nu_pre, nu_post) = mg.sweeps();
        let ops: Vec<OpF32> = levels().map(OpF32::from_assembled).collect();
        let line = ops.iter().map(LineZ::factor).collect();
        Self {
            ops,
            dims,
            factors,
            plans,
            chol,
            smoother: SmootherF32::LineZ,
            cheb: Vec::new(),
            line,
            nu_pre,
            nu_post,
            omega: mg.relax_omega() as f32,
        }
    }

    /// The historical shadow construction: narrow `mg`'s own levels and
    /// clone its factored coarse solve — the fallback when the
    /// aggressive chain cannot be factored.
    fn mirror(fine: &Assembled, mg: &MgHierarchy) -> Self {
        let ops = (0..mg.levels())
            .map(|l| OpF32::from_assembled(mg.op(fine, l)))
            .collect();
        let (nu_pre, nu_post) = mg.sweeps();
        Self {
            ops,
            dims: mg.dims().to_vec(),
            factors: mg.factors().to_vec(),
            plans: mg.plans().to_vec(),
            chol: mg.chol().clone(),
            smoother: match mg.smoother() {
                Smoother::RedBlack => SmootherF32::RedBlack,
                Smoother::Chebyshev => SmootherF32::Chebyshev,
            },
            cheb: mg
                .cheb_intervals()
                .iter()
                .map(|&(lo, hi)| (lo as f32, hi as f32))
                .collect(),
            line: Vec::new(),
            nu_pre,
            nu_post,
            omega: mg.relax_omega() as f32,
        }
    }

    /// Fresh scratch sized for this hierarchy.
    pub(crate) fn workspace(&self) -> WorkspaceF32 {
        let n0 = self.dims[0].len();
        let nc = self.dims[self.dims.len() - 1].len();
        WorkspaceF32 {
            r0: vec![0.0; n0],
            d0: vec![0.0; n0],
            tail: self.dims[1..]
                .iter()
                .map(|d| LevelBufs32 {
                    x: vec![0.0; d.len()],
                    b: vec![0.0; d.len()],
                    r: vec![0.0; d.len()],
                    d: vec![0.0; d.len()],
                })
                .collect(),
            coarse_b: vec![0.0; nc],
            coarse_x: vec![0.0; nc],
            cg_r: vec![0.0; n0],
            cg_z: vec![0.0; n0],
            cg_p: vec![0.0; n0],
            cg_ap: vec![0.0; n0],
        }
    }

    #[allow(clippy::too_many_arguments)] // recursion state, not an API
    fn smooth(
        &self,
        level: usize,
        b: &[f32],
        x: &mut [f32],
        r: &mut [f32],
        d: &mut [f32],
        nu: usize,
        colours: [usize; 2],
    ) {
        let op = &self.ops[level];
        let plan = &self.plans[level];
        match self.smoother {
            SmootherF32::RedBlack => {
                for _ in 0..nu {
                    op.rb_sweep(plan, x, b, self.omega, colours);
                }
            }
            SmootherF32::Chebyshev => {
                let (lo, hi) = self.cheb[level];
                for _ in 0..nu {
                    op.cheb_smooth(plan, lo, hi, b, x, r, d);
                }
            }
            SmootherF32::LineZ => {
                let line = &self.line[level];
                for _ in 0..nu {
                    plan.map_mut(r, |range, chunk| {
                        op.matvec_range(x, chunk, range.clone());
                        for (o, bv) in chunk.iter_mut().zip(&b[range]) {
                            *o = bv - *o;
                        }
                    });
                    line.solve(self.dims[level], &op.gz, r, d);
                    plan.map_mut(x, |range, chunk| {
                        for (o, dv) in chunk.iter_mut().zip(&d[range]) {
                            *o += LINE_OMEGA * dv;
                        }
                    });
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)] // recursion state, not an API
    fn cycle(
        &self,
        level: usize,
        b: &[f32],
        x: &mut [f32],
        r: &mut [f32],
        d: &mut [f32],
        tail: &mut [LevelBufs32],
        cb64: &mut [f64],
        cx64: &mut [f64],
    ) {
        if level + 1 == self.dims.len() {
            for (wide, v) in cb64.iter_mut().zip(b.iter()) {
                *wide = f64::from(*v);
            }
            self.chol.solve(cb64, cx64);
            for (xv, v) in x.iter_mut().zip(cx64.iter()) {
                *xv = *v as f32;
            }
            return;
        }
        let op = &self.ops[level];
        let plan = &self.plans[level];
        self.smooth(level, b, x, r, d, self.nu_pre, [0, 1]);
        plan.map_mut(r, |range, chunk| {
            op.matvec_range(x, chunk, range.clone());
            for (o, bv) in chunk.iter_mut().zip(&b[range]) {
                *o = bv - *o;
            }
        });
        let (next, rest) = tail
            .split_first_mut()
            .expect("workspace depth matches hierarchy"); // tsc-analyze: allow(no-unwrap): one buffer per level
        restrict(
            self.dims[level],
            self.dims[level + 1],
            self.factors[level],
            r,
            &mut next.b,
        );
        next.x.fill(0.0);
        let LevelBufs32 {
            x: cx,
            b: cb,
            r: cr,
            d: cd,
        } = next;
        self.cycle(level + 1, cb, cx, cr, cd, rest, cb64, cx64);
        prolong_add(
            self.dims[level],
            self.dims[level + 1],
            self.factors[level],
            cx,
            x,
        );
        self.smooth(level, b, x, r, d, self.nu_post, [1, 0]);
    }

    /// Inner f32 MG-PCG on `A·x = b`, starting from `x = 0`, run to
    /// [`INNER_TOL`] relative. All dot products accumulate in f64 over
    /// the per-slab ordered partials, so the iteration is bitwise
    /// thread-count independent like the f64 path. Returns
    /// `(iterations, matvecs, cycles, converged-and-finite)` — the
    /// caller treats `false` as a signal to fall back to f64, never as
    /// an error.
    pub(crate) fn solve_correction(
        &self,
        ws: &mut WorkspaceF32,
        b: &[f32],
        x: &mut [f32],
    ) -> (usize, usize, usize, bool) {
        let op = &self.ops[0];
        let plan = &self.plans[0];
        let slab = self.dims[0].nx * self.dims[0].ny;
        let WorkspaceF32 {
            r0,
            d0,
            tail,
            coarse_b,
            coarse_x,
            cg_r,
            cg_z,
            cg_p,
            cg_ap,
        } = ws;

        x.fill(0.0);
        cg_r.copy_from_slice(b);
        // The caller hands over `b = r/‖r‖` scaled to unit f64 norm, so
        // the narrowed ‖b‖ is 1 up to f32 rounding — close enough for a
        // 1e-2 inner tolerance check, and skipping the reduction saves a
        // full pass per refinement. A non-finite b still trips the
        // p_ap/residual guards below.
        let b_norm = 1.0f64;
        let mut residual = 1.0f64;
        let mut iterations = 0_usize;
        let mut matvecs = 0_usize;
        let mut cycles = 0_usize;

        cg_z.fill(0.0);
        self.cycle(0, cg_r, cg_z, r0, d0, tail, coarse_b, coarse_x);
        cycles += 1;
        cg_p.copy_from_slice(cg_z);
        let mut rz = cg_r
            .iter()
            .zip(cg_z.iter())
            .map(|(&r, &z)| f64::from(r) * f64::from(z))
            .sum::<f64>();

        while residual > INNER_TOL && residual.is_finite() && iterations < INNER_MAX_ITER {
            let parts = plan.map_mut(cg_ap, |range, chunk| {
                op.matvec_range(cg_p, chunk, range.clone());
                slab_dot_wide_parts(&cg_p[range], chunk, slab)
            });
            matvecs += 1;
            let p_ap = ordered_sum(parts.into_iter().flatten());
            if p_ap <= 0.0 || !p_ap.is_finite() {
                return (iterations, matvecs, cycles, false);
            }
            let alpha = rz / p_ap;
            let alpha32 = alpha as f32;
            let parts = plan.map2_mut(x, cg_r, |range, xs, rs| {
                for (xv, p) in xs.iter_mut().zip(&cg_p[range.clone()]) {
                    *xv += alpha32 * p;
                }
                for (rv, av) in rs.iter_mut().zip(&cg_ap[range]) {
                    *rv -= alpha32 * av;
                }
                slab_dot_wide_parts(rs, rs, slab)
            });
            let rr = ordered_sum(parts.into_iter().flatten());
            residual = rr.sqrt() / b_norm;
            iterations += 1;
            if residual <= INNER_TOL || !residual.is_finite() {
                break;
            }
            cg_z.fill(0.0);
            self.cycle(0, cg_r, cg_z, r0, d0, tail, coarse_b, coarse_x);
            cycles += 1;
            let rz_new = cg_r
                .iter()
                .zip(cg_z.iter())
                .map(|(&r, &z)| f64::from(r) * f64::from(z))
                .sum::<f64>();
            let beta = rz_new / rz;
            rz = rz_new;
            let beta32 = beta as f32;
            plan.map_mut(cg_p, |range, chunk| {
                for (o, zv) in chunk.iter_mut().zip(&cg_z[range]) {
                    *o = zv + beta32 * *o;
                }
            });
        }

        let ok = residual.is_finite() && residual <= INNER_TOL && x.iter().all(|v| v.is_finite());
        (iterations, matvecs, cycles, ok)
    }
}

impl Assembled {
    /// Mixed-precision solve of `A·x = rhs` to `params.tol` relative:
    /// f64 iterative refinement (see the module docs) around
    /// [`HierarchyF32::solve_correction`]. Falls back to
    /// [`Assembled::cg_core_mg`] from the current iterate when an outer
    /// pass stalls, so the error contract is exactly the f64 solver's.
    #[allow(clippy::too_many_arguments)] // internal kernel, wrapped by CgSolver
    pub(crate) fn cg_core_mixed(
        &self,
        rhs: &[f64],
        x: &mut [f64],
        params: &CgParams,
        mg: &MgHierarchy,
        ws: &mut MgWorkspace,
        h32: &HierarchyF32,
        ws32: &mut WorkspaceF32,
    ) -> Result<SolverStats, SolveError> {
        // tsc-analyze: allow(no-wallclock-numeric): feeds SolverStats wall-time only, never the numerics
        let t0 = Instant::now();
        let n = self.dim.len();
        debug_assert_eq!(rhs.len(), n);
        debug_assert_eq!(x.len(), n);
        #[cfg(feature = "fault-inject")]
        let max_refine = {
            crate::fault::begin_solve();
            crate::fault::poison_field(x);
            crate::fault::truncated_budget(MAX_REFINE)
        };
        #[cfg(not(feature = "fault-inject"))]
        let max_refine = MAX_REFINE;
        let plan = ExecPlan::new(self.dim, params.threads, params.crossover);
        let b_norm = norm(rhs).max(f64::MIN_POSITIVE);

        let mut r = vec![0.0; n];
        let mut ax = vec![0.0; n];
        let mut r32 = vec![0.0f32; n];
        let mut d32 = vec![0.0f32; n];
        let mut matvecs = 0_usize;
        let mut cycles = 0_usize;
        let mut inner_iterations = 0_usize;
        let mut refinements = 0_usize;
        let mut stalled = false;

        let mut residual = self.residual_norm(&plan, x, rhs, b_norm, &mut ax);
        matvecs += 1;
        let mut trajectory = vec![(0, residual)];

        while residual > params.tol && residual.is_finite() && refinements < max_refine {
            for ((rv, bv), av) in r.iter_mut().zip(rhs).zip(&ax) {
                *rv = bv - av;
            }
            // ‖r‖ from the already-reduced relative residual; the scaling
            // puts the inner right-hand side at unit norm, dead centre of
            // the f32 dynamic range whatever the outer residual magnitude.
            let r_norm = residual * b_norm;
            let scale = 1.0 / r_norm;
            for (s, rv) in r32.iter_mut().zip(&r) {
                *s = (rv * scale) as f32;
            }
            let (it32, mv32, cy32, ok) = h32.solve_correction(ws32, &r32, &mut d32);
            inner_iterations += it32;
            matvecs += mv32;
            cycles += cy32;
            if !ok {
                stalled = true;
                break;
            }
            plan.map_mut(x, |range, chunk| {
                for (o, dv) in chunk.iter_mut().zip(&d32[range]) {
                    *o += r_norm * f64::from(*dv);
                }
            });
            refinements += 1;
            let previous = residual;
            residual = self.residual_norm(&plan, x, rhs, b_norm, &mut ax);
            matvecs += 1;
            #[cfg(feature = "fault-inject")]
            {
                residual = crate::fault::corrupt_residual(refinements, residual);
            }
            trajectory.push((refinements, residual));
            if residual.is_finite() && residual > params.tol && residual > previous * STALL_FACTOR {
                stalled = true;
                break;
            }
        }

        if stalled || (residual > params.tol && residual.is_finite()) {
            // f32 hit its accuracy floor (or an inner solve failed):
            // finish in pure f64 from the current iterate. Robustness is
            // therefore never worse than the f64 path — only the speed
            // advantage is lost.
            let mut fb = self.cg_core_mg(rhs, x, params, mg, ws)?;
            fb.precision = Precision::Mixed;
            fb.refinements = refinements;
            fb.iterations += inner_iterations;
            fb.matvecs += matvecs;
            fb.cycles += cycles;
            fb.solve_seconds = t0.elapsed().as_secs_f64();
            let mut merged = trajectory;
            merged.extend(
                fb.trajectory
                    .iter()
                    .filter(|&&(it, _)| it > 0)
                    .map(|&(it, res)| (it + refinements, res)),
            );
            fb.trajectory = merged;
            return Ok(fb);
        }

        if !residual.is_finite() || !x.iter().all(|v| v.is_finite()) {
            return Err(SolveError::Diverged {
                iterations: refinements,
                residual,
            });
        }
        if residual > params.tol {
            return Err(SolveError::NotConverged {
                iterations: refinements,
                residual,
            });
        }
        for ((rv, bv), av) in r.iter_mut().zip(rhs).zip(&ax) {
            *rv = bv - av;
        }
        let level_residuals = mg.level_norms(&r, ws);
        Ok(SolverStats {
            iterations: inner_iterations,
            residual,
            matvecs,
            cycles,
            level_residuals,
            preconditioner: Preconditioner::Multigrid,
            precision: Precision::Mixed,
            refinements,
            assembly_seconds: self.assembly_seconds,
            solve_seconds: t0.elapsed().as_secs_f64(),
            threads: plan.threads(),
            trajectory,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heatsink::Heatsink;
    use crate::multigrid::MgParams;
    use crate::problem::Problem;
    use tsc_units::{HeatFlux, Length, ThermalConductivity};

    fn test_problem(nx: usize, ny: usize, nz: usize) -> Problem {
        let mut p = Problem::uniform_block(
            nx,
            ny,
            nz,
            Length::from_millimeters(1.0),
            Length::from_millimeters(1.0),
            Length::from_micrometers(50.0),
            ThermalConductivity::new(120.0),
        );
        p.set_bottom_heatsink(Heatsink::two_phase());
        p.add_uniform_top_flux(HeatFlux::from_watts_per_square_cm(150.0));
        p
    }

    fn mixed_solve(p: &Problem, tol: f64) -> (Vec<f64>, SolverStats) {
        let asm = Assembled::build(p).expect("assembly");
        let params = CgParams {
            tol,
            max_iter: 50_000,
            threads: 1,
            crossover: usize::MAX,
            traj_stride: 1,
        };
        let mg = MgHierarchy::build(&asm, &MgParams::with_exec(1, usize::MAX)).expect("hierarchy");
        let mut ws = mg.workspace();
        let h32 = HierarchyF32::build(&asm, &mg);
        let mut ws32 = h32.workspace();
        let mut x = vec![asm.initial_guess; asm.dim.len()];
        let stats = asm
            .cg_core_mixed(&asm.rhs, &mut x, &params, &mg, &mut ws, &h32, &mut ws32)
            .expect("mixed solve");
        (x, stats)
    }

    #[test]
    fn line_z_solve_inverts_the_tridiagonal_part() {
        // d = T⁻¹·r must satisfy T·d = r, where T couples each (i, j)
        // column along z with the operator's full diagonal and −gz
        // off-diagonals.
        let p = test_problem(5, 4, 7);
        let asm = Assembled::build(&p).expect("assembly");
        let op = OpF32::from_assembled(&asm);
        let line = LineZ::factor(&op);
        let (nx, ny, nz) = (asm.dim.nx, asm.dim.ny, asm.dim.nz);
        let slab = nx * ny;
        let n = asm.dim.len();
        let r: Vec<f32> = (0..n)
            .map(|i| ((i * 31 % 53) as f32) / 53.0 - 0.4)
            .collect();
        let mut d = vec![0.0f32; n];
        line.solve(asm.dim, &op.gz, &r, &mut d);
        for c in 0..n {
            let k = c / slab;
            let mut td = f64::from(op.diag[c]) * f64::from(d[c]);
            if k > 0 {
                td -= f64::from(op.gz[c - slab]) * f64::from(d[c - slab]);
            }
            if k + 1 < nz {
                td -= f64::from(op.gz[c]) * f64::from(d[c + slab]);
            }
            let rv = f64::from(r[c]);
            assert!(
                (td - rv).abs() <= 1e-4 * f64::from(op.diag[c]).max(1.0),
                "cell {c}: T·d = {td} vs r = {rv}"
            );
        }
    }

    #[test]
    fn shadow_hierarchy_uses_the_fully_coarsened_chain() {
        // The aggressive chain must coarsen laterally from the very
        // first level (the line smoother makes that affordable) and be
        // paired with a line factorization per level.
        let p = test_problem(16, 16, 13);
        let asm = Assembled::build(&p).expect("assembly");
        let mg = MgHierarchy::build(&asm, &MgParams::with_exec(1, usize::MAX)).expect("hierarchy");
        let h32 = HierarchyF32::build(&asm, &mg);
        assert!(h32.dims.len() >= 2, "expected a multi-level chain");
        assert!(
            h32.dims[1].nx < h32.dims[0].nx && h32.dims[1].nz < h32.dims[0].nz,
            "first coarsening must be in all directions: {:?}",
            h32.dims
        );
        assert_eq!(h32.line.len(), h32.ops.len());
        assert_eq!(h32.smoother, SmootherF32::LineZ);
    }

    #[test]
    fn f32_matvec_matches_f64_to_single_precision() {
        let p = test_problem(7, 5, 6);
        let asm = Assembled::build(&p).expect("assembly");
        let op = OpF32::from_assembled(&asm);
        let n = asm.dim.len();
        let x64: Vec<f64> = (0..n)
            .map(|i| ((i * 37 % 101) as f64) / 101.0 - 0.5)
            .collect();
        let x32: Vec<f32> = x64.iter().map(|&v| v as f32).collect();
        let mut y64 = vec![0.0; n];
        asm.matvec_range(&x64, &mut y64, 0..n, None);
        let mut y32 = vec![0.0f32; n];
        op.matvec_range(&x32, &mut y32, 0..n);
        let scale = asm.diag.iter().cloned().fold(0.0f64, f64::max);
        for (c, (&a, &b)) in y64.iter().zip(&y32).enumerate() {
            assert!(
                (a - f64::from(b)).abs() <= 1e-5 * scale,
                "cell {c}: f64 {a} vs f32 {b}"
            );
        }
    }

    #[test]
    fn blocked_matvec_is_banding_invariant() {
        // The stripe-blocked f32 matvec must produce identical bits for
        // any slab-aligned banding of the same field.
        let p = test_problem(6, 9, 8);
        let asm = Assembled::build(&p).expect("assembly");
        let op = OpF32::from_assembled(&asm);
        let n = asm.dim.len();
        let slab = asm.dim.nx * asm.dim.ny;
        let x: Vec<f32> = (0..n).map(|i| ((i * 13 % 29) as f32) / 29.0).collect();
        let mut whole = vec![0.0f32; n];
        op.matvec_range(&x, &mut whole, 0..n);
        let mut banded = vec![0.0f32; n];
        let mid = (asm.dim.nz / 2) * slab;
        op.matvec_range(&x, &mut banded[..mid], 0..mid);
        op.matvec_range(&x, &mut banded[mid..], mid..n);
        assert_eq!(whole, banded);
    }

    #[test]
    fn mixed_reaches_f64_tolerance() {
        let p = test_problem(12, 10, 9);
        let tol = 1e-11;
        let (x, stats) = mixed_solve(&p, tol);
        assert!(stats.residual <= tol, "residual {}", stats.residual);
        assert_eq!(stats.precision, Precision::Mixed);
        assert!(stats.refinements >= 1, "expected refinement passes");
        assert!(x.iter().all(|v| v.is_finite()));
        // Cross-check against the pure-f64 solver.
        let sol = crate::solver::CgSolver::new()
            .with_preconditioner(Preconditioner::Multigrid)
            .with_tolerance(tol)
            .solve(&p)
            .expect("f64 solve");
        let y = sol.temperatures.as_kelvin().as_slice();
        let max_dev = x
            .iter()
            .zip(y)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(max_dev < 1e-8, "mixed vs f64 deviation {max_dev} K");
    }

    #[test]
    fn mixed_stats_count_refinements_and_work() {
        let p = test_problem(10, 10, 6);
        let (_, stats) = mixed_solve(&p, 1e-11);
        assert!(stats.iterations > 0, "inner iterations recorded");
        assert!(stats.matvecs > stats.refinements);
        assert!(stats.cycles > 0);
        assert_eq!(
            stats.trajectory.first().map(|&(it, _)| it),
            Some(0),
            "trajectory starts at the initial residual"
        );
        let indices: Vec<usize> = stats.trajectory.iter().map(|&(it, _)| it).collect();
        assert!(
            indices.windows(2).all(|w| w[0] < w[1]),
            "trajectory indices must be strictly increasing: {indices:?}"
        );
    }
}
