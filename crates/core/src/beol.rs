//! Homogenized BEOL property sets per cooling strategy.
//!
//! The chip-scale solver consumes lumped anisotropic conductivities for
//! the lower (V0–V7) and upper (M8/V8/M9) BEOL groups — the abstraction
//! of Fig. 7. The canonical values are the paper's published Fig. 7c
//! table; [`BeolProperties::from_homogenization`] recomputes the same
//! quantities from scratch with [`tsc_homogenize`]'s synthetic slices
//! (see the `fig07_beol` bench), landing within ~10–35 %:
//!
//! | group / dielectric      | paper (canonical) | our homogenizer |
//! |-------------------------|-------------------|-----------------|
//! | V0–V7, ultra-low-k      | 0.31 / 5.47       | 0.41 / 5.31     |
//! | M8–M9, ultra-low-k      | 6.9 / 13.6        | 7.88 / 14.74    |
//! | M8–M9, thermal diel.    | 93.59 / 101.73    | 103.1 / 118.5   |

use tsc_homogenize::{extract_k, slice, Axis};
use tsc_materials::{Anisotropic, THERMAL_DIELECTRIC_DESIGN, ULTRA_LOW_K_ILD};
use tsc_phydes::fill::FillModel;
use tsc_units::{Length, Ratio, ThermalConductivity};

/// Canonical lumped V0–V7 conductivity with ultra-low-k dielectric.
#[must_use]
pub fn lower_ultra_low_k() -> Anisotropic {
    Anisotropic::new(
        ThermalConductivity::new(0.31),
        ThermalConductivity::new(5.47),
    )
}

/// Canonical lumped M8/V8/M9 conductivity with ultra-low-k dielectric.
#[must_use]
pub fn upper_ultra_low_k() -> Anisotropic {
    Anisotropic::new(
        ThermalConductivity::new(6.9),
        ThermalConductivity::new(13.6),
    )
}

/// Canonical lumped M8/V8/M9 conductivity with the thermal dielectric.
#[must_use]
pub fn upper_thermal_dielectric() -> Anisotropic {
    Anisotropic::new(
        ThermalConductivity::new(93.59),
        ThermalConductivity::new(101.73),
    )
}

/// The ILV/bonding interface between tiers: a 100 nm inter-tier layer of
/// ultra-low-k dielectric crossed by ~1 % inter-layer vias.
#[must_use]
pub fn ilv_interface() -> Anisotropic {
    ilv_with_matrix(ULTRA_LOW_K_ILD.conductivity)
}

/// The scaffolded bonding interface: the same ILV layer but encapsulated
/// in thermal dielectric ("thermal dielectric between tiers",
/// Observation 4c) — this is also what relaxes inter-tier pillar
/// alignment tolerance.
#[must_use]
pub fn ilv_thermal_dielectric() -> Anisotropic {
    ilv_with_matrix(tsc_materials::THERMAL_DIELECTRIC_DESIGN.conductivity)
}

fn ilv_with_matrix(matrix: Anisotropic) -> Anisotropic {
    let f = 0.01;
    let k = (1.0 - f) * matrix.vertical.get() + f * tsc_materials::copper::LOWER_LEVEL.get();
    Anisotropic::new(ThermalConductivity::new(k), matrix.lateral)
}

/// Thickness of the lumped lower BEOL.
#[must_use]
pub fn lower_thickness() -> Length {
    Length::from_micrometers(1.0)
}

/// Thickness of the upper (M8/V8/M9) group.
#[must_use]
pub fn upper_thickness() -> Length {
    Length::from_nanometers(240.0)
}

/// Thickness of the ILV/bond interface.
#[must_use]
pub fn ilv_thickness() -> Length {
    Length::from_nanometers(100.0)
}

/// The lumped BEOL of one tier under a given cooling strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BeolProperties {
    /// Lumped V0–V7 conductivity.
    pub lower: Anisotropic,
    /// Lumped M8/V8/M9 conductivity.
    pub upper: Anisotropic,
    /// ILV/bond interface conductivity.
    pub ilv: Anisotropic,
}

impl BeolProperties {
    /// Conventional stack: ultra-low-k everywhere, no thermal fill.
    #[must_use]
    pub fn conventional() -> Self {
        Self {
            lower: lower_ultra_low_k(),
            upper: upper_ultra_low_k(),
            ilv: ilv_interface(),
        }
    }

    /// Scaffolded stack: thermal dielectric in the upper group and in
    /// the inter-tier bond layer. (Pillars are applied separately, per
    /// cell, by the stack builder.)
    #[must_use]
    pub fn scaffolded() -> Self {
        Self {
            upper: upper_thermal_dielectric(),
            ilv: ilv_thermal_dielectric(),
            ..Self::conventional()
        }
    }

    /// Conventional stack with thermal dummy fill bought by `area_slack`
    /// footprint (Sec. IIIB metallization): the fill model's conductivity
    /// gains applied to both groups and the ILV interface.
    #[must_use]
    pub fn with_dummy_fill(area_slack: Ratio) -> Self {
        let fill = FillModel::calibrated();
        let cu = tsc_materials::copper::LOWER_LEVEL;
        let base = Self::conventional();
        let boost = |a: Anisotropic| {
            Anisotropic::new(
                fill.vertical_conductivity_gain(a.vertical, cu, area_slack),
                fill.lateral_conductivity_gain(a.lateral, cu, area_slack),
            )
        };
        Self {
            lower: boost(base.lower),
            upper: boost(base.upper),
            ilv: boost(base.ilv),
        }
    }

    /// Recomputes the lower/upper values from first principles with the
    /// voxel homogenizer (slow: fine-grid FEM). `scaffolded` selects the
    /// upper-group dielectric.
    ///
    /// # Errors
    ///
    /// Propagates solver failures from the fine-grid extraction.
    pub fn from_homogenization(scaffolded: bool) -> Result<Self, tsc_thermal::SolveError> {
        let lower_geo = slice::SliceGeometry::default_lower();
        let upper_geo = slice::SliceGeometry::default_upper();
        let lower_model = slice::lower_beol(ULTRA_LOW_K_ILD.conductivity, &lower_geo);
        let upper_d = if scaffolded {
            THERMAL_DIELECTRIC_DESIGN.conductivity
        } else {
            ULTRA_LOW_K_ILD.conductivity
        };
        let upper_model = slice::upper_beol(upper_d, &upper_geo);
        Ok(Self {
            lower: Anisotropic::new(
                extract_k(&lower_model, Axis::Z)?,
                extract_k(&lower_model, Axis::X)?,
            ),
            upper: Anisotropic::new(
                extract_k(&upper_model, Axis::Z)?,
                extract_k(&upper_model, Axis::X)?,
            ),
            ilv: ilv_interface(),
        })
    }

    /// Area-specific vertical resistance of one tier's full BEOL +
    /// interface (no pillars) — the rung of the compact ladder model.
    #[must_use]
    pub fn tier_resistance(&self) -> tsc_units::AreaThermalResistance {
        self.lower.vertical.slab_resistance(lower_thickness())
            + self.upper.vertical.slab_resistance(upper_thickness())
            + self.ilv.vertical.slab_resistance(ilv_thickness())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conventional_tier_resistance_is_microkelvin_class() {
        // ~2.5e-6 m²K/W per tier — the number that caps conventional
        // stacks at 3-4 tiers.
        let r = BeolProperties::conventional().tier_resistance().get();
        assert!((2.0e-6..3.5e-6).contains(&r), "R'' = {r:.3e}");
    }

    #[test]
    fn scaffolding_dielectric_alone_barely_moves_vertical_resistance() {
        // The dielectric fixes the upper layers and the bond, but the
        // lower BEOL still dominates vertically. That is why pillars are
        // needed too.
        let conv = BeolProperties::conventional().tier_resistance().get();
        let scaf = BeolProperties::scaffolded().tier_resistance().get();
        assert!(scaf < conv);
        assert!(scaf > 0.8 * conv, "dielectric alone is not enough");
    }

    #[test]
    fn dummy_fill_cuts_resistance_with_slack() {
        let base = BeolProperties::conventional().tier_resistance().get();
        let filled = BeolProperties::with_dummy_fill(Ratio::from_percent(78.0))
            .tier_resistance()
            .get();
        assert!(
            filled < base / 2.0,
            "78% slack must at least halve tier resistance: {base:.2e} -> {filled:.2e}"
        );
    }

    #[test]
    fn fill_gains_are_monotone() {
        let mut last = f64::INFINITY;
        for pct in [0.0, 10.0, 34.0, 78.0] {
            let r = BeolProperties::with_dummy_fill(Ratio::from_percent(pct))
                .tier_resistance()
                .get();
            assert!(r <= last);
            last = r;
        }
    }

    #[test]
    fn canonical_values_have_correct_orderings() {
        let low = lower_ultra_low_k();
        let up = upper_ultra_low_k();
        let td = upper_thermal_dielectric();
        assert!(low.vertical.get() < low.lateral.get());
        assert!(up.vertical.get() < up.lateral.get());
        assert!(td.vertical.get() > 10.0 * up.vertical.get());
        assert!(td.lateral.get() > 5.0 * up.lateral.get());
    }

    #[test]
    fn ilv_interface_is_poor_but_finite() {
        let ilv = ilv_interface();
        assert!((1.0..2.0).contains(&ilv.vertical.get()), "{:?}", ilv);
    }

    /// Slow validation: the canonical (paper) constants match a fresh
    /// synthetic-slice homogenization within 35 %. Run with `--ignored`.
    #[test]
    #[ignore = "fine-grid FEM, run explicitly"]
    fn canonical_matches_recomputation() {
        let fresh = BeolProperties::from_homogenization(false).expect("converges");
        let canon = BeolProperties::conventional();
        let close = |a: f64, b: f64| (a - b).abs() / b < 0.35;
        assert!(close(
            fresh.lower.vertical.get(),
            canon.lower.vertical.get()
        ));
        assert!(close(fresh.lower.lateral.get(), canon.lower.lateral.get()));
        assert!(close(
            fresh.upper.vertical.get(),
            canon.upper.vertical.get()
        ));
        assert!(close(fresh.upper.lateral.get(), canon.upper.lateral.get()));
        let fresh_td = BeolProperties::from_homogenization(true).expect("converges");
        let canon_td = BeolProperties::scaffolded();
        assert!(close(
            fresh_td.upper.vertical.get(),
            canon_td.upper.vertical.get()
        ));
        assert!(close(
            fresh_td.upper.lateral.get(),
            canon_td.upper.lateral.get()
        ));
    }
}
