//! Property-based tests for the unit algebra.

use proptest::prelude::*;
use tsc_units::{
    ops, Area, AreaThermalResistance, HeatFlux, HeatTransferCoefficient, Length, Power, Ratio,
    TempDelta, Temperature, ThermalConductivity,
};

fn finite_positive() -> impl Strategy<Value = f64> {
    // Stay within a range where f64 round-off cannot dominate.
    1e-12..1e12
}

proptest! {
    #[test]
    fn length_conversions_round_trip(nm in finite_positive()) {
        let l = Length::from_nanometers(nm);
        prop_assert!((l.nanometers() - nm).abs() <= nm * 1e-12);
        prop_assert!((Length::from_micrometers(l.micrometers()).meters() - l.meters()).abs()
            <= l.meters() * 1e-12);
    }

    #[test]
    fn area_of_square_inverts_side(um in 1e-3..1e4f64) {
        let side = Length::from_micrometers(um);
        let recovered = side.squared().side_of_square();
        prop_assert!((recovered.micrometers() - um).abs() <= um * 1e-9);
    }

    #[test]
    fn temperature_offset_cancels(c in -200.0..1000.0f64, dk in -500.0..500.0f64) {
        let t = Temperature::from_celsius(c);
        let d = TempDelta::new(dk);
        let back = (t + d) - d;
        prop_assert!(back.approx_eq(t, 1e-9));
    }

    #[test]
    fn power_sum_is_commutative(w1 in finite_positive(), w2 in finite_positive()) {
        let a = Power::from_watts(w1);
        let b = Power::from_watts(w2);
        prop_assert!((a + b).approx_eq(b + a, 1e-9 * (w1 + w2)));
    }

    #[test]
    fn flux_area_power_triangle(q in 1e-3..1e4f64, cm2 in 1e-4..1e2f64) {
        let flux = HeatFlux::from_watts_per_square_cm(q);
        let area = Area::from_square_cm(cm2);
        let p = flux * area;
        let q_back = p / area;
        prop_assert!((q_back.watts_per_square_cm() - q).abs() <= q * 1e-12);
    }

    #[test]
    fn mixture_rules_are_bounded(
        k_hi in 1.0..1000.0f64,
        k_lo in 0.01..1.0f64,
        pct in 0.0..100.0f64,
    ) {
        let hi = ThermalConductivity::new(k_hi);
        let lo = ThermalConductivity::new(k_lo);
        let f = Ratio::from_percent(pct);
        let par = ops::parallel_rule(hi, lo, f);
        let ser = ops::series_rule(hi, lo, f);
        // Both bounded by constituents; Voigt >= Reuss always.
        prop_assert!(par.get() <= k_hi.max(k_lo) + 1e-9);
        prop_assert!(ser.get() >= k_hi.min(k_lo) - 1e-9);
        prop_assert!(par.get() + 1e-12 >= ser.get());
    }

    #[test]
    fn stack_temperature_monotone_in_tiers(
        n in 1usize..20,
        q in 1.0..200.0f64,
        r in 1e-8..1e-5f64,
    ) {
        let flux = HeatFlux::from_watts_per_square_cm(q);
        let res = AreaThermalResistance::new(r);
        let h = HeatTransferCoefficient::TWO_PHASE;
        let amb = Temperature::from_celsius(100.0);
        let t_n = ops::stack_junction_temperature(n, flux, res, h, amb);
        let t_n1 = ops::stack_junction_temperature(n + 1, flux, res, h, amb);
        prop_assert!(t_n1 > t_n, "adding a tier must heat the stack");
        prop_assert!(t_n > amb, "junction must sit above ambient");
    }

    #[test]
    fn stack_temperature_monotone_in_resistance(
        q in 1.0..200.0f64,
        r1 in 1e-8..1e-5f64,
        factor in 1.01..100.0f64,
    ) {
        let flux = HeatFlux::from_watts_per_square_cm(q);
        let h = HeatTransferCoefficient::TWO_PHASE;
        let amb = Temperature::from_celsius(100.0);
        let t_lo = ops::stack_junction_temperature(6, flux, AreaThermalResistance::new(r1), h, amb);
        let t_hi = ops::stack_junction_temperature(
            6, flux, AreaThermalResistance::new(r1 * factor), h, amb);
        prop_assert!(t_hi > t_lo, "higher tier resistance must run hotter");
    }

    #[test]
    fn ladder_fraction_is_proper(
        n in 1usize..16,
        q in 1.0..500.0f64,
        r in 1e-9..1e-4f64,
    ) {
        let f = ops::ladder_fraction_of_rise(
            n,
            HeatFlux::from_watts_per_square_cm(q),
            AreaThermalResistance::new(r),
            HeatTransferCoefficient::MICROFLUIDIC,
        );
        prop_assert!(f.is_proper());
    }

    #[test]
    fn ratio_complement_involutes(pct in 0.0..100.0f64) {
        let r = Ratio::from_percent(pct);
        prop_assert!(r.complement().complement().approx_eq(r, 1e-12));
    }
}
