//! Benches of the end-to-end cooling flows (the Fig. 9/10/11 inner
//! loop) and the compact-ladder fast path, on the in-repo harness.

use tsc_bench::timing::Bench;
use tsc_core::beol::BeolProperties;
use tsc_core::flows::{run_flow, CoolingStrategy, FlowConfig};
use tsc_core::stack::{build, compact_ladder, StackConfig};
use tsc_designs::gemmini;
use tsc_thermal::{CgSolver, Heatsink};
use tsc_units::Ratio;

fn cfg(strategy: CoolingStrategy, tiers: usize) -> FlowConfig {
    FlowConfig {
        strategy,
        tiers,
        area_budget: Ratio::from_percent(10.0),
        delay_budget: Ratio::from_percent(3.0),
        lateral_cells: 10,
        ..FlowConfig::default()
    }
}

fn main() {
    let d = gemmini::design();

    let b = Bench::group("run_flow_6_tiers");
    for strategy in [
        CoolingStrategy::Scaffolding,
        CoolingStrategy::VerticalOnly,
        CoolingStrategy::ConventionalDummyVias,
    ] {
        b.run(&format!("{strategy}"), 5, || {
            run_flow(&d, &cfg(strategy, 6)).expect("solves")
        });
    }

    let b = Bench::group("run_flow_tiers");
    for tiers in [3usize, 6, 12] {
        b.run(&format!("{tiers}"), 5, || {
            run_flow(&d, &cfg(CoolingStrategy::Scaffolding, tiers)).expect("solves")
        });
    }

    let stack_cfg = StackConfig::uniform(12, BeolProperties::scaffolded(), Heatsink::two_phase())
        .with_lateral_cells(10);
    let b = Bench::group("stack");
    b.run("stack_build_only", 10, || build(&d, &stack_cfg));
    let problem = build(&d, &stack_cfg).problem;
    b.run("cg_12_tiers", 5, || {
        CgSolver::new()
            .with_tolerance(1e-8)
            .solve(&problem)
            .expect("converges")
    });
    b.run("compact_ladder_12_tiers", 10, || {
        compact_ladder(&d, &stack_cfg).junction_temperature()
    });
}
