//! Axis-aligned rectangles in physical layout coordinates.

use crate::point::Point;
use tsc_units::{Area, Length};

/// An axis-aligned rectangle: floorplan units, macros, pillar footprints,
/// BEOL slices.
///
/// Stored as the lower-left corner plus a non-negative size.
///
/// ```
/// use tsc_geometry::Rect;
/// use tsc_units::Length;
/// let macro_blk = Rect::square(
///     Length::from_micrometers(10.0),
///     Length::from_micrometers(10.0),
///     Length::from_micrometers(25.0),
/// );
/// assert!((macro_blk.area().square_micrometers() - 625.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Rect {
    origin: Point,
    width: Length,
    height: Length,
}

impl Rect {
    /// Creates a rectangle from its lower-left corner and size.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is negative.
    #[must_use]
    pub fn from_origin_size(x: Length, y: Length, width: Length, height: Length) -> Self {
        assert!(
            width.meters() >= 0.0 && height.meters() >= 0.0,
            "rectangle size must be non-negative, got {width} x {height}"
        );
        Self {
            origin: Point::new(x, y),
            width,
            height,
        }
    }

    /// Creates a square of the given side at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if `side` is negative.
    #[must_use]
    pub fn square(x: Length, y: Length, side: Length) -> Self {
        Self::from_origin_size(x, y, side, side)
    }

    /// Creates a rectangle centered at `center`.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is negative.
    #[must_use]
    pub fn centered(center: Point, width: Length, height: Length) -> Self {
        Self::from_origin_size(
            center.x - width / 2.0,
            center.y - height / 2.0,
            width,
            height,
        )
    }

    /// Lower-left corner.
    #[must_use]
    pub const fn origin(&self) -> Point {
        self.origin
    }

    /// Width (x extent).
    #[must_use]
    pub const fn width(&self) -> Length {
        self.width
    }

    /// Height (y extent).
    #[must_use]
    pub const fn height(&self) -> Length {
        self.height
    }

    /// Minimum x coordinate.
    #[must_use]
    pub fn min_x(&self) -> Length {
        self.origin.x
    }

    /// Maximum x coordinate.
    #[must_use]
    pub fn max_x(&self) -> Length {
        self.origin.x + self.width
    }

    /// Minimum y coordinate.
    #[must_use]
    pub fn min_y(&self) -> Length {
        self.origin.y
    }

    /// Maximum y coordinate.
    #[must_use]
    pub fn max_y(&self) -> Length {
        self.origin.y + self.height
    }

    /// Geometric center.
    #[must_use]
    pub fn center(&self) -> Point {
        Point::new(
            self.origin.x + self.width / 2.0,
            self.origin.y + self.height / 2.0,
        )
    }

    /// Enclosed area.
    #[must_use]
    pub fn area(&self) -> Area {
        self.width * self.height
    }

    /// `true` when either dimension is zero.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        // tsc-analyze: allow(float-eq): exact-zero is the intended
        // semantics — a rect is empty only when a side is literally 0.
        self.width.meters() == 0.0 || self.height.meters() == 0.0
    }

    /// `true` when `p` lies inside or on the boundary.
    #[must_use]
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min_x() && p.x <= self.max_x() && p.y >= self.min_y() && p.y <= self.max_y()
    }

    /// `true` when `other` lies fully inside `self` (boundaries may touch).
    #[must_use]
    pub fn contains_rect(&self, other: &Rect) -> bool {
        other.min_x() >= self.min_x()
            && other.max_x() <= self.max_x()
            && other.min_y() >= self.min_y()
            && other.max_y() <= self.max_y()
    }

    /// `true` when the interiors overlap (touching edges do not count).
    #[must_use]
    pub fn intersects(&self, other: &Rect) -> bool {
        self.min_x() < other.max_x()
            && other.min_x() < self.max_x()
            && self.min_y() < other.max_y()
            && other.min_y() < self.max_y()
    }

    /// The overlapping region, if any.
    #[must_use]
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if !self.intersects(other) {
            return None;
        }
        let x0 = self.min_x().max(other.min_x());
        let y0 = self.min_y().max(other.min_y());
        let x1 = self.max_x().min(other.max_x());
        let y1 = self.max_y().min(other.max_y());
        Some(Rect::from_origin_size(x0, y0, x1 - x0, y1 - y0))
    }

    /// Smallest rectangle containing both.
    #[must_use]
    pub fn union(&self, other: &Rect) -> Rect {
        let x0 = self.min_x().min(other.min_x());
        let y0 = self.min_y().min(other.min_y());
        let x1 = self.max_x().max(other.max_x());
        let y1 = self.max_y().max(other.max_y());
        Rect::from_origin_size(x0, y0, x1 - x0, y1 - y0)
    }

    /// Grows (positive `margin`) or shrinks (negative) on every side.
    /// Shrinking saturates at zero size around the center.
    #[must_use]
    pub fn inflated(&self, margin: Length) -> Rect {
        let new_w = (self.width + margin * 2.0).max(Length::ZERO);
        let new_h = (self.height + margin * 2.0).max(Length::ZERO);
        Rect::centered(self.center(), new_w, new_h)
    }

    /// Translated copy.
    #[must_use]
    pub fn translated(&self, dx: Length, dy: Length) -> Rect {
        Rect {
            origin: self.origin.translated(dx, dy),
            width: self.width,
            height: self.height,
        }
    }

    /// Shortest distance between boundaries (zero when intersecting or
    /// touching).
    #[must_use]
    pub fn gap_to(&self, other: &Rect) -> Length {
        let dx = (other.min_x() - self.max_x())
            .max(self.min_x() - other.max_x())
            .max(Length::ZERO);
        let dy = (other.min_y() - self.max_y())
            .max(self.min_y() - other.max_y())
            .max(Length::ZERO);
        Length::from_meters(dx.meters().hypot(dy.meters()))
    }
}

impl core::fmt::Display for Rect {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{} + {:.3} µm x {:.3} µm",
            self.origin,
            self.width.micrometers(),
            self.height.micrometers()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn um(v: f64) -> Length {
        Length::from_micrometers(v)
    }

    fn rect(x: f64, y: f64, w: f64, h: f64) -> Rect {
        Rect::from_origin_size(um(x), um(y), um(w), um(h))
    }

    #[test]
    fn bounds_and_center() {
        let r = rect(1.0, 2.0, 4.0, 6.0);
        assert!((r.max_x().micrometers() - 5.0).abs() < 1e-9);
        assert!((r.max_y().micrometers() - 8.0).abs() < 1e-9);
        assert!((r.center().x.micrometers() - 3.0).abs() < 1e-9);
        assert!((r.center().y.micrometers() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn containment() {
        let outer = rect(0.0, 0.0, 10.0, 10.0);
        let inner = rect(2.0, 2.0, 3.0, 3.0);
        assert!(outer.contains_rect(&inner));
        assert!(!inner.contains_rect(&outer));
        assert!(outer.contains(Point::new(um(10.0), um(10.0)))); // boundary
        assert!(!outer.contains(Point::new(um(10.1), um(5.0))));
    }

    #[test]
    fn intersection_geometry() {
        let a = rect(0.0, 0.0, 4.0, 4.0);
        let b = rect(2.0, 2.0, 4.0, 4.0);
        let i = a.intersection(&b).expect("overlap");
        assert!((i.area().square_micrometers() - 4.0).abs() < 1e-9);
        // Touching edges are not an intersection.
        let c = rect(4.0, 0.0, 2.0, 2.0);
        assert!(!a.intersects(&c));
        assert!(a.intersection(&c).is_none());
    }

    #[test]
    fn union_covers_both() {
        let a = rect(0.0, 0.0, 1.0, 1.0);
        let b = rect(5.0, 5.0, 1.0, 1.0);
        let u = a.union(&b);
        assert!(u.contains_rect(&a) && u.contains_rect(&b));
        assert!((u.area().square_micrometers() - 36.0).abs() < 1e-9);
    }

    #[test]
    fn inflate_and_deflate() {
        let r = rect(5.0, 5.0, 10.0, 10.0);
        let big = r.inflated(um(1.0));
        assert!((big.width().micrometers() - 12.0).abs() < 1e-9);
        let gone = r.inflated(um(-6.0));
        assert!(gone.is_empty());
    }

    #[test]
    fn gap_between_rects() {
        let a = rect(0.0, 0.0, 2.0, 2.0);
        let b = rect(5.0, 0.0, 2.0, 2.0);
        assert!((a.gap_to(&b).micrometers() - 3.0).abs() < 1e-9);
        // Diagonal gap is Euclidean.
        let c = rect(5.0, 6.0, 2.0, 2.0);
        assert!((a.gap_to(&c).micrometers() - 5.0).abs() < 1e-9);
        // Overlap -> zero.
        let d = rect(1.0, 1.0, 2.0, 2.0);
        assert_eq!(a.gap_to(&d).meters(), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_size_rejected() {
        let _ = rect(0.0, 0.0, -1.0, 1.0);
    }
}
