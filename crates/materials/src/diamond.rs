//! Effective thermal conductivity of nanocrystalline diamond (Eq. 1, Fig. 4).
//!
//! The paper fits the film conductivity of low-temperature-grown
//! polycrystalline diamond to the grain-size ETC model of Dong, Wen &
//! Melnik (Sci. Rep. 4, 7037):
//!
//! ```text
//!            k0 / (1 + Λ0/d^0.76)
//! k_film = ───────────────────────────────────
//!          1 + R · [k0 / (1 + Λ0/d^0.76)] / d
//! ```
//!
//! where `k0` is the single-crystal conductivity, `Λ0` the single-crystal
//! phonon mean free path, `d` the grain size and `R` the grain-boundary
//! thermal resistance (the paper extracts `R = 1.15 m²K/GW`).
//!
//! The numerator is the intra-grain size effect (phonons scattered by grain
//! boundaries before completing a bulk mean free path); the denominator
//! adds one grain-boundary Kapitza resistance per grain traversed.

use tsc_units::{AreaThermalResistance, Length, ThermalConductivity};

/// Exponent of the grain-size term in Eq. 1 (empirical, from \[24\]).
pub const GRAIN_SIZE_EXPONENT: f64 = 0.76;

/// The calibrated ETC model of Eq. 1.
///
/// ```
/// use tsc_materials::diamond::EtcModel;
/// use tsc_units::Length;
///
/// let m = EtcModel::calibrated();
/// // The paper's design point: a 160 nm grain film (one upper-layer
/// // thickness) conducts 105.7 W/m/K in-plane.
/// let k = m.in_plane_conductivity(Length::from_nanometers(160.0));
/// assert!((k.get() - 105.7).abs() < 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EtcModel {
    /// Single-crystal thermal conductivity `k0`.
    pub single_crystal_k: ThermalConductivity,
    /// Single-crystal phonon mean free path `Λ0`.
    pub phonon_mfp: Length,
    /// Grain-boundary (Kapitza) thermal resistance `R`.
    pub grain_boundary_resistance: AreaThermalResistance,
}

impl EtcModel {
    /// The model calibrated as in the paper: `R = 1.15 m²K/GW`, with `k0`
    /// and `Λ0` chosen so the 160 nm grain film reproduces the reported
    /// 105.7 W/m/K and large-grain films approach the single-crystal bound.
    #[must_use]
    pub fn calibrated() -> Self {
        Self {
            single_crystal_k: ThermalConductivity::new(2200.0),
            phonon_mfp: Length::from_nanometers(189.4),
            grain_boundary_resistance: AreaThermalResistance::from_m2_kelvin_per_gigawatt(1.15),
        }
    }

    /// Intra-grain ("size-effect only") conductivity, the numerator of
    /// Eq. 1: `k0 / (1 + Λ0/d^0.76)` with lengths in nanometers as in \[24\].
    ///
    /// # Panics
    ///
    /// Panics if `grain_size` is not strictly positive.
    #[must_use]
    pub fn intra_grain_conductivity(&self, grain_size: Length) -> ThermalConductivity {
        let d_nm = grain_size.nanometers();
        assert!(d_nm > 0.0, "grain size must be positive, got {grain_size}");
        let lambda_nm = self.phonon_mfp.nanometers();
        let k = self.single_crystal_k.get() / (1.0 + lambda_nm / d_nm.powf(GRAIN_SIZE_EXPONENT));
        ThermalConductivity::new(k)
    }

    /// In-plane film conductivity of Eq. 1: intra-grain conduction in
    /// series with one grain-boundary resistance per grain.
    ///
    /// # Panics
    ///
    /// Panics if `grain_size` is not strictly positive.
    #[must_use]
    pub fn in_plane_conductivity(&self, grain_size: Length) -> ThermalConductivity {
        let k_size = self.intra_grain_conductivity(grain_size).get();
        let gb = self.grain_boundary_resistance.get() * k_size / grain_size.meters();
        ThermalConductivity::new(k_size / (1.0 + gb))
    }

    /// Through-plane conductivity of a film of the given `thickness`,
    /// accounting for the film/substrate thermal boundary resistance
    /// `tbr` at both faces (the "ETC approach" of \[25\]):
    /// `k_tp = k_ip / (1 + 2·R_b·k_ip/t)`.
    ///
    /// Sweeping `tbr` from the experimentally demonstrated maximum
    /// ([`Self::TBR_DEMONSTRATED`]) to an ideal zero spans the paper's
    /// 30–105.7 W/m/K through-plane range for the 240 nm scaffolding layer.
    ///
    /// # Panics
    ///
    /// Panics if `thickness` is not strictly positive.
    #[must_use]
    pub fn through_plane_conductivity(
        &self,
        grain_size: Length,
        thickness: Length,
        tbr: AreaThermalResistance,
    ) -> ThermalConductivity {
        assert!(
            thickness.meters() > 0.0,
            "film thickness must be positive, got {thickness}"
        );
        let k_ip = self.in_plane_conductivity(grain_size).get();
        let denom = 1.0 + 2.0 * tbr.get() * k_ip / thickness.meters();
        ThermalConductivity::new(k_ip / denom)
    }

    /// Experimentally demonstrated film boundary resistance used as the
    /// pessimistic end of the through-plane sweep. Calibrated so that a
    /// 240 nm / 160 nm-grain film lands at the paper's 30 W/m/K floor.
    pub const TBR_DEMONSTRATED: AreaThermalResistance = AreaThermalResistance::new(2.86e-9);
}

impl Default for EtcModel {
    fn default() -> Self {
        Self::calibrated()
    }
}

/// The experimental films the model was fitted to (grain size, growth
/// temperature °C) — Malakoutian et al. 2020-2022.
pub const EXPERIMENTAL_FILMS: [(f64, f64); 3] = [(350.0, 500.0), (650.0, 400.0), (1900.0, 650.0)];

/// Conservative upper end of the in-plane sweep used in the physical
/// design flow: a large-grain (>1 µm) thin film at 500 W/m/K.
pub const IN_PLANE_MAX: ThermalConductivity = ThermalConductivity::new(500.0);

/// Lower end of the sweep: the 160 nm grain film at 105.7 W/m/K (one
/// upper-layer thickness of the 7 nm PDK).
pub const IN_PLANE_MIN: ThermalConductivity = ThermalConductivity::new(105.7);

/// Through-plane range floor from the paper (30 W/m/K).
pub const THROUGH_PLANE_MIN: ThermalConductivity = ThermalConductivity::new(30.0);

#[cfg(test)]
mod tests {
    use super::*;

    fn nm(v: f64) -> Length {
        Length::from_nanometers(v)
    }

    #[test]
    fn design_point_matches_paper() {
        let m = EtcModel::calibrated();
        let k = m.in_plane_conductivity(nm(160.0));
        assert!(
            (k.get() - 105.7).abs() < 2.0,
            "160 nm grain film should be ~105.7 W/m/K, got {k}"
        );
    }

    #[test]
    fn conductivity_increases_with_grain_size() {
        let m = EtcModel::calibrated();
        let sizes = [10.0, 50.0, 160.0, 350.0, 650.0, 1000.0, 1900.0];
        let ks: Vec<f64> = sizes
            .iter()
            .map(|&d| m.in_plane_conductivity(nm(d)).get())
            .collect();
        for w in ks.windows(2) {
            assert!(w[1] > w[0], "k must grow with grain size: {ks:?}");
        }
    }

    #[test]
    fn bounded_by_single_crystal() {
        let m = EtcModel::calibrated();
        for d in [1.0, 10.0, 100.0, 1000.0, 100_000.0] {
            let k = m.in_plane_conductivity(nm(d));
            assert!(k.get() < m.single_crystal_k.get());
            assert!(k.get() > 0.0);
        }
    }

    #[test]
    fn large_grain_film_is_conservatively_500() {
        let m = EtcModel::calibrated();
        // Films > 1 µm comfortably exceed the conservative 500 W/m/K the
        // paper adopts as its optimistic design value.
        let k = m.in_plane_conductivity(nm(1900.0));
        assert!(k.get() > IN_PLANE_MAX.get(), "1.9 µm film: {k}");
    }

    #[test]
    fn gain_over_ultra_low_k_exceeds_500x() {
        let m = EtcModel::calibrated();
        let k = m.in_plane_conductivity(nm(160.0));
        assert!(k.get() / 0.2 > 500.0);
    }

    #[test]
    fn through_plane_range_matches_paper() {
        let m = EtcModel::calibrated();
        let t = nm(240.0);
        let g = nm(160.0);
        let worst = m.through_plane_conductivity(g, t, EtcModel::TBR_DEMONSTRATED);
        let best = m.through_plane_conductivity(g, t, AreaThermalResistance::ZERO);
        assert!(
            (worst.get() - 30.0).abs() < 3.0,
            "pessimistic through-plane should be ~30, got {worst}"
        );
        assert!(
            (best.get() - 105.7).abs() < 2.0,
            "ideal through-plane equals in-plane, got {best}"
        );
    }

    #[test]
    fn through_plane_never_exceeds_in_plane() {
        let m = EtcModel::calibrated();
        for d in [100.0, 200.0, 500.0] {
            for t in [100.0, 240.0, 1000.0] {
                let ip = m.in_plane_conductivity(nm(d));
                let tp = m.through_plane_conductivity(nm(d), nm(t), EtcModel::TBR_DEMONSTRATED);
                assert!(tp.get() <= ip.get() + 1e-12);
            }
        }
    }

    #[test]
    fn experimental_films_in_plausible_band() {
        // The three measured growths should fall between the design floor
        // and the single-crystal bound — the fit cannot invert the data.
        let m = EtcModel::calibrated();
        for &(d, _temp) in &EXPERIMENTAL_FILMS {
            let k = m.in_plane_conductivity(nm(d)).get();
            assert!(
                (100.0..2200.0).contains(&k),
                "film with {d} nm grains: {k} W/m/K"
            );
        }
    }

    #[test]
    #[should_panic(expected = "grain size must be positive")]
    fn zero_grain_rejected() {
        let _ = EtcModel::calibrated().in_plane_conductivity(Length::ZERO);
    }

    #[test]
    fn intra_grain_dominates_small_sizes() {
        // At very small grains the size effect, not the boundary term,
        // controls k: removing the boundary resistance changes k by less
        // than the size effect itself.
        let m = EtcModel::calibrated();
        let no_gb = EtcModel {
            grain_boundary_resistance: AreaThermalResistance::ZERO,
            ..m
        };
        let k_full = m.in_plane_conductivity(nm(5.0)).get();
        let k_nogb = no_gb.in_plane_conductivity(nm(5.0)).get();
        let k_bulk = m.single_crystal_k.get();
        assert!(k_nogb / k_full < k_bulk / k_nogb);
    }
}
