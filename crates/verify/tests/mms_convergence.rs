//! Manufactured-solution convergence: every solver in the workspace
//! must reproduce the analytic fields of `tsc_verify::mms` at the FV
//! scheme's design order (~2; asserted ≥ 1.8 in L2 to leave room for
//! pre-asymptotic wobble, and the absolute error on the finest mesh
//! must be small in kelvin terms).

use tsc_thermal::{
    CgSolver, MgSolver, Precision, Preconditioner, Problem, Smoother, Solution, SolveError,
    SorSolver,
};
use tsc_verify::mms::{observed_orders, MmsCase};

const CASES: [fn() -> MmsCase; 2] = [MmsCase::trig_smooth, MmsCase::contrast_slab];

fn assert_second_order(
    label: &str,
    meshes: &[usize],
    solve: impl FnMut(&Problem) -> Result<Solution, SolveError> + Copy,
) {
    for case in CASES {
        let case = case();
        let errors = case
            .refine(meshes, solve)
            .unwrap_or_else(|e| panic!("{label}/{}: solve failed: {e:?}", case.name()));
        let orders = observed_orders(&errors);
        // The finest-mesh error must be decisively sub-kelvin so the
        // order is measured against a meaningful signal, not noise.
        let finest = errors.last().expect("non-empty refinement");
        assert!(
            finest.l2 < 0.1 && finest.linf < 0.5,
            "{label}/{}: finest-mesh error too large (l2 {:.3e} K, linf {:.3e} K)",
            case.name(),
            finest.l2,
            finest.linf,
        );
        for (step, order) in orders.iter().enumerate() {
            assert!(
                order.l2 >= 1.8,
                "{label}/{}: observed L2 order {:.3} < 1.8 at refinement {step} \
                 (errors: {:?})",
                case.name(),
                order.l2,
                errors.iter().map(|e| e.l2).collect::<Vec<_>>(),
            );
            assert!(
                order.linf >= 1.5,
                "{label}/{}: observed L∞ order {:.3} < 1.5 at refinement {step}",
                case.name(),
                order.linf,
            );
        }
    }
}

#[test]
fn cg_jacobi_is_second_order() {
    assert_second_order("cg-jacobi", &[8, 16, 32], |p| {
        CgSolver::new().with_tolerance(1e-10).solve(p)
    });
}

#[test]
fn cg_multigrid_is_second_order() {
    assert_second_order("cg-mg", &[8, 16, 32], |p| {
        CgSolver::new()
            .with_preconditioner(Preconditioner::Multigrid)
            .with_tolerance(1e-10)
            .solve(p)
    });
}

#[test]
fn cg_mixed_is_second_order() {
    // The f32-inner / f64-refined path must hit the same discretization
    // order as the pure-f64 solvers: the refinement loop, not the f32
    // arithmetic, owns the solver tolerance, so any order loss here
    // means single-precision error is leaking into the answer.
    assert_second_order("cg-mixed", &[8, 16, 32], |p| {
        CgSolver::new()
            .with_precision(Precision::Mixed)
            .with_tolerance(1e-10)
            .solve(p)
    });
}

#[test]
fn cg_mixed_chebyshev_is_second_order() {
    assert_second_order("cg-mixed-cheb", &[8, 16, 32], |p| {
        CgSolver::new()
            .with_precision(Precision::Mixed)
            .with_smoother(Smoother::Chebyshev)
            .with_tolerance(1e-10)
            .solve(p)
    });
}

#[test]
fn sor_is_second_order() {
    // SOR converges slowly at fine meshes; a slightly coarser ladder
    // keeps the (debug-build) runtime in check without changing what is
    // verified: two successive halvings of the pitch.
    assert_second_order("sor", &[6, 12, 24], |p| {
        SorSolver::new().with_tolerance(1e-10).solve(p)
    });
}

#[test]
fn standalone_mg_is_second_order() {
    assert_second_order("mg", &[6, 12, 24], |p| {
        MgSolver::new().with_tolerance(1e-10).solve(p)
    });
}
