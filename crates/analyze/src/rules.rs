//! The lint rules and the allow-list machinery.
//!
//! Every rule reports `file:line` diagnostics and is individually
//! suppressible at the violation site with an *explained* directive:
//!
//! ```text
//! // tsc-analyze: allow(<rule>): <why this site is sound>
//! ```
//!
//! on the same line as the violation or in the comment block immediately
//! above it. A directive without an explanation is itself a violation —
//! the point of the gate is that every exception carries its argument.
//!
//! | rule            | scope                    | what it enforces |
//! |-----------------|--------------------------|------------------|
//! | `safety-comment`| everywhere               | every `unsafe` site carries `// SAFETY:` (or a `# Safety` doc section) |
//! | `no-static-mut` | everywhere               | no `static mut` items |
//! | `no-unwrap`     | numeric library code     | no `.unwrap()` / `.expect()` outside `#[cfg(test)]` |
//! | `float-eq`      | numeric library code     | no `==` / `!=` against float literals (use tolerance helpers) |
//! | `hash-iter`     | numeric library code     | no `HashMap`/`HashSet` iteration feeding numeric reductions (nondeterministic order) |
//!
//! Four further rules share the same allow-list names but are emitted by
//! the cross-file concurrency pass ([`crate::lockgraph`]): `lock-order`,
//! `no-alloc-hot`, `guard-across-await-free-blocking`, and
//! `no-wallclock-numeric`.
//!
//! "Numeric library code" means `src/` (excluding `src/bin/`) of the
//! numeric crates ([`NUMERIC_CRATES`]), outside `#[cfg(test)]` items —
//! tests and benches legitimately unwrap and compare bitwise.

use crate::lexer::{lex, Comment, Token, TokenKind};
use std::collections::BTreeSet;

/// Crates whose library code carries the numeric-policy rules
/// (`no-unwrap`, `float-eq`, `hash-iter`).
pub const NUMERIC_CRATES: &[&str] = &[
    "thermal",
    "core",
    "homogenize",
    "phydes",
    "units",
    "geometry",
    "materials",
    "pdk",
    "designs",
];

/// Every rule name the allow-list accepts. The last four are emitted by
/// the cross-file concurrency pass ([`crate::lockgraph`]), not by
/// [`lint_source`]; they share the directive discipline.
pub const RULES: &[&str] = &[
    "safety-comment",
    "no-static-mut",
    "no-unwrap",
    "float-eq",
    "hash-iter",
    "lock-order",
    "no-alloc-hot",
    "guard-across-await-free-blocking",
    "no-wallclock-numeric",
];

/// How a file participates in the lint pass (derived from its path by
/// [`crate::walk::classify`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileClass {
    /// Library code: under a crate's `src/`, not under `src/bin/`,
    /// `tests/`, `benches/` or `examples/`.
    pub is_library: bool,
    /// Belongs to one of [`NUMERIC_CRATES`].
    pub is_numeric: bool,
}

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// 1-based line.
    pub line: usize,
    /// Rule identifier (one of [`RULES`], or the meta-rules
    /// `allow-missing-reason` / `unknown-rule`).
    pub rule: &'static str,
    pub message: String,
}

/// An `// tsc-analyze: allow(rule): reason` directive.
#[derive(Debug, Clone)]
struct Directive {
    line: usize,
    rule: String,
    reason: String,
}

const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "values",
    "values_mut",
    "into_values",
    "keys",
    "into_keys",
    "drain",
];

const REDUCERS: &[&str] = &[
    "sum",
    "product",
    "fold",
    "reduce",
    "min_by",
    "max_by",
    "min_by_key",
    "max_by_key",
];

/// Lints one file's source text. Returns the surviving (non-suppressed)
/// violations, sorted by line.
pub fn lint_source(src: &str, class: FileClass) -> Vec<Violation> {
    let lexed = lex(src);
    let ctx = Context::build(&lexed.tokens, &lexed.comments);
    let mut raw = Vec::new();

    rule_safety_comment(&lexed.tokens, &ctx, &mut raw);
    rule_static_mut(&lexed.tokens, &mut raw);
    if class.is_library && class.is_numeric {
        rule_no_unwrap(&lexed.tokens, &ctx, &mut raw);
        rule_float_eq(&lexed.tokens, &ctx, &mut raw);
        rule_hash_iter(&lexed.tokens, &ctx, &mut raw);
    }

    let mut out: Vec<Violation> = raw
        .into_iter()
        .filter(|v| !ctx.suppressed(v.line, v.rule))
        .collect();
    // Malformed directives are violations in their own right and cannot
    // be suppressed.
    for d in &ctx.directives {
        if !RULES.contains(&d.rule.as_str()) {
            out.push(Violation {
                line: d.line,
                rule: "unknown-rule",
                message: format!(
                    "allow-list names unknown rule `{}` (known: {})",
                    d.rule,
                    RULES.join(", ")
                ),
            });
        } else if d.reason.is_empty() {
            out.push(Violation {
                line: d.line,
                rule: "allow-missing-reason",
                message: format!(
                    "allow({}) requires an explanation: `// tsc-analyze: allow({}): <why>`",
                    d.rule, d.rule
                ),
            });
        }
    }
    out.sort_by_key(|v| (v.line, v.rule));
    out
}

/// Per-file line/region knowledge shared by the rules (and by the
/// cross-file passes in [`crate::lockgraph`], which reuse the directive
/// and test-region machinery).
pub struct Context {
    /// Lines whose only content is comments (no tokens at all).
    comment_only: BTreeSet<usize>,
    /// Lines whose tokens all belong to `#[...]` attributes.
    attr_only: BTreeSet<usize>,
    /// Comments grouped by starting line.
    comments: Vec<Comment>,
    /// Inclusive line ranges covered by `#[cfg(test)]` items.
    test_regions: Vec<(usize, usize)>,
    directives: Vec<Directive>,
}

impl Context {
    #[must_use]
    pub fn build(tokens: &[Token], comments: &[Comment]) -> Self {
        let attr_spans = attribute_spans(tokens);
        let mut token_lines = BTreeSet::new();
        let mut code_lines = BTreeSet::new();
        for (i, t) in tokens.iter().enumerate() {
            token_lines.insert(t.line);
            let in_attr = attr_spans.iter().any(|&(a, b)| i >= a && i <= b);
            if !in_attr {
                code_lines.insert(t.line);
            }
        }
        let comment_only = comments
            .iter()
            .map(|c| c.line)
            .filter(|l| !token_lines.contains(l))
            .collect();
        let attr_only = token_lines
            .iter()
            .copied()
            .filter(|l| !code_lines.contains(l))
            .collect();
        let directives = comments.iter().flat_map(parse_directives).collect();
        Self {
            comment_only,
            attr_only,
            comments: comments.to_vec(),
            test_regions: test_regions(tokens, &attr_spans),
            directives,
        }
    }

    #[must_use]
    pub fn in_test(&self, line: usize) -> bool {
        self.test_regions
            .iter()
            .any(|&(a, b)| line >= a && line <= b)
    }

    /// Comment text reachable from a violation at `line`: comments on the
    /// line itself plus the contiguous comment/attribute block above it.
    fn reachable_lines(&self, line: usize) -> Vec<usize> {
        let mut lines = vec![line];
        let mut l = line;
        while l > 1 {
            l -= 1;
            if self.comment_only.contains(&l) || self.attr_only.contains(&l) {
                lines.push(l);
            } else {
                break;
            }
        }
        lines
    }

    #[must_use]
    pub fn suppressed(&self, line: usize, rule: &str) -> bool {
        let reach = self.reachable_lines(line);
        self.directives
            .iter()
            .any(|d| d.rule == rule && !d.reason.is_empty() && reach.contains(&d.line))
    }

    /// True when the `unsafe` at `line` carries a safety argument: a
    /// `SAFETY:` comment on the same line or in the comment/attribute
    /// block above, or a `# Safety` doc section above (the convention for
    /// `unsafe fn` declarations).
    fn has_safety_comment(&self, line: usize) -> bool {
        let reach = self.reachable_lines(line);
        self.comments.iter().any(|c| {
            reach.contains(&c.line) && (c.text.contains("SAFETY:") || c.text.contains("# Safety"))
        })
    }
}

/// Token index spans `(start, end)` (inclusive) of every `#[...]` /
/// `#![...]` attribute.
fn attribute_spans(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].text == "#" {
            let mut j = i + 1;
            if j < tokens.len() && tokens[j].text == "!" {
                j += 1;
            }
            if j < tokens.len() && tokens[j].text == "[" {
                let mut depth = 0_i32;
                let mut k = j;
                while k < tokens.len() {
                    match tokens[k].text.as_str() {
                        "[" => depth += 1,
                        "]" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
                spans.push((i, k.min(tokens.len() - 1)));
                i = k + 1;
                continue;
            }
        }
        i += 1;
    }
    spans
}

/// Inclusive line ranges of items annotated `#[cfg(test)]` (or any
/// `cfg(...)` mentioning `test`): from the attribute to the end of the
/// following item (its matching `}` or terminating `;`).
fn test_regions(tokens: &[Token], attr_spans: &[(usize, usize)]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    for &(a, b) in attr_spans {
        let attr: Vec<&str> = tokens[a..=b].iter().map(|t| t.text.as_str()).collect();
        if !(attr.contains(&"cfg") && attr.contains(&"test")) {
            continue;
        }
        // Skip any further attributes stacked on the same item.
        let mut i = b + 1;
        while i < tokens.len() && tokens[i].text == "#" {
            if let Some(&(_, e)) = attr_spans.iter().find(|&&(s, _)| s == i) {
                i = e + 1;
            } else {
                break;
            }
        }
        // Find the item extent: first top-level `{...}` or a `;` that
        // arrives before any brace opens.
        let mut depth = 0_i32;
        let mut opened = false;
        let mut end_line = tokens.get(i).map_or(tokens[b].line, |t| t.line);
        while i < tokens.len() {
            match tokens[i].text.as_str() {
                "{" => {
                    depth += 1;
                    opened = true;
                }
                "}" => {
                    depth -= 1;
                    if opened && depth == 0 {
                        end_line = tokens[i].line;
                        break;
                    }
                }
                ";" if !opened && depth == 0 => {
                    end_line = tokens[i].line;
                    break;
                }
                _ => {}
            }
            end_line = tokens[i].line;
            i += 1;
        }
        regions.push((tokens[a].line, end_line));
    }
    regions
}

fn parse_directives(c: &Comment) -> Vec<Directive> {
    let mut out = Vec::new();
    // Directives live in plain comments only: doc comments *describe*
    // the directive syntax (this crate's own docs would otherwise trip
    // the parser) and are rendered to users, not to the gate.
    let trimmed = c.text.trim_start();
    if ["///", "//!", "/**", "/*!"]
        .iter()
        .any(|p| trimmed.starts_with(p))
    {
        return out;
    }
    let mut rest = c.text.as_str();
    while let Some(at) = rest.find("tsc-analyze:") {
        rest = &rest[at + "tsc-analyze:".len()..];
        let Some(open) = rest.find("allow(") else {
            break;
        };
        let after = &rest[open + "allow(".len()..];
        let Some(close) = after.find(')') else { break };
        let rule = after[..close].trim().to_string();
        let tail = &after[close + 1..];
        let reason = tail
            .strip_prefix(':')
            .map_or("", |r| r.trim())
            // A reason ends at the next directive, if any.
            .split("tsc-analyze:")
            .next()
            .unwrap_or("")
            .trim()
            .to_string();
        out.push(Directive {
            line: c.line,
            rule,
            reason,
        });
        rest = tail;
    }
    out
}

fn rule_safety_comment(tokens: &[Token], ctx: &Context, out: &mut Vec<Violation>) {
    for t in tokens {
        if t.kind == TokenKind::Ident && t.text == "unsafe" && !ctx.has_safety_comment(t.line) {
            out.push(Violation {
                line: t.line,
                rule: "safety-comment",
                message: "`unsafe` without a `// SAFETY:` comment (or `# Safety` doc section) \
                          stating why the invariants hold"
                    .to_string(),
            });
        }
    }
}

fn rule_static_mut(tokens: &[Token], out: &mut Vec<Violation>) {
    for w in tokens.windows(2) {
        if w[0].text == "static" && w[1].text == "mut" {
            out.push(Violation {
                line: w[0].line,
                rule: "no-static-mut",
                message: "`static mut` is a data race waiting to happen — use an atomic, \
                          `OnceLock`, or pass state explicitly"
                    .to_string(),
            });
        }
    }
}

fn rule_no_unwrap(tokens: &[Token], ctx: &Context, out: &mut Vec<Violation>) {
    for i in 1..tokens.len().saturating_sub(1) {
        let t = &tokens[i];
        if t.kind == TokenKind::Ident
            && (t.text == "unwrap" || t.text == "expect")
            && tokens[i - 1].text == "."
            && tokens[i + 1].text == "("
            && !ctx.in_test(t.line)
        {
            out.push(Violation {
                line: t.line,
                rule: "no-unwrap",
                message: format!(
                    "`.{}()` in numeric library code — propagate a `Result` (e.g. \
                     `SolveError`) or allow-list with the invariant that makes it infallible",
                    t.text
                ),
            });
        }
    }
}

fn rule_float_eq(tokens: &[Token], ctx: &Context, out: &mut Vec<Violation>) {
    for i in 0..tokens.len() {
        let t = &tokens[i];
        if t.kind != TokenKind::Punct || (t.text != "==" && t.text != "!=") || ctx.in_test(t.line) {
            continue;
        }
        let float_neighbour = [i.checked_sub(1), Some(i + 1)]
            .into_iter()
            .flatten()
            .filter_map(|j| tokens.get(j))
            .any(|n| n.kind == TokenKind::Float);
        if float_neighbour {
            out.push(Violation {
                line: t.line,
                rule: "float-eq",
                message: format!(
                    "`{}` against a float literal on temperatures/residuals — compare through \
                     a tolerance helper, or allow-list the exact-value invariant",
                    t.text
                ),
            });
        }
    }
}

fn rule_hash_iter(tokens: &[Token], ctx: &Context, out: &mut Vec<Violation>) {
    // Names bound to HashMap/HashSet in this file (type ascriptions and
    // constructor assignments).
    let mut tracked: BTreeSet<&str> = BTreeSet::new();
    for i in 0..tokens.len() {
        if tokens[i].kind != TokenKind::Ident
            || (tokens[i].text != "HashMap" && tokens[i].text != "HashSet")
        {
            continue;
        }
        let mut j = i;
        // Walk back over `: & mut` decoration to the bound name.
        while j > 0 {
            j -= 1;
            match tokens[j].text.as_str() {
                ":" | "&" | "mut" | "=" => continue,
                _ => break,
            }
        }
        if tokens[j].kind == TokenKind::Ident && j + 1 < i {
            tracked.insert(tokens[j].text.as_str());
        }
    }
    if tracked.is_empty() {
        return;
    }

    let flag = |out: &mut Vec<Violation>, line: usize, name: &str| {
        out.push(Violation {
            line,
            rule: "hash-iter",
            message: format!(
                "iteration over hash-ordered `{name}` feeds a numeric reduction — iteration \
                 order is nondeterministic across runs; use `BTreeMap`/`BTreeSet` or sort first"
            ),
        });
    };

    for i in 0..tokens.len() {
        let t = &tokens[i];
        if ctx.in_test(t.line) {
            continue;
        }
        // `map.values().sum()` — an iterator chain ending in a reducer.
        if t.kind == TokenKind::Ident
            && tracked.contains(t.text.as_str())
            && tokens.get(i + 1).is_some_and(|n| n.text == ".")
            && tokens
                .get(i + 2)
                .is_some_and(|n| ITER_METHODS.contains(&n.text.as_str()))
        {
            let chain_end = tokens[i + 3..]
                .iter()
                .take(80)
                .take_while(|n| n.text != ";")
                .any(|n| n.kind == TokenKind::Ident && REDUCERS.contains(&n.text.as_str()));
            if chain_end {
                flag(out, t.line, &t.text);
            }
        }
        // `for v in map.values() { acc += v; }` — loop-carried reduction.
        if t.kind == TokenKind::Ident && t.text == "for" {
            let header: Vec<usize> = (i + 1..tokens.len().min(i + 20))
                .take_while(|&j| tokens[j].text != "{")
                .collect();
            let over_tracked = header.iter().any(|&j| {
                tokens[j].kind == TokenKind::Ident && tracked.contains(tokens[j].text.as_str())
            });
            if !over_tracked {
                continue;
            }
            let Some(&body_open) = header.last().map(|&l| l + 1).as_ref() else {
                continue;
            };
            let mut depth = 0_i32;
            for j in body_open..tokens.len() {
                match tokens[j].text.as_str() {
                    "{" => depth += 1,
                    "}" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    "+=" | "-=" | "*=" | "/=" => {
                        let name = header
                            .iter()
                            .find_map(|&h| {
                                (tokens[h].kind == TokenKind::Ident
                                    && tracked.contains(tokens[h].text.as_str()))
                                .then(|| tokens[h].text.clone())
                            })
                            .unwrap_or_default();
                        flag(out, t.line, &name);
                        break;
                    }
                    _ => {}
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIB_NUMERIC: FileClass = FileClass {
        is_library: true,
        is_numeric: true,
    };

    fn rules_hit(src: &str) -> Vec<&'static str> {
        lint_source(src, LIB_NUMERIC)
            .into_iter()
            .map(|v| v.rule)
            .collect()
    }

    #[test]
    fn unsafe_without_safety_fires() {
        assert_eq!(
            rules_hit("fn f(p: *mut f64) { unsafe { *p = 1.5; } }"),
            vec!["safety-comment"]
        );
    }

    #[test]
    fn unsafe_with_safety_block_above_passes() {
        let src = "fn f(p: *mut f64) {\n    // SAFETY: p is valid for writes.\n    unsafe { *p = 1.5; }\n}";
        assert!(rules_hit(src).is_empty());
    }

    #[test]
    fn safety_doc_section_covers_unsafe_fn_through_attributes() {
        let src =
            "/// # Safety\n/// Caller upholds i < len.\n#[inline]\npub unsafe fn get(i: usize) {}";
        assert!(rules_hit(src).is_empty());
    }

    #[test]
    fn unwrap_in_library_fires_but_not_in_tests() {
        assert_eq!(rules_hit("fn f() { x().unwrap(); }"), vec!["no-unwrap"]);
        let test_src = "#[cfg(test)]\nmod tests {\n    fn f() { x().unwrap(); }\n}";
        assert!(rules_hit(test_src).is_empty());
    }

    #[test]
    fn expect_is_allowed_with_explained_directive_only() {
        let with_reason =
            "fn f() { x().expect(\"invariant\"); // tsc-analyze: allow(no-unwrap): ctor checks it\n}";
        assert!(rules_hit(with_reason).is_empty());
        let bare = "fn f() { x().expect(\"invariant\"); // tsc-analyze: allow(no-unwrap)\n}";
        assert_eq!(
            rules_hit(bare),
            vec!["allow-missing-reason", "no-unwrap"],
            "an unexplained allow suppresses nothing and is itself flagged"
        );
    }

    #[test]
    fn unwrap_or_is_not_unwrap() {
        assert!(rules_hit("fn f() { x().unwrap_or(0.0); }").is_empty());
    }

    #[test]
    fn float_eq_fires_on_literals() {
        assert_eq!(
            rules_hit("fn f(x: f64) -> bool { x == 0.0 }"),
            vec!["float-eq"]
        );
        assert_eq!(
            rules_hit("fn f(x: f64) -> bool { 1e-9 != x }"),
            vec!["float-eq"]
        );
        assert!(rules_hit("fn f(x: usize) -> bool { x == 0 }").is_empty());
    }

    #[test]
    fn static_mut_fires_even_in_tests() {
        let src = "#[cfg(test)]\nmod tests {\n    static mut COUNTER: usize = 0;\n}";
        assert_eq!(rules_hit(src), vec!["no-static-mut"]);
    }

    #[test]
    fn hash_iteration_into_reduction_fires() {
        let src = "use std::collections::HashMap;\nfn f(m: &HashMap<u32, f64>) -> f64 { m.values().sum() }";
        assert_eq!(rules_hit(src), vec!["hash-iter"]);
    }

    #[test]
    fn hash_for_loop_reduction_fires() {
        let src = "use std::collections::HashMap;\nfn f() -> f64 {\n    let m: HashMap<u32, f64> = HashMap::new();\n    let mut acc = 0.0;\n    for (_, v) in &m { acc += v; }\n    acc\n}";
        assert_eq!(rules_hit(src), vec!["hash-iter"]);
    }

    #[test]
    fn hash_lookup_without_iteration_passes() {
        let src = "use std::collections::HashMap;\nfn f(m: &HashMap<u32, f64>) -> Option<&f64> { m.get(&1) }";
        assert!(rules_hit(src).is_empty());
    }

    #[test]
    fn unknown_rule_directive_is_flagged() {
        let src = "// tsc-analyze: allow(no-such-rule): whatever\nfn f() {}";
        assert_eq!(rules_hit(src), vec!["unknown-rule"]);
    }

    #[test]
    fn non_numeric_scope_skips_policy_rules_but_not_safety() {
        let class = FileClass {
            is_library: true,
            is_numeric: false,
        };
        let src = "fn f(x: f64) { x().unwrap(); let _ = x == 0.0; unsafe { noop(); } }";
        let rules: Vec<_> = lint_source(src, class)
            .into_iter()
            .map(|v| v.rule)
            .collect();
        assert_eq!(rules, vec!["safety-comment"]);
    }

    #[test]
    fn strings_and_comments_never_fire() {
        let src = "fn f() {\n    // calling .unwrap() here would be bad; static mut too\n    let s = \"x.unwrap() == 1.0 static mut\";\n    drop(s);\n}";
        assert!(rules_hit(src).is_empty());
    }
}
