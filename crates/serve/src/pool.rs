//! LRU pools for per-geometry service state.
//!
//! Two levels, both capped by `--pool-cap` (0 disables both, for no-pool
//! A/B benchmarking):
//!
//! * [`ContextPool`] — [`SolveContext`]s keyed by the PR-2 operator
//!   fingerprint.  A pooled context carries the assembled operator, the
//!   multigrid hierarchy, and the last temperature field for one
//!   geometry, so a repeat solve skips assembly and hierarchy
//!   construction and warm-starts from the previous field.  A key
//!   collision is harmless because `SolveContext` revalidates its own
//!   `OperatorKey` on every solve and rebuilds if the geometry actually
//!   differs.
//! * The *stack cache* (an [`LruPool<Stack3d>`] keyed by the canonical
//!   request hash) — the built mesh/problem for a `POST /v1/solve` body.
//!   Building a stack (pillar map, homogenization, assembly inputs) costs
//!   about as much as a cold solve, so without this cache a pooled hot
//!   request would still pay half its cold cost.  The canonical-body key
//!   is exact: the build is deterministic in the request, so a hit cannot
//!   be stale.
//!
//! `take`/`checkout` *remove* the entry — state is owned by exactly one
//! worker at a time, so two concurrent solves on the same geometry get
//! distinct copies rather than a shared lock.

use std::sync::Mutex;

use tsc_core::stack::Stack3d;
use tsc_thermal::SolveContext;

/// Outcome of a checkout, for metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Checkout {
    Hit,
    Miss,
}

/// LRU keyed by `u64`.  The backing store is a `Vec` in recency order
/// (most recent at the back); pool caps are small (tens), so linear scans
/// beat a hash map + intrusive list in both code size and constant
/// factor.
pub struct LruPool<T> {
    cap: usize,
    entries: Mutex<Vec<(u64, T)>>,
}

impl<T> LruPool<T> {
    /// `cap == 0` disables the pool entirely: every take misses and puts
    /// are dropped.
    pub fn new(cap: usize) -> Self {
        LruPool {
            cap,
            entries: Mutex::new(Vec::new()),
        }
    }

    pub fn capacity(&self) -> usize {
        self.cap
    }

    pub fn len(&self) -> usize {
        match self.entries.lock() {
            Ok(entries) => entries.len(),
            Err(poisoned) => poisoned.into_inner().len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Remove and return the entry for `key`, if pooled.
    pub fn take(&self, key: u64) -> Option<T> {
        if self.cap == 0 {
            return None;
        }
        let mut entries = match self.entries.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        let i = entries.iter().position(|(k, _)| *k == key)?;
        Some(entries.remove(i).1)
    }

    /// Insert (or refresh) `key`.  Evicts least-recently-used entries when
    /// over capacity; returns the number of evictions.
    pub fn put(&self, key: u64, value: T) -> usize {
        if self.cap == 0 {
            return 0;
        }
        let mut entries = match self.entries.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        // Replace any entry another worker put for the same key while we
        // held ours — keeping the newest state is the better reuse.
        if let Some(i) = entries.iter().position(|(k, _)| *k == key) {
            entries.remove(i);
        }
        entries.push((key, value));
        let mut evicted = 0;
        while entries.len() > self.cap {
            entries.remove(0);
            evicted += 1;
        }
        evicted
    }
}

/// The [`SolveContext`] level: misses manufacture a fresh context.
pub struct ContextPool {
    inner: LruPool<SolveContext>,
}

impl ContextPool {
    /// `cap == 0` disables pooling entirely: every checkout is a miss and
    /// checkins are dropped.  Used for no-pool A/B benchmarking.
    pub fn new(cap: usize) -> Self {
        ContextPool {
            inner: LruPool::new(cap),
        }
    }

    pub fn capacity(&self) -> usize {
        self.inner.capacity()
    }

    pub fn len(&self) -> usize {
        self.inner.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Take the context for `key` out of the pool, or build a fresh one.
    pub fn checkout(&self, key: u64) -> (SolveContext, Checkout) {
        match self.inner.take(key) {
            Some(ctx) => (ctx, Checkout::Hit),
            None => (SolveContext::new(), Checkout::Miss),
        }
    }

    /// Return a context to the pool.  Evicts the least-recently-used entry
    /// when over capacity; returns the number of evictions (0 or 1).
    pub fn checkin(&self, key: u64, ctx: SolveContext) -> usize {
        self.inner.put(key, ctx)
    }
}

/// Both pool levels, built together from one `--pool-cap`.
pub struct ServicePools {
    pub contexts: ContextPool,
    pub stacks: LruPool<Stack3d>,
}

impl ServicePools {
    pub fn new(cap: usize) -> Self {
        ServicePools {
            contexts: ContextPool::new(cap),
            stacks: LruPool::new(cap),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_checkout_misses_then_checkin_makes_it_hit() {
        let pool = ContextPool::new(2);
        let (ctx, outcome) = pool.checkout(42);
        assert_eq!(outcome, Checkout::Miss);
        pool.checkin(42, ctx);
        assert_eq!(pool.len(), 1);
        let (_, outcome) = pool.checkout(42);
        assert_eq!(outcome, Checkout::Hit);
        // checkout removed the entry: a second checkout of the same key misses.
        let (_, outcome) = pool.checkout(42);
        assert_eq!(outcome, Checkout::Miss);
    }

    #[test]
    fn lru_eviction_drops_the_oldest_key() {
        let pool = ContextPool::new(2);
        for key in [1u64, 2, 3] {
            let (ctx, _) = pool.checkout(key);
            pool.checkin(key, ctx);
        }
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.checkout(1).1, Checkout::Miss, "oldest evicted");
        assert_eq!(pool.checkout(3).1, Checkout::Hit);
        assert_eq!(pool.checkout(2).1, Checkout::Hit);
    }

    #[test]
    fn touching_a_key_refreshes_its_recency() {
        let pool = ContextPool::new(2);
        for key in [1u64, 2] {
            let (ctx, _) = pool.checkout(key);
            pool.checkin(key, ctx);
        }
        // Touch 1 so that 2 becomes the LRU victim.
        let (ctx, outcome) = pool.checkout(1);
        assert_eq!(outcome, Checkout::Hit);
        pool.checkin(1, ctx);
        let (ctx, _) = pool.checkout(3);
        let evicted = pool.checkin(3, ctx);
        assert_eq!(evicted, 1);
        assert_eq!(pool.checkout(2).1, Checkout::Miss, "2 was the LRU victim");
        assert_eq!(pool.checkout(1).1, Checkout::Hit);
    }

    #[test]
    fn zero_capacity_disables_pooling() {
        let pool = ContextPool::new(0);
        let (ctx, outcome) = pool.checkout(7);
        assert_eq!(outcome, Checkout::Miss);
        assert_eq!(pool.checkin(7, ctx), 0);
        assert_eq!(pool.len(), 0);
        assert_eq!(pool.checkout(7).1, Checkout::Miss);
    }

    #[test]
    fn generic_pool_takes_and_puts_arbitrary_state() {
        let pool: LruPool<String> = LruPool::new(1);
        assert!(pool.take(9).is_none());
        assert_eq!(pool.put(9, "nine".into()), 0);
        assert_eq!(pool.put(10, "ten".into()), 1, "cap 1 evicts the older key");
        assert!(pool.take(9).is_none());
        assert_eq!(pool.take(10).as_deref(), Some("ten"));
        assert!(pool.is_empty());
    }
}
