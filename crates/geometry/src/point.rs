//! Points and grid indices.

use tsc_units::Length;

/// A 2-D point in physical layout coordinates.
///
/// ```
/// use tsc_geometry::Point;
/// use tsc_units::Length;
/// let a = Point::new(Length::from_micrometers(3.0), Length::from_micrometers(4.0));
/// let b = Point::origin();
/// assert!((a.distance(b).micrometers() - 5.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: Length,
    /// Vertical coordinate.
    pub y: Length,
}

impl Point {
    /// Creates a point from coordinates.
    #[must_use]
    pub const fn new(x: Length, y: Length) -> Self {
        Self { x, y }
    }

    /// The origin `(0, 0)`.
    #[must_use]
    pub const fn origin() -> Self {
        Self {
            x: Length::ZERO,
            y: Length::ZERO,
        }
    }

    /// Euclidean distance to `other`.
    #[must_use]
    pub fn distance(self, other: Self) -> Length {
        let dx = self.x.meters() - other.x.meters();
        let dy = self.y.meters() - other.y.meters();
        Length::from_meters(dx.hypot(dy))
    }

    /// Manhattan (L1) distance to `other` — the natural routing metric.
    #[must_use]
    pub fn manhattan_distance(self, other: Self) -> Length {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Component-wise translation.
    #[must_use]
    pub fn translated(self, dx: Length, dy: Length) -> Self {
        Self {
            x: self.x + dx,
            y: self.y + dy,
        }
    }
}

impl core::fmt::Display for Point {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "({:.3} µm, {:.3} µm)",
            self.x.micrometers(),
            self.y.micrometers()
        )
    }
}

/// A 2-D cell index into a [`Grid2`](crate::Grid2).
///
/// ```
/// use tsc_geometry::Index2;
/// let ij = Index2::new(3, 5);
/// assert_eq!(ij.flat(8), 5 * 8 + 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Index2 {
    /// Column index (x direction).
    pub i: usize,
    /// Row index (y direction).
    pub j: usize,
}

impl Index2 {
    /// Creates an index.
    #[must_use]
    pub const fn new(i: usize, j: usize) -> Self {
        Self { i, j }
    }

    /// Row-major flat offset for a grid `nx` cells wide.
    #[must_use]
    pub const fn flat(self, nx: usize) -> usize {
        self.j * nx + self.i
    }
}

impl core::fmt::Display for Index2 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "[{}, {}]", self.i, self.j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Point::new(Length::from_micrometers(0.0), Length::ZERO);
        let b = Point::new(Length::from_micrometers(3.0), Length::from_micrometers(4.0));
        assert!((a.distance(b).micrometers() - 5.0).abs() < 1e-9);
        assert!((b.distance(a).micrometers() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn manhattan_distance() {
        let a = Point::origin();
        let b = Point::new(Length::from_micrometers(3.0), Length::from_micrometers(4.0));
        assert!((a.manhattan_distance(b).micrometers() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn translation() {
        let p = Point::origin().translated(
            Length::from_nanometers(100.0),
            Length::from_nanometers(-50.0),
        );
        assert!((p.x.nanometers() - 100.0).abs() < 1e-9);
        assert!((p.y.nanometers() + 50.0).abs() < 1e-9);
    }

    #[test]
    fn flat_indexing_is_row_major() {
        assert_eq!(Index2::new(0, 0).flat(10), 0);
        assert_eq!(Index2::new(9, 0).flat(10), 9);
        assert_eq!(Index2::new(0, 1).flat(10), 10);
        assert_eq!(Index2::new(4, 3).flat(10), 34);
    }
}
