//! Synthesis-time period/area trade — the Design Compiler substitute of
//! Sec. IIIC.
//!
//! The paper sweeps the synthesis target period from 0.1 ns to 2 ns:
//! synthesis fails to close below 0.7 ns (Rocket) / 0.9 ns (Gemmini),
//! and relaxing from that minimum to 0.8 ns / 1.0 ns buys ~10 % area
//! (fewer buffers, smaller cells). We model the classic area-vs-period
//! banana curve `A(T) = A∞ · (1 + c/(T − T_min))`, calibrated to those
//! two published points, and the timing report arithmetic (delay =
//! target period + worst negative slack) used for the penalty metric.

use tsc_units::{Delay, Ratio};

/// The area-vs-target-period model of one design's synthesis run.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthesisModel {
    /// Below this target period synthesis does not close.
    pub min_period: Delay,
    /// Asymptotic (fully relaxed) area, arbitrary units.
    pub relaxed_area: f64,
    /// Curvature constant of the banana curve (seconds).
    pub curvature: f64,
}

impl SynthesisModel {
    /// Rocket: closes at 0.7 ns; 0.8 ns target recovers ~10 % area.
    #[must_use]
    pub fn rocket() -> Self {
        Self::calibrated(Delay::from_nanoseconds(0.7), Delay::from_nanoseconds(0.8))
    }

    /// Gemmini: closes at 0.9 ns; 1.0 ns target recovers ~10 % area.
    #[must_use]
    pub fn gemmini() -> Self {
        Self::calibrated(Delay::from_nanoseconds(0.9), Delay::from_nanoseconds(1.0))
    }

    /// Calibrates the curve so that the area at `min_period` is ~10 %
    /// above the area at `target` (the paper's reported saving), with
    /// the relaxed area normalized to 1.
    ///
    /// # Panics
    ///
    /// Panics unless `target > min_period`.
    #[must_use]
    pub fn calibrated(min_period: Delay, target: Delay) -> Self {
        assert!(
            target > min_period,
            "target period must exceed the closure minimum"
        );
        // A(T) = 1 + c/(T - Tmin). Pick c so A(T_min + eps_syn)/A(target)
        // = 1.10, where eps_syn is the smallest slack synthesis actually
        // achieves at the wall (~2% of Tmin).
        let eps = 0.02 * min_period.get();
        let dt = target.get() - min_period.get();
        // 1 + c/eps = 1.1 * (1 + c/dt)  =>  c (1/eps - 1.1/dt) = 0.1.
        let c = 0.1 / (1.0 / eps - 1.1 / dt);
        Self {
            min_period,
            relaxed_area: 1.0,
            curvature: c,
        }
    }

    /// Area (arbitrary units) at a target period; `None` when synthesis
    /// cannot close.
    #[must_use]
    pub fn area(&self, target: Delay) -> Option<f64> {
        let eps = 0.02 * self.min_period.get();
        let wall = self.min_period.get() + eps;
        if target.get() < wall {
            return None;
        }
        Some(self.relaxed_area * (1.0 + self.curvature / (target.get() - self.min_period.get())))
    }

    /// Area saving of relaxing from the closure wall to `target`.
    #[must_use]
    pub fn saving(&self, target: Delay) -> Option<Ratio> {
        let eps = 0.02 * self.min_period.get();
        let at_wall = self.area(Delay::new(self.min_period.get() + eps))?;
        let at_target = self.area(target)?;
        Some(Ratio::from_fraction(1.0 - at_target / at_wall))
    }
}

/// A place-and-route timing report: the paper's delay metric is the sum
/// of the target period and the worst negative slack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingReport {
    /// Synthesis/P&R target period.
    pub target_period: Delay,
    /// Worst negative slack (negative = failing, positive = margin
    /// convention: stored as the amount the worst path *exceeds* the
    /// period; 0 when met).
    pub worst_negative_slack: Delay,
}

impl TimingReport {
    /// A report that meets timing exactly.
    #[must_use]
    pub fn met(target_period: Delay) -> Self {
        Self {
            target_period,
            worst_negative_slack: Delay::ZERO,
        }
    }

    /// The paper's delay metric: `target period + WNS`.
    #[must_use]
    pub fn delay(&self) -> Delay {
        self.target_period + self.worst_negative_slack
    }

    /// Delay penalty relative to a baseline report.
    #[must_use]
    pub fn penalty_vs(&self, baseline: &TimingReport) -> Ratio {
        Ratio::from_fraction(self.delay() / baseline.delay() - 1.0)
    }

    /// Applies a multiplicative slowdown (from the
    /// [`DelayModel`](crate::timing::DelayModel)) to the worst path.
    #[must_use]
    pub fn slowed_by(&self, penalty: Ratio) -> Self {
        let new_delay = self.delay().get() * (1.0 + penalty.fraction());
        Self {
            target_period: self.target_period,
            worst_negative_slack: Delay::new(new_delay - self.target_period.get()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closure_walls_match_paper() {
        assert!(SynthesisModel::rocket()
            .area(Delay::from_nanoseconds(0.65))
            .is_none());
        assert!(SynthesisModel::rocket()
            .area(Delay::from_nanoseconds(0.8))
            .is_some());
        assert!(SynthesisModel::gemmini()
            .area(Delay::from_nanoseconds(0.85))
            .is_none());
    }

    #[test]
    fn ten_percent_saving_at_paper_targets() {
        let r = SynthesisModel::rocket()
            .saving(Delay::from_nanoseconds(0.8))
            .expect("closes");
        assert!((r.percent() - 10.0).abs() < 1.5, "Rocket saving {r}");
        let g = SynthesisModel::gemmini()
            .saving(Delay::from_nanoseconds(1.0))
            .expect("closes");
        assert!((g.percent() - 10.0).abs() < 1.5, "Gemmini saving {g}");
    }

    #[test]
    fn area_monotone_decreasing_in_period() {
        let m = SynthesisModel::gemmini();
        let mut last = f64::INFINITY;
        for ns in [0.92, 1.0, 1.2, 1.5, 2.0] {
            let a = m.area(Delay::from_nanoseconds(ns)).expect("closes");
            assert!(a < last, "area must fall as timing relaxes");
            last = a;
        }
        assert!(last > m.relaxed_area, "never below the asymptote");
    }

    #[test]
    fn timing_report_arithmetic() {
        let base = TimingReport::met(Delay::from_nanoseconds(1.0));
        assert!((base.delay().nanoseconds() - 1.0).abs() < 1e-12);
        let slowed = base.slowed_by(Ratio::from_percent(3.0));
        assert!((slowed.delay().nanoseconds() - 1.03).abs() < 1e-12);
        assert!((slowed.penalty_vs(&base).percent() - 3.0).abs() < 1e-9);
        assert!((slowed.worst_negative_slack.picoseconds() - 30.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "must exceed")]
    fn degenerate_calibration_rejected() {
        let _ =
            SynthesisModel::calibrated(Delay::from_nanoseconds(1.0), Delay::from_nanoseconds(0.9));
    }
}
