//! Golden-flow regression harness.
//!
//! A golden test runs one paper flow on a reduced fixture, serializes
//! the scalars that matter (junction temperature, pillar counts, budget
//! spends, iteration counts) to a [`Json`] record through
//! `tsc_bench::json` (sorted keys, so snapshots diff cleanly), and
//! compares against the checked-in snapshot under `tests/golden/` with
//! per-field *relative* tolerances.
//!
//! * Mismatch → the test fails listing every divergent path, and the
//!   actual record is written to `target/golden-diffs/<name>.json` so
//!   CI can upload it as an artifact.
//! * Intentional change → re-bless with
//!   `UPDATE_GOLDEN=1 cargo test -p tsc-verify --test golden_flows`
//!   and commit the rewritten snapshot. Emission is key-sorted and
//!   deterministic, so the diff is exactly the fields that moved.

use std::fs;
use std::path::PathBuf;

use tsc_bench::json::Json;

/// Relative tolerances for golden comparison: a default plus per-field
/// overrides matched by the final path segment.
#[derive(Debug, Clone)]
pub struct Tolerances {
    default_rel: f64,
    per_field: Vec<(String, f64)>,
}

impl Tolerances {
    /// A tolerance set where every numeric field must agree to
    /// `default_rel` relative error.
    #[must_use]
    pub fn new(default_rel: f64) -> Self {
        Self {
            default_rel,
            per_field: Vec::new(),
        }
    }

    /// Overrides the tolerance for fields whose *name* (final path
    /// segment) equals `field`; chainable.
    #[must_use]
    pub fn field(mut self, field: &str, rel: f64) -> Self {
        self.per_field.push((field.to_string(), rel));
        self
    }

    fn for_path(&self, path: &str) -> f64 {
        let leaf = path.rsplit('.').next().unwrap_or(path);
        self.per_field
            .iter()
            .find(|(name, _)| name == leaf)
            .map_or(self.default_rel, |&(_, rel)| rel)
    }
}

/// Compares two records and returns one human-readable line per
/// divergence (empty = match). Numbers compare relatively per
/// [`Tolerances`]; everything else compares exactly; object key sets
/// must match in both directions.
#[must_use]
pub fn diff(expected: &Json, actual: &Json, tol: &Tolerances) -> Vec<String> {
    let mut out = Vec::new();
    diff_at("$", expected, actual, tol, &mut out);
    out
}

fn diff_at(path: &str, expected: &Json, actual: &Json, tol: &Tolerances, out: &mut Vec<String>) {
    match (expected, actual) {
        (Json::Num(e), Json::Num(a)) => {
            let rel = tol.for_path(path);
            if !crate::close_rel(*e, *a, rel) {
                out.push(format!(
                    "{path}: expected {e}, got {a} (rel diff {:.3e} > tolerance {rel:.1e})",
                    (e - a).abs() / e.abs().max(a.abs()).max(f64::MIN_POSITIVE),
                ));
            }
        }
        (Json::Array(e), Json::Array(a)) => {
            if e.len() != a.len() {
                out.push(format!("{path}: array length {} vs {}", e.len(), a.len()));
                return;
            }
            for (i, (ev, av)) in e.iter().zip(a).enumerate() {
                diff_at(&format!("{path}[{i}]"), ev, av, tol, out);
            }
        }
        (Json::Object(e), Json::Object(a)) => {
            for (key, ev) in e {
                match a.iter().find(|(k, _)| k == key) {
                    Some((_, av)) => diff_at(&format!("{path}.{key}"), ev, av, tol, out),
                    None => out.push(format!("{path}.{key}: missing from actual record")),
                }
            }
            for (key, _) in a {
                if !e.iter().any(|(k, _)| k == key) {
                    out.push(format!("{path}.{key}: not in golden snapshot"));
                }
            }
        }
        (e, a) if e == a => {}
        (e, a) => out.push(format!("{path}: expected {e:?}, got {a:?}")),
    }
}

/// The checked-in snapshot directory (`<repo>/tests/golden`).
#[must_use]
pub fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

fn diffs_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/golden-diffs")
}

/// Asserts `actual` matches the snapshot `tests/golden/<name>.json`.
///
/// With `UPDATE_GOLDEN=1` in the environment the snapshot is rewritten
/// from `actual` instead (re-blessing); emission is key-sorted so the
/// resulting diff is deterministic.
///
/// # Panics
///
/// Panics when the snapshot is missing (with the bless command), fails
/// to parse, or any field diverges beyond its tolerance — after writing
/// the actual record to `target/golden-diffs/<name>.json` for CI
/// artifact upload.
pub fn assert_golden(name: &str, actual: &Json, tol: &Tolerances) {
    let path = golden_dir().join(format!("{name}.json"));
    if std::env::var_os("UPDATE_GOLDEN").is_some_and(|v| !v.is_empty() && v != "0") {
        fs::create_dir_all(golden_dir()).expect("create tests/golden");
        fs::write(&path, actual.pretty()).unwrap_or_else(|e| panic!("bless {path:?}: {e}"));
        eprintln!("blessed golden snapshot {path:?}");
        return;
    }
    let text = fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!(
            "missing golden snapshot {path:?} — bless it with \
             `UPDATE_GOLDEN=1 cargo test -p tsc-verify --test golden_flows`"
        )
    });
    let expected = parse(&text).unwrap_or_else(|e| panic!("golden {path:?} unparsable: {e}"));
    let mismatches = diff(&expected, actual, tol);
    if !mismatches.is_empty() {
        let dump = diffs_dir().join(format!("{name}.json"));
        if fs::create_dir_all(diffs_dir()).is_ok() {
            let _ = fs::write(&dump, actual.pretty());
        }
        panic!(
            "golden `{name}` diverged ({} field(s)); actual record dumped to {dump:?}:\n  {}\n\
             intentional change? re-bless with \
             `UPDATE_GOLDEN=1 cargo test -p tsc-verify --test golden_flows`",
            mismatches.len(),
            mismatches.join("\n  "),
        );
    }
}

/// The JSON parser shared with the emitter: re-exported from
/// [`tsc_bench::json`] (promoted there so the service layer and the
/// load generator parse the same dialect the harness emits).
pub use tsc_bench::json::parse;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diff_respects_per_field_tolerance() {
        let expected = Json::object().field("tj", 100.0).field("iters", 50.0);
        let actual = Json::object().field("tj", 100.4).field("iters", 50.0);
        let loose = Tolerances::new(1e-9).field("tj", 1e-2);
        assert!(diff(&expected, &actual, &loose).is_empty());
        let strict = Tolerances::new(1e-9);
        let report = diff(&expected, &actual, &strict);
        assert_eq!(report.len(), 1, "{report:?}");
        assert!(report[0].starts_with("$.tj:"), "{report:?}");
    }

    #[test]
    fn diff_flags_shape_changes() {
        let expected = Json::object().field("a", 1.0);
        let actual = Json::object().field("b", 1.0);
        let report = diff(&expected, &actual, &Tolerances::new(1e-9));
        assert_eq!(report.len(), 2, "missing + extra: {report:?}");
    }
}
