//! Optimization-as-a-service engines for `tsc-serve`'s `/v1/jobs`.
//!
//! The paper's headline results are co-design *searches* — SA
//! floorplanning (Sec. IIIB), dielectric sweeps (Fig. 12b), pillar
//! placement (Sec. IIIA) — each hundreds of nearby evaluations. This
//! crate packages those searches as **step-sliced, checkpointable job
//! engines** so the serving tier can interleave them with interactive
//! traffic:
//!
//! * [`JobSpec`] parses a `POST /v1/jobs` body into one of three kinds
//!   ([`JobKind`]): `floorplan_sa`, `dielectric_sweep`, `pillar_place`;
//! * [`Engine`] turns a spec into a sequence of independent
//!   [`ShardWork`] units — a tempering replica's move round, one sweep
//!   point, one source's density bisection — that run lock-free on any
//!   worker thread and synchronize only at engine barriers;
//! * [`EvalMemo`] dedupes identical candidate evaluations through an
//!   FNV-1a fingerprint memo (layered on the same hashing the serve
//!   tier's coalescing keys use);
//! * [`Engine::checkpoint`] serializes the search (seeded RNG words,
//!   current/best candidates, the temperature ladder) into the
//!   `tsc_bench::json` dialect, and [`Engine::from_spec`] resumes it —
//!   **bitwise-identically**: a resumed run reaches the same best cost
//!   and final RNG state as the uninterrupted run, per seed. To keep
//!   that property, every solver-backed work unit uses a fresh
//!   [`tsc_thermal::SolveContext`] (warm starts stay *within* a shard,
//!   where they matter, never across the checkpoint boundary);
//! * [`JobTable`] is the bounded, quota'd table the scheduler runs jobs
//!   from — a plain data structure (no locking) that `tsc-serve` wraps
//!   in its ranked mutex.
//!
//! No wall-clock value ever feeds an engine: randomness is seeded
//! [`tsc_rng::Rng64`] streams throughout, so results are reproducible
//! regardless of worker interleaving.

// No crate outside tsc-thermal may contain `unsafe` (enforced
// statically here and by `cargo run -p tsc-analyze`).
#![forbid(unsafe_code)]

mod checkpoint;
mod engine;
mod floorplan_job;
mod memo;
mod pillars_job;
mod spec;
mod sweep_job;
mod table;

pub use checkpoint::{bits_f64, hex_u64, parse_bits_f64, parse_hex_u64};
pub use engine::{Engine, Progress, ShardWork};
pub use floorplan_job::{
    candidate_fingerprint, floorplan_problem_for, FloorplanJob, FloorplanShard, FpState,
};
pub use memo::{fnv1a_bytes, EvalMemo, FNV_OFFSET, FNV_PRIME};
pub use pillars_job::{PillarJob, PillarOutcome, PillarShard, PillarShardKind, PlanSummary};
pub use spec::{JobKind, JobSpec};
pub use sweep_job::{SweepJob, SweepOutcome, SweepShard, SweepShardKind};
pub use table::{JobClass, JobEntry, JobState, JobTable, SubmitError, TableConfig, TableCounters};
