//! Thermal-pillar placement (Sec. IIIA).
//!
//! Pillars must sit outside hard-macro boundaries and are placed between
//! floorplan initialization and detailed place-and-route. The paper's
//! algorithm, per heat source of area `A`:
//!
//! 1. thermally simulate the *optimistic uniform covering* for an
//!    increasing pillar count `P` until `Tj < T_target`, giving the
//!    minimum thermally required count `P_min`;
//! 2. compute the required pitch `(A / P_min)^0.5`; macros are spaced at
//!    gaps close to that pitch;
//! 3. place `P_min` pillars on a grid at that pitch inside the source
//!    (and between macro gaps); if uniformity problems leave the target
//!    unmet, escalate the fill past `P_min`.
//!
//! Two products come out: the explicit pillar coordinates (for layout
//! export and the misalignment study) and the per-cell areal-density map
//! consumed by the chip-scale solver.

use crate::beol::BeolProperties;
use crate::stack::{solve_with, StackConfig};
use tsc_designs::Design;
use tsc_geometry::{Grid2, Point, Rect};
use tsc_homogenize::pillar::PillarDesign;
use tsc_thermal::{Heatsink, SolveContext, SolveError};
use tsc_units::{Area, Length, Ratio, Temperature};

/// A complete pillar plan for one tier (replicated across tiers, since
/// pillars are vertically aligned).
#[derive(Debug, Clone)]
pub struct PillarPlan {
    /// Explicit pillar center positions (for tiled plans: the positions
    /// of one unit pattern).
    pub positions: Vec<Point>,
    /// How many times the position pattern repeats (1 for direct
    /// placements; tiles × tiles for [`tile_pattern`] on large arrays).
    pub replicas: usize,
    /// The pillar geometry used.
    pub design: PillarDesign,
    /// Per-cell areal density map over the die.
    pub density_map: Grid2<f64>,
    /// Die-average areal density = footprint penalty attributable to
    /// pillars.
    pub area_penalty: Ratio,
}

impl PillarPlan {
    /// Number of placed pillars (pattern positions × replicas).
    #[must_use]
    pub fn count(&self) -> usize {
        self.positions.len() * self.replicas
    }
}

/// The budget-driven map used inside large sweeps: pillars spread over
/// the *routable* (non-macro) share of each cell so the die-average
/// density equals `budget`. A cell 40 % covered by SRAM banks receives
/// pillars only in its remaining 60 % — the bank gaps, exactly where the
/// placer threads them.
///
/// # Panics
///
/// Panics if `budget` is not within `[0, 1)` or macros cover the die.
#[must_use]
pub fn uniform_routable_map(design: &Design, budget: Ratio, cells: usize) -> Grid2<f64> {
    assert!(
        budget.fraction() >= 0.0 && budget.fraction() < 1.0,
        "pillar budget must be within [0, 1), got {budget}"
    );
    // Per-cell routable fraction = 1 − macro coverage.
    let routable = Grid2::from_fn(cells, cells, |i, j| {
        let cell = Grid2::<f64>::filled(cells, cells, 0.0).cell_rect(&design.die, i, j);
        let covered: f64 = design
            .units
            .iter()
            .filter(|u| u.is_macro)
            .filter_map(|u| u.rect.intersection(&cell))
            .map(|ov| ov.area().square_meters())
            .sum();
        (1.0 - covered / cell.area().square_meters()).max(0.0)
    });
    let total_routable: f64 = routable.iter().sum();
    assert!(total_routable > 0.0, "macros cover the entire die");
    // Scale so the die-average equals the budget.
    let scale = budget.fraction() * (cells * cells) as f64 / total_routable;
    routable.map(|&r| (r * scale).min(0.95))
}

/// Configuration of the Sec. IIIA placement run.
#[derive(Debug, Clone)]
pub struct PlacementConfig {
    /// Tier count the stack must support.
    pub tiers: usize,
    /// Junction-temperature target.
    pub t_target: Temperature,
    /// Heatsink.
    pub heatsink: Heatsink,
    /// BEOL property set (scaffolded or conventional).
    pub beol: BeolProperties,
    /// Pillar geometry.
    pub pillar: PillarDesign,
    /// Lateral mesh resolution for the placement-time simulations.
    pub lateral_cells: usize,
    /// Hard cap on per-source density during escalation.
    pub max_density: Ratio,
}

impl PlacementConfig {
    /// The paper's design point: 12 tiers, 125 °C, two-phase cooling,
    /// scaffolded BEOL, 100 nm pillars.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            tiers: 12,
            t_target: Temperature::from_celsius(125.0),
            heatsink: Heatsink::two_phase(),
            beol: BeolProperties::scaffolded(),
            pillar: PillarDesign::asap7_100nm(),
            lateral_cells: 12,
            max_density: Ratio::from_percent(60.0),
        }
    }
}

/// Step 1 of Sec. IIIA for one heat source: the minimum *uniform-cover*
/// pillar density (as a fraction of the source area) that brings the
/// stack junction below target, found by bisection on density (the
/// continuous equivalent of "increase P until Tj < T_target").
///
/// Returns `None` when even `max_density` cannot meet the target.
///
/// # Errors
///
/// Propagates solver failures.
pub fn minimum_source_density(
    design: &Design,
    source: &Rect,
    config: &PlacementConfig,
) -> Result<Option<Ratio>, SolveError> {
    minimum_source_density_with(design, source, config, &mut SolveContext::new())
}

/// [`minimum_source_density`] against a caller-owned [`SolveContext`].
///
/// Every bisection probe solves the same mesh with a slightly different
/// pillar map, so the context warm-starts each solve from the previous
/// density's temperature field — the probes differ by a perturbation,
/// and CG converges in a fraction of the cold iteration count. Callers
/// sweeping many sources ([`place`]) share one context across all of
/// them.
///
/// # Errors
///
/// Propagates solver failures.
pub fn minimum_source_density_with(
    design: &Design,
    source: &Rect,
    config: &PlacementConfig,
    ctx: &mut SolveContext,
) -> Result<Option<Ratio>, SolveError> {
    let cells = config.lateral_cells;
    // The target is the peak *within this source's own footprint* — the
    // per-source decomposition of Sec. IIIA (other sources get their own
    // pillar searches).
    let mut tj_at = |density: f64| -> Result<Temperature, SolveError> {
        let mut map = Grid2::filled(cells, cells, 0.0);
        map.paint_rect(&design.die, source, density);
        let cfg = StackConfig::uniform(config.tiers, config.beol, config.heatsink)
            .with_lateral_cells(cells)
            .with_pillar_map(map);
        let sol = solve_with(design, &cfg, ctx)?;
        let mut peak = Temperature::ABSOLUTE_ZERO;
        let probe = Grid2::<f64>::filled(cells, cells, 0.0);
        for &dev in &sol.layout.device_layers {
            let layer = sol.solution.temperatures.layer_kelvin(dev);
            for j in 0..cells {
                for i in 0..cells {
                    if source.contains(probe.cell_center(&design.die, i, j)) {
                        peak = peak.max(Temperature::from_kelvin(layer[(i, j)]));
                    }
                }
            }
        }
        Ok(peak)
    };
    let max = config.max_density.fraction();
    if tj_at(max)? > config.t_target {
        return Ok(None);
    }
    if tj_at(0.0)? <= config.t_target {
        return Ok(Some(Ratio::ZERO));
    }
    let (mut lo, mut hi) = (0.0_f64, max);
    for _ in 0..12 {
        let mid = 0.5 * (lo + hi);
        if tj_at(mid)? <= config.t_target {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Ok(Some(Ratio::from_fraction(hi)))
}

/// Pillar count equivalent to a uniform density over a source area.
#[must_use]
pub fn count_for_density(density: Ratio, source_area: Area, pillar: &PillarDesign) -> usize {
    (density.fraction() * source_area.square_meters() / pillar.area().square_meters()).ceil()
        as usize
}

/// Step 2–3 of Sec. IIIA: grid placement of `p_min` pillars at pitch
/// `(A/P)^0.5` inside `source`, skipping hard macros; pillars displaced
/// by macros relocate to the gap rings around those macros (the "macros
/// are placed with gaps close to this pitch" rule).
#[must_use]
pub fn grid_place(
    source: &Rect,
    p_min: usize,
    pillar: &PillarDesign,
    macros: &[Rect],
) -> Vec<Point> {
    if p_min == 0 {
        return Vec::new();
    }
    let pitch_m = (source.area().square_meters() / p_min as f64).sqrt();
    let pitch = Length::from_meters(pitch_m);
    let mut placed = Vec::new();
    let mut displaced = 0usize;
    let margin = pillar.footprint / 2.0;
    let mut y = source.min_y() + pitch / 2.0;
    while y < source.max_y() {
        let mut x = source.min_x() + pitch / 2.0;
        while x < source.max_x() {
            let p = Point::new(x, y);
            let foot = Rect::centered(p, pillar.footprint, pillar.footprint);
            if macros.iter().any(|m| m.inflated(margin).intersects(&foot)) {
                displaced += 1;
            } else {
                placed.push(p);
            }
            x += pitch;
        }
        y += pitch;
    }
    // Displaced pillars move to the macro gap rings.
    'outer: for m in macros {
        if displaced == 0 {
            break;
        }
        let ring = m.inflated(pitch / 2.0);
        let mut x = ring.min_x();
        while x <= ring.max_x() {
            for p in [Point::new(x, ring.min_y()), Point::new(x, ring.max_y())] {
                if displaced == 0 {
                    break 'outer;
                }
                let inside_macro = macros.iter().any(|mm| mm.inflated(margin).contains(p));
                if source.contains(p) && !inside_macro {
                    placed.push(p);
                    displaced -= 1;
                }
            }
            x += pitch;
        }
    }
    placed
}

/// Runs the full Sec. IIIA placement over every heat source of the
/// design. Macro sources receive no internal pillars (their cooling
/// comes from surrounding gap pillars and the dielectric's lateral
/// spreading, the Observation-4 mechanism).
///
/// Returns `Ok(None)` when some source cannot be cooled within
/// `max_density` (the configuration is infeasible at this tier count).
///
/// # Errors
///
/// Propagates solver failures.
pub fn place(design: &Design, config: &PlacementConfig) -> Result<Option<PillarPlan>, SolveError> {
    // One context for the whole run: every density probe and every
    // escalation verify solves the same mesh geometry, so warm starts
    // carry across sources and attempts.
    place_with(design, config, &mut SolveContext::new())
}

/// [`place`] against a caller-owned [`SolveContext`]: long-running
/// callers (the solve service, repeated placement sweeps) keep the
/// assembled operator, multigrid hierarchy and warm-start field alive
/// across whole placement runs, not just within one.
///
/// # Errors
///
/// Propagates solver failures.
pub fn place_with(
    design: &Design,
    config: &PlacementConfig,
    ctx: &mut SolveContext,
) -> Result<Option<PillarPlan>, SolveError> {
    // Step 1: per-source minimum uniform-cover densities.
    let mut source_densities = Vec::new();
    for rect in placement_sources(design) {
        let Some(density) = minimum_source_density_with(design, &rect, config, ctx)? else {
            return Ok(None);
        };
        if density.fraction() > 0.0 {
            source_densities.push((rect, density));
        }
    }

    // Steps 2-3 with escalation: grid-place P_min per source; if the
    // realized (non-uniform, macro-displaced) placement misses the
    // target, increase the fill past P_min and retry.
    let mut escalation = 1.0_f64;
    for _attempt in 0..MAX_ESCALATIONS {
        if let Some(plan) = place_attempt_with(design, config, &source_densities, escalation, ctx)?
        {
            return Ok(Some(plan));
        }
        escalation *= ESCALATION_FACTOR;
    }
    // Even escalated fill could not reach the target: infeasible.
    Ok(None)
}

/// Escalation attempts [`place_with`] makes before declaring the design
/// infeasible.
pub const MAX_ESCALATIONS: usize = 5;

/// Per-attempt fill escalation factor past `P_min`.
pub const ESCALATION_FACTOR: f64 = 1.3;

/// The heat sources step 1 searches: every non-macro source rect, in
/// design order. Step-sliced callers fan one
/// [`minimum_source_density_with`] per rect across workers.
#[must_use]
pub fn placement_sources(design: &Design) -> Vec<Rect> {
    design
        .heat_sources(Ratio::ONE)
        .iter()
        .filter(|s| !s.is_macro)
        .map(|s| s.rect)
        .collect()
}

/// One escalation attempt of steps 2–3: grid-place each source's
/// density escalated by `escalation` (clamped at the config cap), then
/// verify the realized map against the junction target. Returns
/// `Ok(Some(plan))` when the attempt meets the target, `Ok(None)` when
/// the next escalation should run. Attempts are sequential by
/// construction (attempt `n+1` only exists because `n` failed), so
/// step-sliced callers run one attempt per slice.
///
/// # Errors
///
/// Propagates solver failures.
pub fn place_attempt_with(
    design: &Design,
    config: &PlacementConfig,
    source_densities: &[(Rect, Ratio)],
    escalation: f64,
    ctx: &mut SolveContext,
) -> Result<Option<PillarPlan>, SolveError> {
    let macros: Vec<Rect> = design
        .units
        .iter()
        .filter(|u| u.is_macro)
        .map(|u| u.rect)
        .collect();
    let cells = config.lateral_cells.max(24);
    let mut positions = Vec::new();
    for (rect, density) in source_densities {
        let escalated = Ratio::from_fraction(
            (density.fraction() * escalation).min(config.max_density.fraction()),
        );
        let p_min = count_for_density(escalated, rect.area(), &config.pillar);
        positions.extend(grid_place(rect, p_min, &config.pillar, &macros));
    }
    let density_map = rasterize(design, &positions, &config.pillar, cells);
    let verify = StackConfig::uniform(config.tiers, config.beol, config.heatsink)
        .with_lateral_cells(config.lateral_cells)
        .with_pillar_map(density_map.clone());
    let tj = solve_with(design, &verify, ctx)?.junction_temperature();
    if tj <= config.t_target || source_densities.is_empty() {
        let area_penalty = Ratio::from_fraction(
            positions.len() as f64 * config.pillar.area().square_meters()
                / design.die_area().square_meters(),
        );
        return Ok(Some(PillarPlan {
            positions,
            replicas: 1,
            design: config.pillar.clone(),
            density_map,
            area_penalty,
        }));
    }
    Ok(None)
}

/// The scaled-design shortcut of Sec. IIIA: run the placement on a
/// *single multiply-accumulate cell* of a large systolic array and tile
/// the resulting pattern across the whole array — how the paper handles
/// the 160×160-PE Fujitsu Research design without re-running placement
/// per PE.
///
/// `array` is the full array region, `unit` one MAC cell anchored at the
/// array's lower-left corner; the unit pattern is repeated at the unit
/// pitch over the array. Returns `Ok(None)` if even `max_density` cannot
/// cool the array.
///
/// # Errors
///
/// Propagates solver failures.
///
/// # Panics
///
/// Panics if `unit` does not sit at the array's lower-left corner or is
/// larger than the array.
pub fn tile_pattern(
    design: &Design,
    array: &Rect,
    unit: &Rect,
    config: &PlacementConfig,
) -> Result<Option<PillarPlan>, SolveError> {
    assert!(
        unit.min_x() == array.min_x() && unit.min_y() == array.min_y(),
        "unit cell must be anchored at the array corner"
    );
    assert!(
        unit.width() <= array.width() && unit.height() <= array.height(),
        "unit cell must fit inside the array"
    );
    // Step 1 on the whole array (the unit's thermal environment is the
    // array, not an isolated cell).
    let Some(density) = minimum_source_density(design, array, config)? else {
        return Ok(None);
    };
    // Steps 2-3 on the unit cell only. Nanoscale pillars on millimetre
    // arrays run to billions, so the pattern is kept implicit: one unit
    // cell of positions plus a replica count, with the density map
    // painted analytically (the grid pattern is uniform at cell scale).
    let p_unit = count_for_density(density, unit.area(), &config.pillar).max(1);
    let unit_positions = grid_place(unit, p_unit.min(100_000), &config.pillar, &[]);
    let nx = (array.width() / unit.width()).floor() as usize;
    let ny = (array.height() / unit.height()).floor() as usize;
    let replicas = nx * ny;
    // Realized density of the unit pattern (grid rounding included).
    let realized = Ratio::from_fraction(
        p_unit as f64 * config.pillar.area().square_meters() / unit.area().square_meters(),
    );
    let cells = config.lateral_cells.max(24);
    let mut density_map = Grid2::filled(cells, cells, 0.0);
    density_map.paint_rect(&design.die, array, realized.fraction().min(0.95));
    let area_penalty = Ratio::from_fraction(
        (p_unit * replicas) as f64 * config.pillar.area().square_meters()
            / design.die_area().square_meters(),
    );
    Ok(Some(PillarPlan {
        positions: unit_positions,
        replicas,
        design: config.pillar.clone(),
        density_map,
        area_penalty,
    }))
}

/// Rasterizes explicit pillar positions into a per-cell density map.
#[must_use]
pub fn rasterize(
    design: &Design,
    positions: &[Point],
    pillar: &PillarDesign,
    cells: usize,
) -> Grid2<f64> {
    let mut map = Grid2::filled(cells, cells, 0.0);
    let cell_area = design.die_area().square_meters() / (cells * cells) as f64;
    let pa = pillar.area().square_meters();
    for p in positions {
        if let Some(ij) = map.locate(&design.die, *p) {
            map[ij] += pa / cell_area;
        }
    }
    map.map(|&v| v.min(0.95))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsc_designs::gemmini;

    #[test]
    fn uniform_routable_map_respects_macros_and_budget() {
        let d = gemmini::design();
        let budget = Ratio::from_percent(10.0);
        let map = uniform_routable_map(&d, budget, 24);
        assert!((map.mean() - 0.10).abs() < 0.01, "mean {}", map.mean());
        // A cell containing an LLC bank keeps pillars only in its gap
        // share, so its density sits below the open-area cells'.
        let llc = &d
            .units
            .iter()
            .find(|u| u.name == "llc0")
            .expect("llc0")
            .rect;
        let ij = map.locate(&d.die, llc.center()).expect("inside");
        let open = map.max_value();
        assert!(
            map[ij] < 0.75 * open,
            "bank cell {} vs open cell {open}",
            map[ij]
        );
        // The scratchpad macro spans whole cells: fully covered -> zero.
        let sp = &d
            .units
            .iter()
            .find(|u| u.name == "scratchpad0")
            .expect("scratchpad")
            .rect;
        let sp_ij = map.locate(&d.die, sp.center()).expect("inside");
        assert!(map[sp_ij] < open, "macro-center cell is depleted");
    }

    #[test]
    fn grid_place_hits_requested_count_without_macros() {
        let source = Rect::from_origin_size(
            Length::ZERO,
            Length::ZERO,
            Length::from_micrometers(100.0),
            Length::from_micrometers(100.0),
        );
        let pillar = PillarDesign::asap7_100nm();
        let placed = grid_place(&source, 100, &pillar, &[]);
        assert_eq!(placed.len(), 100);
        for p in &placed {
            assert!(source.contains(*p));
        }
    }

    #[test]
    fn grid_place_avoids_macro_interiors() {
        let source = Rect::from_origin_size(
            Length::ZERO,
            Length::ZERO,
            Length::from_micrometers(100.0),
            Length::from_micrometers(100.0),
        );
        let blocker = Rect::from_origin_size(
            Length::from_micrometers(30.0),
            Length::from_micrometers(30.0),
            Length::from_micrometers(40.0),
            Length::from_micrometers(40.0),
        );
        let pillar = PillarDesign::asap7_100nm();
        let placed = grid_place(&source, 100, &pillar, &[blocker]);
        let strictly_inside = blocker.inflated(-pillar.footprint);
        for p in &placed {
            assert!(!strictly_inside.contains(*p), "pillar {p} inside macro");
        }
        assert!(!placed.is_empty());
        // Some displaced pillars land on the macro's gap ring.
        let near_ring = placed
            .iter()
            .filter(|p| {
                blocker
                    .inflated(Length::from_micrometers(6.0))
                    .contains(**p)
            })
            .count();
        assert!(near_ring > 0, "expected gap-ring pillars");
    }

    #[test]
    fn rasterized_density_integrates_to_count() {
        let d = gemmini::design();
        let pillar = PillarDesign::asap7_100nm();
        let positions = grid_place(&d.units[0].rect, 400, &pillar, &[]);
        let map = rasterize(&d, &positions, &pillar, 24);
        let cell_area = d.die_area().square_meters() / (24.0 * 24.0);
        let total_pillar_area: f64 = map.iter().map(|f| f * cell_area).sum();
        let expected = positions.len() as f64 * pillar.area().square_meters();
        assert!(
            (total_pillar_area - expected).abs() / expected < 1e-6,
            "{total_pillar_area} vs {expected}"
        );
    }

    #[test]
    fn count_density_round_trip() {
        let pillar = PillarDesign::asap7_100nm();
        let a = Area::from_square_micrometers(10_000.0);
        let n = count_for_density(Ratio::from_percent(10.0), a, &pillar);
        // 10% of 10,000 µm² at 0.01 µm² per pillar = 100,000 pillars.
        assert_eq!(n, 100_000);
    }

    #[test]
    fn minimum_density_search_brackets() {
        // At 8 tiers scaffolded, the array needs some pillars but far
        // less than the 60% cap.
        let d = gemmini::design();
        let config = PlacementConfig {
            tiers: 8,
            lateral_cells: 8,
            ..PlacementConfig::paper_default()
        };
        let array = d.units[0].rect;
        let density = minimum_source_density(&d, &array, &config)
            .expect("solves")
            .expect("feasible");
        assert!(
            density.fraction() > 0.0 && density.fraction() < 0.5,
            "array density {density}"
        );
    }

    #[test]
    fn warm_started_bisection_cuts_matvecs() {
        // The whole point of threading a SolveContext through the
        // bisection: consecutive density probes differ by a perturbation,
        // so warm-started solves need measurably fewer fine-grid matvecs
        // than cold ones — at the same solve count and (essentially) the
        // same answer.
        let d = gemmini::design();
        let config = PlacementConfig {
            tiers: 8,
            lateral_cells: 8,
            ..PlacementConfig::paper_default()
        };
        let array = d.units[0].rect;
        let mut warm = SolveContext::new();
        let a = minimum_source_density_with(&d, &array, &config, &mut warm)
            .expect("solves")
            .expect("feasible");
        let mut cold = SolveContext::new().with_warm_start(false);
        let b = minimum_source_density_with(&d, &array, &config, &mut cold)
            .expect("solves")
            .expect("feasible");
        // Identical bisection path up to one resolution step (a probe
        // landing exactly on the target could flip under the ~1e-8
        // solver tolerance).
        assert!(
            (a.fraction() - b.fraction()).abs() <= config.max_density.fraction() / 4096.0 + 1e-12,
            "warm {a} vs cold {b}"
        );
        let (sw, sc) = (warm.stats(), cold.stats());
        assert_eq!(sw.solves, sc.solves, "same probe count");
        assert_eq!(sw.warm_starts, sw.solves - 1, "all but the first warm");
        assert_eq!(sc.warm_starts, 0);
        assert!(
            5 * sw.total_matvecs <= 4 * sc.total_matvecs,
            "warm starts must cut matvecs by >=20%: {} vs {}",
            sw.total_matvecs,
            sc.total_matvecs
        );
        assert!(sw.total_iterations < sc.total_iterations);
    }

    #[test]
    fn tiled_mac_pattern_matches_direct_density() {
        // Tiling a single-MAC pattern across the array yields the same
        // pillar budget as placing over the whole array directly.
        let d = gemmini::design();
        let array = d.units[0].rect;
        let unit = Rect::from_origin_size(
            array.min_x(),
            array.min_y(),
            array.width() / 8.0,
            array.height() / 8.0,
        );
        let config = PlacementConfig {
            tiers: 6,
            lateral_cells: 8,
            ..PlacementConfig::paper_default()
        };
        let tiled = tile_pattern(&d, &array, &unit, &config)
            .expect("solves")
            .expect("feasible");
        let density = minimum_source_density(&d, &array, &config)
            .expect("solves")
            .expect("feasible");
        let direct_count = count_for_density(density, array.area(), &config.pillar);
        let ratio = tiled.count() as f64 / direct_count as f64;
        assert!(
            (0.8..1.3).contains(&ratio),
            "tiled {} vs direct {direct_count}",
            tiled.count()
        );
        // All tiled pillars stay inside the array.
        for p in &tiled.positions {
            assert!(array.contains(*p));
        }
    }

    #[test]
    #[should_panic(expected = "anchored at the array corner")]
    fn tile_pattern_requires_anchored_unit() {
        let d = gemmini::design();
        let array = d.units[0].rect;
        let unit = Rect::from_origin_size(
            array.min_x() + Length::from_micrometers(5.0),
            array.min_y(),
            array.width() / 8.0,
            array.height() / 8.0,
        );
        let _ = tile_pattern(&d, &array, &unit, &PlacementConfig::paper_default());
    }

    #[test]
    fn impossible_targets_reported_infeasible() {
        let d = gemmini::design();
        let config = PlacementConfig {
            tiers: 16,
            t_target: Temperature::from_celsius(101.0),
            lateral_cells: 8,
            max_density: Ratio::from_percent(30.0),
            ..PlacementConfig::paper_default()
        };
        let result = minimum_source_density(&d, &d.units[0].rect, &config).expect("solves");
        assert!(result.is_none());
    }
}
