//! Linear solvers for the assembled finite-volume system.
//!
//! The discretized problem is `A·T = b` with `A` symmetric positive
//! definite whenever at least one convective boundary is present:
//!
//! * diagonal: sum of all face conductances incident on the cell (plus the
//!   boundary conductance for cells on a heatsink face);
//! * off-diagonal: minus the shared face conductance;
//! * right-hand side: injected power plus `G_boundary · T_ambient`.
//!
//! [`CgSolver`] (Jacobi-preconditioned conjugate gradients) is the
//! workhorse; [`SorSolver`] (red-black successive over-relaxation)
//! provides an algorithmically independent cross-check used by the
//! validation tests.
//!
//! # Parallel execution
//!
//! Both solvers share the scoped-thread engine in [`crate::engine`]: the
//! matrix-free seven-point `matvec` is evaluated in *gather* form (each
//! cell computes its own output from its neighbours), which chunks
//! race-free across z-slab bands, and the SOR sweep uses red-black
//! ordering so each colour pass has provably disjoint writes. Reductions
//! (dot products, norms) are accumulated **per z-slab and summed in slab
//! order**, so the arithmetic is bitwise identical for every thread
//! count — `with_threads(8)` reproduces `with_threads(1)` exactly.
//! Below [`DEFAULT_PARALLEL_CROSSOVER`] cells the identical code runs
//! serially on the calling thread (see
//! [`CgSolver::with_parallel_crossover`]).
//!
//! # Divergence safety
//!
//! No solver path returns `Ok` with a non-finite residual or temperature:
//! every convergence check is guarded by `residual.is_finite()`, and a
//! non-finite residual (NaN power input, degenerate diagonal, arithmetic
//! overflow) surfaces as [`SolveError::Diverged`] instead of spinning out
//! the whole iteration budget or — worse — passing a `NaN > tol`
//! comparison and reporting success.

use crate::analysis::EnergyBalance;
use crate::engine::ExecPlan;
use crate::field::TemperatureField;
use crate::problem::Problem;
use std::time::Instant;
use tsc_geometry::{Dim3, Grid3};
use tsc_units::Power;

/// Problem size (cells) below which the solvers stay serial by default:
/// scoped-thread spawn overhead beats the stencil work on small meshes.
pub const DEFAULT_PARALLEL_CROSSOVER: usize = 32_768;

/// Worker count used when none is configured: one per available core.
pub(crate) fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Failure modes of a solve.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveError {
    /// Neither face carries a heatsink: the pure-Neumann problem is
    /// singular (temperature defined only up to a constant).
    NoBoundary,
    /// The iteration did not reach the tolerance within the budget.
    NotConverged {
        /// Iterations performed.
        iterations: usize,
        /// Final relative residual.
        residual: f64,
    },
    /// The iteration produced a non-finite residual or iterate — NaN
    /// power input, a degenerate (zero) diagonal, or overflow. The
    /// returned residual is the poisoned value (NaN or ∞).
    Diverged {
        /// Iterations performed before divergence was detected.
        iterations: usize,
        /// The non-finite residual that triggered the bail-out.
        residual: f64,
    },
}

impl core::fmt::Display for SolveError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::NoBoundary => {
                write!(f, "no heatsink attached: steady-state problem is singular")
            }
            Self::NotConverged {
                iterations,
                residual,
            } => write!(
                f,
                "solver did not converge within {iterations} iterations (residual {residual:.3e})"
            ),
            Self::Diverged {
                iterations,
                residual,
            } => write!(
                f,
                "solver diverged after {iterations} iterations (residual {residual})"
            ),
        }
    }
}

impl std::error::Error for SolveError {}

/// Which preconditioner a CG solve applied (recorded in
/// [`SolverStats::preconditioner`] so observability data identifies the
/// algorithm that produced it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Preconditioner {
    /// Unpreconditioned iteration (SOR, or raw residual bookkeeping).
    None,
    /// Diagonal (Jacobi) scaling — the PR-1 default.
    #[default]
    Jacobi,
    /// One geometric-multigrid V-cycle per application (see
    /// [`crate::multigrid`]).
    Multigrid,
}

impl core::fmt::Display for Preconditioner {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            Self::None => "none",
            Self::Jacobi => "jacobi",
            Self::Multigrid => "multigrid",
        })
    }
}

/// Floating-point scheme of a solve (recorded in
/// [`SolverStats::precision`], selected by [`CgSolver::with_precision`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Precision {
    /// Pure f64 arithmetic end to end — bitwise thread-count
    /// independent, the baseline every other path is checked against.
    #[default]
    F64,
    /// f64-corrected iterative refinement over an f32 inner MG-PCG
    /// (see `crate::kernels`): the outer residual, the correction
    /// accumulation and every convergence decision stay in f64, so the
    /// requested tolerance is honest; the bandwidth-bound smoothing and
    /// stencil work runs in f32 at roughly half the memory traffic.
    Mixed,
}

impl core::fmt::Display for Precision {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            Self::F64 => "f64",
            Self::Mixed => "mixed",
        })
    }
}

/// Observability record of a solve: convergence, work and timing.
#[derive(Debug, Clone, PartialEq)]
pub struct SolverStats {
    /// Iterations (CG) or sweeps (SOR) used.
    pub iterations: usize,
    /// Final relative residual `‖b − A·T‖ / ‖b‖`.
    pub residual: f64,
    /// Matrix-vector products evaluated (CG: one per iteration plus the
    /// initial residual; SOR: one per residual check). Fine-grid products
    /// only — coarse-level smoothing work is summarised by `cycles`.
    pub matvecs: usize,
    /// Multigrid V-cycles applied (0 for non-multigrid solves).
    pub cycles: usize,
    /// Final residual 2-norm restricted to each hierarchy level, finest
    /// first (empty for non-multigrid solves) — shows where in the grid
    /// hierarchy the remaining error lives.
    pub level_residuals: Vec<f64>,
    /// The preconditioner that drove the iteration.
    pub preconditioner: Preconditioner,
    /// The floating-point scheme that drove the iteration.
    pub precision: Precision,
    /// Outer iterative-refinement passes of a mixed-precision solve
    /// (0 for pure-f64 solves).
    pub refinements: usize,
    /// Wall-clock seconds spent assembling the operator.
    pub assembly_seconds: f64,
    /// Wall-clock seconds spent iterating (excludes assembly).
    pub solve_seconds: f64,
    /// Worker threads the execution plan engaged (1 = serial path).
    pub threads: usize,
    /// Sampled residual trajectory `(iteration, relative residual)`:
    /// the initial residual, every stride-th iteration, and the final
    /// residual. See [`CgSolver::with_trajectory_stride`].
    pub trajectory: Vec<(usize, f64)>,
}

/// A solved thermal problem.
#[derive(Debug, Clone)]
pub struct Solution {
    /// The temperature field.
    pub temperatures: TemperatureField,
    /// Convergence statistics and solve observability.
    pub stats: SolverStats,
    /// Global energy balance (injected vs extracted power).
    pub energy: EnergyBalance,
}

/// Tuning knobs threaded through the shared CG kernel.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CgParams {
    pub tol: f64,
    pub max_iter: usize,
    pub threads: usize,
    pub crossover: usize,
    pub traj_stride: usize,
}

/// Pre-assembled face conductances and right-hand side.
///
/// Fields are crate-visible so [`crate::multigrid`] can coarsen the
/// operator (Galerkin aggregation of the face-conductance arrays) and
/// smooth against level-specific right-hand sides without going through
/// a [`Problem`].
#[derive(Debug, Clone)]
pub(crate) struct Assembled {
    pub(crate) dim: Dim3,
    pub(crate) gx: Vec<f64>,
    pub(crate) gy: Vec<f64>,
    pub(crate) gz: Vec<f64>,
    pub(crate) g_bottom: Vec<f64>,
    pub(crate) g_top: Vec<f64>,
    pub(crate) diag: Vec<f64>,
    /// Boundary contribution only (`G_boundary · T_ambient` per cell).
    pub(crate) rhs_boundary: Vec<f64>,
    /// Full right-hand side: staged power plus `rhs_boundary`.
    pub(crate) rhs: Vec<f64>,
    /// Per-column ambient (K) of the bottom boundary (`nx · ny` long).
    pub(crate) t_bottom: Vec<f64>,
    /// Per-column ambient (K) of the top boundary (`nx · ny` long).
    pub(crate) t_top: Vec<f64>,
    pub(crate) initial_guess: f64,
    /// Wall-clock seconds [`Assembled::build`] took, carried into stats.
    pub(crate) assembly_seconds: f64,
}

/// L2 budget per j-stripe of the blocked f64 matvec, in bytes — kept
/// below typical per-core L2 so the neighbouring slabs' stripes the
/// z-sweep reuses stay resident too (the f32 twin lives in
/// `kernels::L2_TARGET_BYTES`).
const MATVEC_L2_TARGET_BYTES: usize = 256 * 1024;

/// f64 streams touched per cell of the blocked matvec: out, x and its
/// two z-neighbour rows, diag, gx, gy×2, gz×2 ≈ 9 rows of 8 bytes.
const MATVEC_STREAM_BYTES_PER_CELL: usize = 9 * 8;

impl Assembled {
    /// Mesh dimensions of the assembled system.
    pub(crate) fn dim(&self) -> Dim3 {
        self.dim
    }

    /// The assembled right-hand side (power + boundary terms).
    pub(crate) fn rhs(&self) -> &[f64] {
        &self.rhs
    }

    /// Ambient-referenced starting temperature for iterations.
    pub(crate) fn initial_guess(&self) -> f64 {
        self.initial_guess
    }

    /// Rebuilds the right-hand side for a different per-cell power
    /// staging (watts per cell) over the same operator — the
    /// electrothermal loop re-solves with rescaled power without paying
    /// for reassembly.
    pub(crate) fn rhs_with_power(&self, power_watts: &[f64]) -> Vec<f64> {
        debug_assert_eq!(power_watts.len(), self.rhs_boundary.len());
        self.rhs_boundary
            .iter()
            .zip(power_watts)
            .map(|(b, p)| b + p)
            .collect()
    }

    /// Builds an operator straight from conductance arrays — the
    /// coarse-level constructor used by [`crate::multigrid`]. The
    /// diagonal is derived exactly as [`Assembled::build`] derives it
    /// (sum of incident face conductances plus the boundary conductance
    /// on the bottom/top slabs), so a coarse operator produced from
    /// aggregated conductances *is* the Galerkin operator `Pᵀ·A·P` for
    /// piecewise-constant interpolation. Right-hand-side and ambient
    /// fields are zeroed: coarse levels solve residual equations only.
    pub(crate) fn from_parts(
        dim: Dim3,
        gx: Vec<f64>,
        gy: Vec<f64>,
        gz: Vec<f64>,
        g_bottom: Vec<f64>,
        g_top: Vec<f64>,
    ) -> Self {
        let (nx, ny, nz) = (dim.nx, dim.ny, dim.nz);
        debug_assert_eq!(gx.len(), nx.saturating_sub(1) * ny * nz);
        debug_assert_eq!(gy.len(), nx * ny.saturating_sub(1) * nz);
        debug_assert_eq!(gz.len(), nx * ny * nz.saturating_sub(1));
        debug_assert_eq!(g_bottom.len(), nx * ny);
        debug_assert_eq!(g_top.len(), nx * ny);
        let n = dim.len();
        let mut diag = vec![0.0; n];
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    let c = dim.flat(i, j, k);
                    let mut d = 0.0;
                    if i + 1 < nx {
                        d += gx[(k * ny + j) * (nx - 1) + i];
                    }
                    if i > 0 {
                        d += gx[(k * ny + j) * (nx - 1) + i - 1];
                    }
                    if j + 1 < ny {
                        d += gy[(k * (ny - 1) + j) * nx + i];
                    }
                    if j > 0 {
                        d += gy[(k * (ny - 1) + j - 1) * nx + i];
                    }
                    if k + 1 < nz {
                        d += gz[(k * ny + j) * nx + i];
                    }
                    if k > 0 {
                        d += gz[((k - 1) * ny + j) * nx + i];
                    }
                    if k == 0 {
                        d += g_bottom[j * nx + i];
                    }
                    if k == nz - 1 {
                        d += g_top[j * nx + i];
                    }
                    diag[c] = d;
                }
            }
        }
        Self {
            dim,
            gx,
            gy,
            gz,
            g_bottom,
            g_top,
            diag,
            rhs_boundary: vec![0.0; n],
            rhs: vec![0.0; n],
            t_bottom: vec![0.0; nx * ny],
            t_top: vec![0.0; nx * ny],
            initial_guess: 0.0,
            assembly_seconds: 0.0,
        }
    }

    /// A clone with `shift` folded into the diagonal — lets the
    /// multigrid hierarchy precondition shifted systems
    /// `(A + diag(shift))·x = b` (the transient stepper's implicit
    /// matrix) without threading the shift through every level.
    pub(crate) fn shifted(&self, shift: &[f64]) -> Self {
        debug_assert_eq!(shift.len(), self.diag.len());
        let mut out = self.clone();
        for (d, s) in out.diag.iter_mut().zip(shift) {
            *d += s;
        }
        out
    }

    pub(crate) fn build(p: &Problem) -> Result<Self, SolveError> {
        // tsc-analyze: allow(no-wallclock-numeric): feeds SolverStats wall-time only, never the numerics
        let t0 = Instant::now();
        let bottom = p.bottom_heatsink();
        let top = p.top_heatsink();
        if bottom.is_none() && top.is_none() {
            return Err(SolveError::NoBoundary);
        }
        let dim = p.dim();
        let (nx, ny, nz) = (dim.nx, dim.ny, dim.nz);
        let mut gx = vec![0.0; (nx.saturating_sub(1)) * ny * nz];
        let mut gy = vec![0.0; nx * ny.saturating_sub(1) * nz];
        let mut gz = vec![0.0; nx * ny * nz.saturating_sub(1)];
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    if i + 1 < nx {
                        gx[(k * ny + j) * (nx - 1) + i] = p.gx(i, j, k);
                    }
                    if j + 1 < ny {
                        gy[(k * (ny - 1) + j) * nx + i] = p.gy(i, j, k);
                    }
                    if k + 1 < nz {
                        gz[(k * ny + j) * nx + i] = p.gz(i, j, k);
                    }
                }
            }
        }
        let mut g_bottom = vec![0.0; nx * ny];
        let mut g_top = vec![0.0; nx * ny];
        for j in 0..ny {
            for i in 0..nx {
                g_bottom[j * nx + i] = p.g_bottom(i, j);
                g_top[j * nx + i] = p.g_top(i, j);
            }
        }
        let mut t_bottom = vec![0.0; nx * ny];
        let mut t_top = vec![0.0; nx * ny];
        for j in 0..ny {
            for i in 0..nx {
                t_bottom[j * nx + i] = p.bottom_ambient_at(i, j);
                t_top[j * nx + i] = p.top_ambient_at(i, j);
            }
        }

        let n = dim.len();
        let mut diag = vec![0.0; n];
        let mut rhs_boundary = vec![0.0; n];
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    let c = dim.flat(i, j, k);
                    let mut d = 0.0;
                    if i + 1 < nx {
                        d += gx[(k * ny + j) * (nx - 1) + i];
                    }
                    if i > 0 {
                        d += gx[(k * ny + j) * (nx - 1) + i - 1];
                    }
                    if j + 1 < ny {
                        d += gy[(k * (ny - 1) + j) * nx + i];
                    }
                    if j > 0 {
                        d += gy[(k * (ny - 1) + j - 1) * nx + i];
                    }
                    if k + 1 < nz {
                        d += gz[(k * ny + j) * nx + i];
                    }
                    if k > 0 {
                        d += gz[((k - 1) * ny + j) * nx + i];
                    }
                    if k == 0 {
                        let g = g_bottom[j * nx + i];
                        d += g;
                        rhs_boundary[c] += g * t_bottom[j * nx + i];
                    }
                    if k == nz - 1 {
                        let g = g_top[j * nx + i];
                        d += g;
                        rhs_boundary[c] += g * t_top[j * nx + i];
                    }
                    diag[c] = d;
                }
            }
        }
        let rhs: Vec<f64> = p
            .power_flat()
            .iter()
            .zip(&rhs_boundary)
            .map(|(q, b)| q + b)
            .collect();
        // Scalar-ambient problems keep the historical guess (the sink's
        // ambient); per-column maps seed from the map's mean instead.
        let reference = |hs: Option<crate::heatsink::Heatsink>, t: &[f64], mapped: bool| {
            hs.map(|hs| {
                if mapped {
                    t.iter().sum::<f64>() / t.len() as f64
                } else {
                    hs.ambient.kelvin()
                }
            })
        };
        let initial_guess = reference(bottom, &t_bottom, p.bottom_ambient_map().is_some())
            .or_else(|| reference(top, &t_top, p.top_ambient_map().is_some()))
            .unwrap_or(0.0);
        Ok(Self {
            dim,
            gx,
            gy,
            gz,
            g_bottom,
            g_top,
            diag,
            rhs_boundary,
            rhs,
            t_bottom,
            t_top,
            initial_guess,
            assembly_seconds: t0.elapsed().as_secs_f64(),
        })
    }

    /// `y[range] = (A + diag(shift))·x` over one slab-aligned band, as
    /// cache-blocked branch-free row passes: for each j-stripe (sized so
    /// a stripe's streams fit in L2, see [`MATVEC_L2_TARGET_BYTES`]) the
    /// sweep runs through all z before the next stripe, and every pass
    /// is a straight-line slice zip the autovectorizer packs. Each
    /// output element accumulates its terms in the exact order of the
    /// historical scalar gather loop — `diag`, `−gx⁺`, `−gx⁻`, `−gy⁺`,
    /// `−gy⁻`, `−gz⁺`, `−gz⁻`, `+shift` — so the result is bitwise
    /// identical to it (and independent of banding and thread count:
    /// bands never write outside themselves).
    pub(crate) fn matvec_range(
        &self,
        x: &[f64],
        out: &mut [f64],
        range: std::ops::Range<usize>,
        shift: Option<&[f64]>,
    ) {
        let (nx, ny, nz) = (self.dim.nx, self.dim.ny, self.dim.nz);
        let slab = nx * ny;
        debug_assert_eq!(range.start % slab, 0, "bands must be slab-aligned");
        debug_assert_eq!(range.end % slab, 0, "bands must be slab-aligned");
        let (k_lo, k_hi) = (range.start / slab, range.end / slab);
        let row_bytes = nx * MATVEC_STREAM_BYTES_PER_CELL;
        let tile_j = (MATVEC_L2_TARGET_BYTES / row_bytes.max(1))
            .max(8)
            .min(ny.max(1));
        for jt in (0..ny).step_by(tile_j) {
            let j_end = (jt + tile_j).min(ny);
            for k in k_lo..k_hi {
                for j in jt..j_end {
                    let row = (k * ny + j) * nx;
                    let or = &mut out[row - range.start..row - range.start + nx];
                    let xr = &x[row..row + nx];
                    let dr = &self.diag[row..row + nx];
                    for ((o, d), xv) in or.iter_mut().zip(dr).zip(xr) {
                        *o = d * xv;
                    }
                    if nx > 1 {
                        let gxr = &self.gx[(k * ny + j) * (nx - 1)..][..nx - 1];
                        for ((o, g), xn) in or[..nx - 1].iter_mut().zip(gxr).zip(&xr[1..]) {
                            *o -= g * xn;
                        }
                        for ((o, g), xp) in or[1..].iter_mut().zip(gxr).zip(xr) {
                            *o -= g * xp;
                        }
                    }
                    if j + 1 < ny {
                        let gyr = &self.gy[(k * (ny - 1) + j) * nx..][..nx];
                        let xn = &x[row + nx..][..nx];
                        for ((o, g), xv) in or.iter_mut().zip(gyr).zip(xn) {
                            *o -= g * xv;
                        }
                    }
                    if j > 0 {
                        let gyr = &self.gy[(k * (ny - 1) + j - 1) * nx..][..nx];
                        let xp = &x[row - nx..][..nx];
                        for ((o, g), xv) in or.iter_mut().zip(gyr).zip(xp) {
                            *o -= g * xv;
                        }
                    }
                    if k + 1 < nz {
                        let gzr = &self.gz[(k * ny + j) * nx..][..nx];
                        let xn = &x[row + slab..][..nx];
                        for ((o, g), xv) in or.iter_mut().zip(gzr).zip(xn) {
                            *o -= g * xv;
                        }
                    }
                    if k > 0 {
                        let gzr = &self.gz[((k - 1) * ny + j) * nx..][..nx];
                        let xp = &x[row - slab..][..nx];
                        for ((o, g), xv) in or.iter_mut().zip(gzr).zip(xp) {
                            *o -= g * xv;
                        }
                    }
                    if let Some(s) = shift {
                        let sr = &s[row..row + nx];
                        for ((o, sv), xv) in or.iter_mut().zip(sr).zip(xr) {
                            *o += sv * xv;
                        }
                    }
                }
            }
        }
    }

    /// Relative true residual `‖b − A·x‖ / bnorm`, reduced per-slab so
    /// the value is independent of the thread count.
    pub(crate) fn residual_norm(
        &self,
        plan: &ExecPlan,
        x: &[f64],
        b: &[f64],
        b_norm: f64,
        ax: &mut [f64],
    ) -> f64 {
        let slab = self.dim.nx * self.dim.ny;
        let parts = plan.map_mut(ax, |range, chunk| {
            self.matvec_range(x, chunk, range.clone(), None);
            slab_norm2_diff_parts(&b[range], chunk, slab)
        });
        ordered_sum(parts.into_iter().flatten()).sqrt() / b_norm
    }

    /// Jacobi-preconditioned CG on `(A + diag(shift))·x = rhs`,
    /// warm-started from `x` — the shared kernel behind the steady
    /// solver ([`CgSolver::solve`]), the transient stepper and the
    /// electrothermal loop.
    ///
    /// Three fused regions per iteration run under the execution plan:
    /// `ap = A·pv` with `⟨pv, ap⟩`; the `x`/`r`/`z` update with
    /// `⟨r, z⟩` and `⟨r, r⟩`; and the direction update
    /// `pv = z + β·pv`. All reductions are per-slab ordered sums, so
    /// results are bitwise identical across thread counts.
    pub(crate) fn cg_core(
        &self,
        shift: Option<&[f64]>,
        rhs: &[f64],
        x: &mut [f64],
        params: &CgParams,
    ) -> Result<SolverStats, SolveError> {
        // tsc-analyze: allow(no-wallclock-numeric): feeds SolverStats wall-time only, never the numerics
        let t0 = Instant::now();
        let n = self.dim.len();
        let slab = self.dim.nx * self.dim.ny;
        debug_assert_eq!(rhs.len(), n);
        debug_assert_eq!(x.len(), n);
        #[cfg(feature = "fault-inject")]
        let max_iter = {
            crate::fault::begin_solve();
            crate::fault::poison_field(x);
            crate::fault::truncated_budget(params.max_iter)
        };
        #[cfg(not(feature = "fault-inject"))]
        let max_iter = params.max_iter;
        let plan = ExecPlan::new(self.dim, params.threads, params.crossover);
        let b_norm = norm(rhs).max(f64::MIN_POSITIVE);
        let shifted_diag: Vec<f64>;
        let diag: &[f64] = match shift {
            Some(s) => {
                debug_assert_eq!(s.len(), n);
                shifted_diag = self.diag.iter().zip(s).map(|(d, sv)| d + sv).collect();
                &shifted_diag
            }
            None => &self.diag,
        };

        let mut r = vec![0.0; n];
        let mut z = vec![0.0; n];
        let mut pv = vec![0.0; n];
        let mut ap = vec![0.0; n];
        let mut matvecs = 0_usize;

        plan.map_mut(&mut ap, |range, chunk| {
            self.matvec_range(x, chunk, range, shift);
        });
        matvecs += 1;
        for (((rv, zv), pvv), ((bv, av), dv)) in r
            .iter_mut()
            .zip(&mut z)
            .zip(&mut pv)
            .zip(rhs.iter().zip(&ap).zip(diag))
        {
            *rv = bv - av;
            *zv = *rv / dv;
            *pvv = *zv;
        }
        let mut rz = dot(&r, &z);
        let mut residual = norm(&r) / b_norm;
        let mut iterations = 0_usize;
        let mut trajectory = vec![(0, residual)];

        while residual > params.tol && residual.is_finite() && iterations < max_iter {
            // Region 1: ap = (A + shift)·pv, then ⟨pv, ap⟩ as a
            // streaming slab dot (same per-slab accumulation order as
            // the historical fused closure — bitwise identical).
            let parts = plan.map_mut(&mut ap, |range, chunk| {
                self.matvec_range(&pv, chunk, range.clone(), shift);
                slab_dot_parts(&pv[range], chunk, slab)
            });
            matvecs += 1;
            let p_ap = ordered_sum(parts.into_iter().flatten());
            let alpha = rz / p_ap;

            // Region 2: x += α·pv, r -= α·ap, z = M⁻¹r as straight-line
            // zips, then ⟨r, z⟩ and ⟨r, r⟩.
            let parts = plan.map3_mut(x, &mut r, &mut z, |range, xs, rs, zs| {
                for (xv, p) in xs.iter_mut().zip(&pv[range.clone()]) {
                    *xv += alpha * p;
                }
                for (rv, av) in rs.iter_mut().zip(&ap[range.clone()]) {
                    *rv -= alpha * av;
                }
                for ((zv, rv), dv) in zs.iter_mut().zip(rs.iter()).zip(&diag[range]) {
                    *zv = rv / dv;
                }
                (slab_dot_parts(rs, zs, slab), slab_dot_parts(rs, rs, slab))
            });
            let rz_next = ordered_sum(parts.iter().flat_map(|(a, _)| a.iter().copied()));
            let rr = ordered_sum(parts.iter().flat_map(|(_, b)| b.iter().copied()));
            let beta = rz_next / rz;
            rz = rz_next;

            // Region 3: pv = z + β·pv.
            plan.map_mut(&mut pv, |range, chunk| {
                for (o, zv) in chunk.iter_mut().zip(&z[range]) {
                    *o = zv + beta * *o;
                }
            });

            residual = rr.sqrt() / b_norm;
            iterations += 1;
            #[cfg(feature = "fault-inject")]
            {
                residual = crate::fault::corrupt_residual(iterations, residual);
            }
            if iterations.is_multiple_of(params.traj_stride) {
                trajectory.push((iterations, residual));
            }
        }

        if trajectory.last().map(|&(it, _)| it) != Some(iterations) {
            trajectory.push((iterations, residual));
        }
        if !residual.is_finite() || !x.iter().all(|v| v.is_finite()) {
            return Err(SolveError::Diverged {
                iterations,
                residual,
            });
        }
        if residual > params.tol {
            return Err(SolveError::NotConverged {
                iterations,
                residual,
            });
        }
        Ok(SolverStats {
            iterations,
            residual,
            matvecs,
            cycles: 0,
            level_residuals: Vec::new(),
            preconditioner: Preconditioner::Jacobi,
            precision: Precision::F64,
            refinements: 0,
            assembly_seconds: self.assembly_seconds,
            solve_seconds: t0.elapsed().as_secs_f64(),
            threads: plan.threads(),
            trajectory,
        })
    }

    /// One red-black SOR sweep: the even-parity cells (`(i+j+k) % 2 == 0`)
    /// update first, then the odd. Every stencil neighbour of a cell has
    /// opposite parity, so within one colour pass all writes are
    /// independent — bands update concurrently and the result is
    /// identical for any thread count.
    fn sor_sweep(&self, plan: &ExecPlan, x: &mut [f64], omega: f64) {
        self.rb_sweep(plan, x, &self.rhs, omega, [0, 1]);
    }

    /// One red-black relaxation sweep of `A·x = rhs` with an explicit
    /// colour order — the multigrid smoother runs the colours forward
    /// (`[0, 1]`) pre-correction and reversed (`[1, 0]`) post-correction
    /// so the V-cycle is a *symmetric* operator (a valid SPD
    /// preconditioner for CG). Write-disjointness per colour pass is
    /// identical to [`Assembled::sor_sweep`].
    pub(crate) fn rb_sweep(
        &self,
        plan: &ExecPlan,
        x: &mut [f64],
        rhs: &[f64],
        omega: f64,
        colours: [usize; 2],
    ) {
        let (nx, ny, nz) = (self.dim.nx, self.dim.ny, self.dim.nz);
        let slab = nx * ny;
        for colour in colours {
            plan.for_each_shared(x, |range, shared| {
                let (k_lo, k_hi) = (range.start / slab, range.end / slab);
                for k in k_lo..k_hi {
                    for j in 0..ny {
                        let i0 = (colour + j + k) % 2;
                        for i in (i0..nx).step_by(2) {
                            let c = (k * ny + j) * nx + i;
                            // SAFETY: `c` has the active colour inside this
                            // worker's own band (exclusive writer); every
                            // index read below is a stencil neighbour of
                            // `c` and therefore of the *other* colour — no
                            // concurrent pass writes it.
                            unsafe {
                                let mut sigma = 0.0;
                                if i > 0 {
                                    sigma += self.gx[(k * ny + j) * (nx - 1) + i - 1]
                                        * shared.get(c - 1);
                                }
                                if i + 1 < nx {
                                    sigma +=
                                        self.gx[(k * ny + j) * (nx - 1) + i] * shared.get(c + 1);
                                }
                                if j > 0 {
                                    sigma += self.gy[(k * (ny - 1) + j - 1) * nx + i]
                                        * shared.get(c - nx);
                                }
                                if j + 1 < ny {
                                    sigma +=
                                        self.gy[(k * (ny - 1) + j) * nx + i] * shared.get(c + nx);
                                }
                                if k > 0 {
                                    sigma +=
                                        self.gz[((k - 1) * ny + j) * nx + i] * shared.get(c - slab);
                                }
                                if k + 1 < nz {
                                    sigma += self.gz[(k * ny + j) * nx + i] * shared.get(c + slab);
                                }
                                let old = shared.get(c);
                                let gs = (rhs[c] + sigma) / self.diag[c];
                                shared.set(c, old + omega * (gs - old));
                            }
                        }
                    }
                }
            });
        }
    }

    fn energy_balance(&self, t: &[f64], injected: f64) -> EnergyBalance {
        let (nx, ny, nz) = (self.dim.nx, self.dim.ny, self.dim.nz);
        let mut extracted = 0.0;
        for j in 0..ny {
            for i in 0..nx {
                let cb = self.dim.flat(i, j, 0);
                extracted += self.g_bottom[j * nx + i] * (t[cb] - self.t_bottom[j * nx + i]);
                let ct = self.dim.flat(i, j, nz - 1);
                extracted += self.g_top[j * nx + i] * (t[ct] - self.t_top[j * nx + i]);
            }
        }
        EnergyBalance {
            injected: Power::from_watts(injected),
            extracted: Power::from_watts(extracted),
        }
    }

    /// Packages a converged iterate without consuming the operator, so
    /// repeated solves (transient stepping, electrothermal fixed point)
    /// reuse one assembly.
    pub(crate) fn solution(&self, t: &[f64], stats: SolverStats, injected: f64) -> Solution {
        let energy = self.energy_balance(t, injected);
        let mut grid = Grid3::filled(self.dim, 0.0);
        grid.as_mut_slice().copy_from_slice(t);
        Solution {
            temperatures: TemperatureField::from_kelvin(grid),
            stats,
            energy,
        }
    }
}

/// Sequential left-to-right sum — the deterministic final reduction over
/// per-slab partials.
pub(crate) fn ordered_sum(parts: impl Iterator<Item = f64>) -> f64 {
    parts.fold(0.0, |acc, v| acc + v)
}

/// Per-slab partial dots of two equally-banded slices — sequential
/// accumulation per slab (bitwise-compatible with the historical fused
/// per-element closure form), written as a slice zip so the loads
/// stream. Per-slab partials keep reductions independent of the band
/// partitioning (see the module docs).
pub(crate) fn slab_dot_parts(a: &[f64], b: &[f64], slab: usize) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len());
    debug_assert!(a.len().is_multiple_of(slab.max(1)));
    a.chunks_exact(slab)
        .zip(b.chunks_exact(slab))
        .map(|(ca, cb)| ca.iter().zip(cb).fold(0.0, |acc, (x, y)| acc + x * y))
        .collect()
}

/// Per-slab partials of `Σ (a − b)²` without touching either input —
/// the residual-norm reduction (`b` keeps holding `A·x` for the caller).
pub(crate) fn slab_norm2_diff_parts(a: &[f64], b: &[f64], slab: usize) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len());
    debug_assert!(a.len().is_multiple_of(slab.max(1)));
    a.chunks_exact(slab)
        .zip(b.chunks_exact(slab))
        .map(|(ca, cb)| {
            ca.iter().zip(cb).fold(0.0, |acc, (x, y)| {
                let d = x - y;
                acc + d * d
            })
        })
        .collect()
}

/// Per-slab partial dots of two f32 slices, accumulated in f64 in the
/// same sequential per-slab order as [`slab_dot_parts`].
pub(crate) fn slab_dot_wide_parts(a: &[f32], b: &[f32], slab: usize) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len());
    debug_assert!(a.len().is_multiple_of(slab.max(1)));
    a.chunks_exact(slab)
        .zip(b.chunks_exact(slab))
        .map(|(ca, cb)| {
            ca.iter()
                .zip(cb)
                .fold(0.0, |acc, (&x, &y)| acc + f64::from(x) * f64::from(y))
        })
        .collect()
}

pub(crate) fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

pub(crate) fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Jacobi-preconditioned conjugate-gradient solver.
///
/// ```
/// use tsc_thermal::CgSolver;
/// let solver = CgSolver::new().with_tolerance(1e-10).with_max_iterations(20_000);
/// assert!(solver.tolerance() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CgSolver {
    tol: f64,
    max_iter: usize,
    threads: usize,
    crossover: usize,
    traj_stride: usize,
    precon: Preconditioner,
    precision: Precision,
    smoother: crate::multigrid::Smoother,
}

impl CgSolver {
    /// Default solver: relative tolerance `1e-9`, generous iteration cap,
    /// one worker per available core above the parallel crossover,
    /// Jacobi preconditioning, pure-f64 arithmetic.
    #[must_use]
    pub fn new() -> Self {
        Self {
            tol: 1e-9,
            max_iter: 50_000,
            threads: default_threads(),
            crossover: DEFAULT_PARALLEL_CROSSOVER,
            traj_stride: 100,
            precon: Preconditioner::Jacobi,
            precision: Precision::F64,
            smoother: crate::multigrid::Smoother::RedBlack,
        }
    }

    /// Builder: selects the preconditioner.
    /// [`Preconditioner::Multigrid`] replaces the diagonal scaling with
    /// one geometric-multigrid V-cycle per CG iteration — far fewer
    /// iterations on large or strongly anisotropic meshes, identical
    /// bitwise thread-count independence. [`Preconditioner::None`] falls
    /// back to Jacobi (CG requires an SPD preconditioner; identity
    /// scaling is never faster than diagonal here).
    #[must_use]
    pub fn with_preconditioner(mut self, precon: Preconditioner) -> Self {
        self.precon = precon;
        self
    }

    /// Configured preconditioner.
    #[must_use]
    pub fn preconditioner(&self) -> Preconditioner {
        self.precon
    }

    /// Builder: selects the floating-point scheme.
    /// [`Precision::Mixed`] runs f64-corrected iterative refinement over
    /// an f32 inner MG-PCG (cache-blocked SoA kernels, see
    /// `crate::kernels`): each outer pass computes the true residual in
    /// f64, solves the correction equation in f32 to a loose inner
    /// tolerance, and applies the correction in f64 — the requested
    /// tolerance (down to `1e-11` and beyond) is met against the f64
    /// residual. A mixed solve always preconditions with multigrid
    /// internally, whatever [`CgSolver::with_preconditioner`] says, and
    /// falls back to the pure-f64 multigrid path if refinement stalls.
    #[must_use]
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Configured floating-point scheme.
    #[must_use]
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Builder: selects the multigrid smoother (effective for
    /// [`Preconditioner::Multigrid`] and for every mixed-precision
    /// solve). [`crate::multigrid::Smoother::Chebyshev`] replaces the
    /// red-black sweeps with a fixed-degree Chebyshev polynomial in
    /// `D⁻¹A` — matvec plus AXPY only, no inner reductions or coloured
    /// scatter, so it autovectorizes and scales better in parallel while
    /// keeping the V-cycle symmetric (valid inside CG).
    #[must_use]
    pub fn with_smoother(mut self, smoother: crate::multigrid::Smoother) -> Self {
        self.smoother = smoother;
        self
    }

    /// Configured multigrid smoother.
    #[must_use]
    pub fn smoother(&self) -> crate::multigrid::Smoother {
        self.smoother
    }

    /// Builder: sets the relative residual tolerance.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < tol < 1`.
    #[must_use]
    pub fn with_tolerance(mut self, tol: f64) -> Self {
        assert!(tol > 0.0 && tol < 1.0, "tolerance must be in (0, 1)");
        self.tol = tol;
        self
    }

    /// Builder: sets the iteration cap.
    ///
    /// # Panics
    ///
    /// Panics if `max_iter` is zero.
    #[must_use]
    pub fn with_max_iterations(mut self, max_iter: usize) -> Self {
        assert!(max_iter > 0, "iteration cap must be positive");
        self.max_iter = max_iter;
        self
    }

    /// Builder: caps the worker threads (default: one per available
    /// core). `1` forces the serial path regardless of problem size.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "thread count must be positive");
        self.threads = threads;
        self
    }

    /// Builder: problem size (cells) below which the solve stays serial
    /// even when multiple threads are configured. `0` parallelises
    /// everything (useful for testing), large values force serial.
    #[must_use]
    pub fn with_parallel_crossover(mut self, cells: usize) -> Self {
        self.crossover = cells;
        self
    }

    /// Builder: records the residual into
    /// [`SolverStats::trajectory`] every `stride` iterations (the
    /// initial and final residuals are always recorded).
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero.
    #[must_use]
    pub fn with_trajectory_stride(mut self, stride: usize) -> Self {
        assert!(stride > 0, "trajectory stride must be positive");
        self.traj_stride = stride;
        self
    }

    /// Configured tolerance.
    #[must_use]
    pub fn tolerance(&self) -> f64 {
        self.tol
    }

    pub(crate) fn params(&self) -> CgParams {
        CgParams {
            tol: self.tol,
            max_iter: self.max_iter,
            threads: self.threads,
            crossover: self.crossover,
            traj_stride: self.traj_stride,
        }
    }

    pub(crate) fn mg_params(&self) -> crate::multigrid::MgParams {
        crate::multigrid::MgParams::with_exec(self.threads, self.crossover)
            .with_smoother(self.smoother)
    }

    /// Solves the problem.
    ///
    /// # Errors
    ///
    /// [`SolveError::NoBoundary`] when no heatsink is attached;
    /// [`SolveError::NotConverged`] when the residual stalls above the
    /// tolerance; [`SolveError::Diverged`] when the iteration turns
    /// non-finite (never `Ok` with a NaN temperature).
    pub fn solve(&self, p: &Problem) -> Result<Solution, SolveError> {
        let asm = Assembled::build(p)?;
        let mut x = vec![asm.initial_guess; asm.dim.len()];
        let stats = match (self.precision, self.precon) {
            (Precision::Mixed, _) => {
                let mg = crate::multigrid::MgHierarchy::build(&asm, &self.mg_params())?;
                let mut ws = mg.workspace();
                let h32 = crate::kernels::HierarchyF32::build(&asm, &mg);
                let mut ws32 = h32.workspace();
                asm.cg_core_mixed(
                    &asm.rhs,
                    &mut x,
                    &self.params(),
                    &mg,
                    &mut ws,
                    &h32,
                    &mut ws32,
                )?
            }
            (Precision::F64, Preconditioner::Multigrid) => {
                let mg = crate::multigrid::MgHierarchy::build(&asm, &self.mg_params())?;
                let mut ws = mg.workspace();
                asm.cg_core_mg(&asm.rhs, &mut x, &self.params(), &mg, &mut ws)?
            }
            _ => asm.cg_core(None, &asm.rhs, &mut x, &self.params())?,
        };
        let injected = p.total_power().watts();
        Ok(asm.solution(&x, stats, injected))
    }
}

impl Default for CgSolver {
    fn default() -> Self {
        Self::new()
    }
}

/// Red-black successive over-relaxation (Gauss-Seidel with relaxation
/// factor ω, odd-even ordering).
///
/// Slower than CG on large meshes but algorithmically independent — used
/// to cross-check CG solutions as the paper cross-checks PACT against
/// COMSOL and Celsius. The red-black ordering makes each half-sweep
/// embarrassingly parallel and thread-count independent (see the module
/// docs).
///
/// The true residual `‖b − A·x‖ / ‖b‖` is evaluated every
/// [`SorSolver::with_check_interval`] sweeps **and unconditionally after
/// the final sweep**, so the reported residual always describes the
/// returned field — convergence can never be declared (or a budget
/// exhausted) against a stale checkpoint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SorSolver {
    omega: f64,
    tol: f64,
    max_sweeps: usize,
    check_interval: usize,
    threads: usize,
    crossover: usize,
}

impl SorSolver {
    /// Default: ω = 1.9, tolerance 1e-9, residual check every 10 sweeps.
    #[must_use]
    pub fn new() -> Self {
        Self {
            omega: 1.9,
            tol: 1e-9,
            max_sweeps: 200_000,
            check_interval: 10,
            threads: default_threads(),
            crossover: DEFAULT_PARALLEL_CROSSOVER,
        }
    }

    /// Builder: relaxation factor.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < omega < 2` (SOR stability bound).
    #[must_use]
    pub fn with_omega(mut self, omega: f64) -> Self {
        assert!(
            omega > 0.0 && omega < 2.0,
            "SOR requires 0 < omega < 2, got {omega}"
        );
        self.omega = omega;
        self
    }

    /// Builder: relative residual tolerance.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < tol < 1`.
    #[must_use]
    pub fn with_tolerance(mut self, tol: f64) -> Self {
        assert!(tol > 0.0 && tol < 1.0, "tolerance must be in (0, 1)");
        self.tol = tol;
        self
    }

    /// Builder: sweep cap.
    ///
    /// # Panics
    ///
    /// Panics if `max_sweeps` is zero.
    #[must_use]
    pub fn with_max_sweeps(mut self, max_sweeps: usize) -> Self {
        assert!(max_sweeps > 0, "sweep cap must be positive");
        self.max_sweeps = max_sweeps;
        self
    }

    /// Builder: sweeps between true-residual evaluations. The final
    /// sweep is always followed by a residual check regardless of the
    /// interval.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    #[must_use]
    pub fn with_check_interval(mut self, interval: usize) -> Self {
        assert!(interval > 0, "check interval must be positive");
        self.check_interval = interval;
        self
    }

    /// Builder: caps the worker threads (default: one per available
    /// core). See [`CgSolver::with_threads`].
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "thread count must be positive");
        self.threads = threads;
        self
    }

    /// Builder: serial/parallel crossover in cells. See
    /// [`CgSolver::with_parallel_crossover`].
    #[must_use]
    pub fn with_parallel_crossover(mut self, cells: usize) -> Self {
        self.crossover = cells;
        self
    }

    /// Solves the problem.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`CgSolver::solve`].
    pub fn solve(&self, p: &Problem) -> Result<Solution, SolveError> {
        // tsc-analyze: allow(no-wallclock-numeric): feeds SolverStats wall-time only, never the numerics
        let t0 = Instant::now();
        let asm = Assembled::build(p)?;
        let n = asm.dim.len();
        let plan = ExecPlan::new(asm.dim, self.threads, self.crossover);
        let b_norm = norm(&asm.rhs).max(f64::MIN_POSITIVE);
        let mut x = vec![asm.initial_guess; n];
        #[cfg(feature = "fault-inject")]
        let max_sweeps = {
            crate::fault::begin_solve();
            crate::fault::poison_field(&mut x);
            crate::fault::truncated_budget(self.max_sweeps)
        };
        #[cfg(not(feature = "fault-inject"))]
        let max_sweeps = self.max_sweeps;
        let mut scratch = vec![0.0; n];
        let mut sweeps = 0_usize;
        let mut matvecs = 0_usize;
        let mut trajectory = Vec::new();

        let residual = loop {
            asm.sor_sweep(&plan, &mut x, self.omega);
            sweeps += 1;
            let last = sweeps == max_sweeps;
            if sweeps.is_multiple_of(self.check_interval) || last {
                #[cfg(not(feature = "fault-inject"))]
                let r = asm.residual_norm(&plan, &x, &asm.rhs, b_norm, &mut scratch);
                #[cfg(feature = "fault-inject")]
                let r = crate::fault::corrupt_residual(
                    sweeps,
                    asm.residual_norm(&plan, &x, &asm.rhs, b_norm, &mut scratch),
                );
                matvecs += 1;
                trajectory.push((sweeps, r));
                if !r.is_finite() || r <= self.tol || last {
                    break r;
                }
            }
        };

        if !residual.is_finite() {
            return Err(SolveError::Diverged {
                iterations: sweeps,
                residual,
            });
        }
        if residual > self.tol {
            return Err(SolveError::NotConverged {
                iterations: sweeps,
                residual,
            });
        }
        let injected = p.total_power().watts();
        let stats = SolverStats {
            iterations: sweeps,
            residual,
            matvecs,
            cycles: 0,
            level_residuals: Vec::new(),
            preconditioner: Preconditioner::None,
            precision: Precision::F64,
            refinements: 0,
            assembly_seconds: asm.assembly_seconds,
            solve_seconds: t0.elapsed().as_secs_f64() - asm.assembly_seconds,
            threads: plan.threads(),
            trajectory,
        };
        Ok(asm.solution(&x, stats, injected))
    }
}

impl Default for SorSolver {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heatsink::Heatsink;
    use tsc_units::{HeatFlux, HeatTransferCoefficient, Length, Temperature, ThermalConductivity};

    fn slab(nx: usize, ny: usize, nz: usize, k: f64) -> Problem {
        Problem::uniform_block(
            nx,
            ny,
            nz,
            Length::from_millimeters(1.0),
            Length::from_millimeters(1.0),
            Length::from_micrometers(100.0),
            ThermalConductivity::new(k),
        )
    }

    #[test]
    fn no_boundary_is_singular() {
        let p = slab(4, 4, 4, 100.0);
        assert_eq!(
            CgSolver::new().solve(&p).unwrap_err(),
            SolveError::NoBoundary
        );
        assert_eq!(
            SorSolver::new().solve(&p).unwrap_err(),
            SolveError::NoBoundary
        );
    }

    /// Analytic 1-D check: uniform flux q'' through a slab of thickness L,
    /// conductivity k, into a sink of coefficient h:
    /// `T_top = T_amb + q''/h + q''·L/k` (within half-cell discretization).
    #[test]
    fn one_dimensional_slab_matches_analytic() {
        let mut p = slab(4, 4, 32, 10.0);
        p.set_bottom_heatsink(Heatsink::new(
            HeatTransferCoefficient::new(1e5),
            Temperature::from_celsius(25.0),
        ));
        let q = HeatFlux::from_watts_per_square_cm(100.0);
        p.add_uniform_top_flux(q);
        let sol = CgSolver::new().solve(&p).expect("converges");
        let t_top = sol.temperatures.layer_max(31).celsius();
        // Source sits at the top cell *center*, so conduction spans
        // L - dz/2 of the slab.
        let l_eff = 100e-6 * (1.0 - 0.5 / 32.0);
        let expected = 25.0 + 1e6 / 1e5 + 1e6 * l_eff / 10.0;
        assert!(
            (t_top - expected).abs() < 0.05,
            "expected {expected:.3} °C, got {t_top:.3} °C"
        );
    }

    #[test]
    fn energy_is_conserved() {
        let mut p = slab(8, 8, 8, 50.0);
        p.set_bottom_heatsink(Heatsink::two_phase());
        p.add_power(3, 4, 7, tsc_units::Power::from_watts(2.5));
        p.add_power(1, 1, 3, tsc_units::Power::from_watts(0.5));
        let sol = CgSolver::new().solve(&p).expect("converges");
        assert!(
            sol.energy.relative_error() < 1e-6,
            "balance error {}",
            sol.energy.relative_error()
        );
    }

    #[test]
    fn maximum_principle_holds() {
        // With all heat injected and a single sink, every temperature sits
        // at or above ambient and the peak is at a heated cell.
        let mut p = slab(8, 8, 6, 20.0);
        p.set_bottom_heatsink(Heatsink::microfluidic());
        p.add_power(4, 4, 5, tsc_units::Power::from_watts(1.0));
        let sol = CgSolver::new().solve(&p).expect("converges");
        let ambient = Temperature::from_celsius(25.0);
        assert!(sol.temperatures.min_temperature() >= ambient - tsc_units::TempDelta::new(1e-9));
        assert_eq!(
            sol.temperatures.hottest_cell(),
            tsc_geometry::Index3::new(4, 4, 5)
        );
    }

    #[test]
    fn cg_and_sor_agree() {
        let mut p = slab(6, 6, 6, 5.0);
        p.set_bottom_heatsink(Heatsink::two_phase());
        p.add_power(2, 3, 5, tsc_units::Power::from_watts(1.0));
        p.set_layer_conductivity(
            3,
            ThermalConductivity::new(0.5),
            ThermalConductivity::new(2.0),
        );
        let a = CgSolver::new().solve(&p).expect("cg");
        let b = SorSolver::new()
            .with_tolerance(1e-10)
            .solve(&p)
            .expect("sor");
        let ta = a.temperatures.max_temperature().kelvin();
        let tb = b.temperatures.max_temperature().kelvin();
        assert!(
            (ta - tb).abs() < 1e-3,
            "solvers disagree: {ta:.6} vs {tb:.6}"
        );
    }

    #[test]
    fn top_heatsink_works_alone() {
        let mut p = slab(4, 4, 4, 100.0);
        p.set_top_heatsink(Heatsink::forced_air());
        p.add_power(0, 0, 0, tsc_units::Power::from_watts(0.1));
        let sol = CgSolver::new().solve(&p).expect("converges");
        assert!(sol.energy.relative_error() < 1e-6);
        // Heat must flow up: bottom is hotter than top.
        assert!(sol.temperatures.layer_max(0) > sol.temperatures.layer_max(3));
    }

    #[test]
    fn hotter_with_more_power() {
        let mut p1 = slab(6, 6, 4, 10.0);
        p1.set_bottom_heatsink(Heatsink::two_phase());
        p1.add_power(3, 3, 3, tsc_units::Power::from_watts(1.0));
        let mut p2 = p1.clone();
        p2.add_power(3, 3, 3, tsc_units::Power::from_watts(1.0));
        let t1 = CgSolver::new()
            .solve(&p1)
            .expect("p1")
            .temperatures
            .max_temperature();
        let t2 = CgSolver::new()
            .solve(&p2)
            .expect("p2")
            .temperatures
            .max_temperature();
        assert!(t2 > t1);
    }

    #[test]
    fn cooler_with_pillar_inclusion() {
        // A poor-conductivity stack heated at the top; blending a 10%
        // high-k column under the source must reduce the peak.
        let make = |with_pillar: bool| {
            let mut p = slab(6, 6, 8, 0.5);
            p.set_bottom_heatsink(Heatsink::two_phase());
            p.add_power(3, 3, 7, tsc_units::Power::from_watts(0.5));
            if with_pillar {
                for k in 0..8 {
                    p.blend_vertical_inclusion(3, 3, k, 0.1, ThermalConductivity::new(105.0));
                }
            }
            CgSolver::new()
                .solve(&p)
                .expect("solve")
                .temperatures
                .max_temperature()
        };
        let without = make(false);
        let with = make(true);
        assert!(
            with.kelvin() + 1.0 < without.kelvin(),
            "pillar must cool: {with} vs {without}"
        );
    }

    #[test]
    fn unconverged_reports_stats() {
        let mut p = slab(8, 8, 8, 0.2);
        p.set_bottom_heatsink(Heatsink::two_phase());
        p.add_power(4, 4, 7, tsc_units::Power::from_watts(1.0));
        let err = CgSolver::new()
            .with_max_iterations(1)
            .solve(&p)
            .unwrap_err();
        match err {
            SolveError::NotConverged {
                iterations,
                residual,
            } => {
                assert_eq!(iterations, 1);
                assert!(residual > 0.0);
            }
            other => panic!("expected NotConverged, got {other:?}"),
        }
    }

    #[test]
    fn nan_power_is_reported_as_divergence() {
        // A NaN heat source poisons the right-hand side; both solvers
        // must refuse with `Diverged` rather than return garbage or spin
        // out their entire iteration budget.
        let mut p = slab(4, 4, 4, 50.0);
        p.set_bottom_heatsink(Heatsink::two_phase());
        p.add_power(1, 1, 1, tsc_units::Power::from_watts(f64::NAN));
        match CgSolver::new().solve(&p).unwrap_err() {
            SolveError::Diverged { residual, .. } => assert!(residual.is_nan()),
            other => panic!("expected Diverged, got {other:?}"),
        }
        match SorSolver::new().solve(&p).unwrap_err() {
            SolveError::Diverged {
                iterations,
                residual,
            } => {
                assert!(!residual.is_finite());
                // Detected at the first residual checkpoint, not after
                // the 200 000-sweep budget.
                assert!(iterations <= 10, "took {iterations} sweeps to notice");
            }
            other => panic!("expected Diverged, got {other:?}"),
        }
    }

    #[test]
    fn poisoned_operator_diverges_instead_of_converging() {
        // Zero out the diagonal after assembly: the Jacobi preconditioner
        // divides by it, so the first iteration turns non-finite. The
        // kernel must bail out immediately with `Diverged`.
        let mut p = slab(4, 4, 4, 50.0);
        p.set_bottom_heatsink(Heatsink::two_phase());
        p.add_power(1, 1, 1, tsc_units::Power::from_watts(1.0));
        let mut asm = Assembled::build(&p).expect("well-posed");
        asm.diag.iter_mut().for_each(|d| *d = 0.0);
        let mut x = vec![asm.initial_guess; asm.dim.len()];
        let err = asm
            .cg_core(None, &asm.rhs.clone(), &mut x, &CgSolver::new().params())
            .unwrap_err();
        match err {
            SolveError::Diverged { iterations, .. } => {
                assert!(iterations <= 1, "bail-out must be immediate")
            }
            other => panic!("expected Diverged, got {other:?}"),
        }
    }

    #[test]
    fn stats_record_work_and_trajectory() {
        let mut p = slab(8, 8, 8, 20.0);
        p.set_bottom_heatsink(Heatsink::two_phase());
        p.add_power(4, 4, 7, tsc_units::Power::from_watts(1.0));
        let sol = CgSolver::new()
            .with_trajectory_stride(5)
            .solve(&p)
            .expect("converges");
        let s = &sol.stats;
        assert!(s.iterations > 0);
        assert_eq!(s.matvecs, s.iterations + 1);
        assert!(s.assembly_seconds >= 0.0);
        assert!(s.solve_seconds > 0.0);
        assert!(s.threads >= 1);
        assert_eq!(s.trajectory.first().map(|t| t.0), Some(0));
        assert_eq!(s.trajectory.last().map(|t| t.0), Some(s.iterations));
        assert!(
            s.trajectory.windows(2).all(|w| w[0].0 < w[1].0),
            "trajectory iterations must be strictly increasing"
        );
        assert!(s.trajectory.last().map(|t| t.1) <= Some(1e-9));
    }

    #[test]
    fn forced_parallel_cg_is_bitwise_identical_to_serial() {
        let mut p = slab(6, 6, 7, 15.0);
        p.set_bottom_heatsink(Heatsink::two_phase());
        p.add_power(3, 2, 6, tsc_units::Power::from_watts(0.8));
        p.set_layer_conductivity(
            2,
            ThermalConductivity::new(1.5),
            ThermalConductivity::new(4.0),
        );
        let serial = CgSolver::new().with_threads(1).solve(&p).expect("serial");
        let parallel = CgSolver::new()
            .with_threads(3)
            .with_parallel_crossover(0)
            .solve(&p)
            .expect("parallel");
        // Per-slab ordered reductions make the parallel path reproduce
        // the serial arithmetic exactly, not just approximately.
        assert_eq!(serial.stats.iterations, parallel.stats.iterations);
        for (a, b) in serial
            .temperatures
            .iter_kelvin()
            .zip(parallel.temperatures.iter_kelvin())
        {
            assert_eq!(a, b, "parallel CG must match serial bitwise");
        }
        assert!(parallel.stats.threads > 1, "plan must actually fan out");
    }

    #[test]
    fn forced_parallel_sor_is_bitwise_identical_to_serial() {
        let mut p = slab(5, 7, 6, 8.0);
        p.set_bottom_heatsink(Heatsink::two_phase());
        p.add_power(2, 3, 5, tsc_units::Power::from_watts(0.4));
        let serial = SorSolver::new().with_threads(1).solve(&p).expect("serial");
        let parallel = SorSolver::new()
            .with_threads(3)
            .with_parallel_crossover(0)
            .solve(&p)
            .expect("parallel");
        assert_eq!(serial.stats.iterations, parallel.stats.iterations);
        for (a, b) in serial
            .temperatures
            .iter_kelvin()
            .zip(parallel.temperatures.iter_kelvin())
        {
            assert_eq!(a, b, "parallel SOR must match serial bitwise");
        }
    }

    #[test]
    fn sor_final_residual_describes_returned_field() {
        // Pick a sweep budget that is NOT a multiple of the check
        // interval: the final sweep must still get a true residual
        // check, and the reported value must match an independent
        // recomputation against the returned field.
        let mut p = slab(6, 6, 4, 30.0);
        p.set_bottom_heatsink(Heatsink::two_phase());
        p.add_power(3, 3, 3, tsc_units::Power::from_watts(1.0));
        let err = SorSolver::new()
            .with_check_interval(10)
            .with_max_sweeps(7)
            .solve(&p)
            .unwrap_err();
        match err {
            SolveError::NotConverged {
                iterations,
                residual,
            } => {
                assert_eq!(iterations, 7);
                assert!(
                    residual.is_finite() && residual > 0.0,
                    "stale or sentinel residual leaked: {residual}"
                );
            }
            other => panic!("expected NotConverged, got {other:?}"),
        }
    }
}
