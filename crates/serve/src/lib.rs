//! `tsc-serve` — a hermetic multi-threaded thermal-solve service.
//!
//! The workspace's solvers are libraries; this crate puts them behind a
//! long-running process so placement sweeps, co-design studies, and CI
//! harnesses can share one warm solver state instead of paying assembly
//! and multigrid-hierarchy construction per invocation.  Everything is
//! `std`-only: the HTTP/1.1 layer is hand-rolled and strictly bounded
//! ([`http`]), JSON bodies use the `tsc_bench::json` dialect, and the
//! threading primitives are `Mutex`/`Condvar`/atomics.
//!
//! # Endpoints
//!
//! | Endpoint            | Semantics                                           |
//! |---------------------|-----------------------------------------------------|
//! | `POST /v1/solve`    | One stack solve at a fixed configuration            |
//! | `POST /v1/flow`     | A full co-design flow run (Sec. III flows)          |
//! | `POST /v1/pillars`  | A pillar placement run (Sec. IIIA)                  |
//! | `POST /v1/transient`| A stateful streamed transient session ([`session`]) |
//! | `POST /v1/jobs`     | Submit a long-running optimization job (`jobs.rs`)  |
//! | `GET /v1/jobs/{id}` | Job status (`/events` streams NDJSON progress,      |
//! |                     | `POST …/cancel` stops, `GET …/checkpoint` resumes)  |
//! | `GET /v1/designs`   | The built-in design registry                        |
//! | `GET /metrics`      | Prometheus text exposition                          |
//! | `GET /healthz`      | Liveness probe                                      |
//! | `POST /v1/shutdown` | Request a graceful drain (the CLI honours it)       |
//!
//! # Architecture
//!
//! Heavy requests flow: connection thread → [coalescing map] → bounded
//! job queue (429 + `Retry-After` when full) → worker thread → LRU
//! [`pool::ContextPool`] of `SolveContext`s keyed by the PR-2 operator
//! fingerprint → response fanned out to every coalesced waiter as the
//! same bytes.  Deadlines are waiter-side only (504): an accepted job
//! always executes, keeping the pool warm.  Shutdown closes the queue
//! and drains it — accepted work is never dropped.

#![forbid(unsafe_code)]

pub mod api;
pub mod http;
pub(crate) mod jobs;
pub mod locks;
pub mod metrics;
pub mod pool;
pub mod queue;
pub mod ring;
pub mod router;
pub mod server;
pub mod session;
pub mod shard;

pub use api::ApiJob;
pub use http::{Limits, Request, Response};
pub use locks::{lock_or_recover, RankedMutex};
pub use metrics::{validate_exposition, Metrics};
pub use pool::{ContextKey, ContextPool, LruPool, ServicePools};
pub use queue::Priority;
pub use ring::HashRing;
pub use router::{Affinity, Router, RouterConfig};
pub use server::{Server, ServerConfig};
pub use shard::{ShardProcess, ShardSpec};
