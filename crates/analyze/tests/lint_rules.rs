//! Fixture-driven end-to-end tests of the lint gate: each rule must
//! fire on its bad fixture and stay silent on the clean one.

use tsc_analyze::rules::{lint_source, FileClass};

/// Numeric library code — the strictest classification.
const NUMERIC_LIB: FileClass = FileClass {
    is_library: true,
    is_numeric: true,
};

fn fixture(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read fixture {}: {e}", path.display()))
}

fn rules_fired(name: &str) -> Vec<&'static str> {
    let mut rules: Vec<_> = lint_source(&fixture(name), NUMERIC_LIB)
        .into_iter()
        .map(|v| v.rule)
        .collect();
    rules.dedup();
    rules
}

#[test]
fn unsafe_without_safety_comment_fires() {
    assert_eq!(rules_fired("unsafe_no_safety.rs"), ["safety-comment"]);
}

#[test]
fn static_mut_fires() {
    assert_eq!(rules_fired("static_mut.rs"), ["no-static-mut"]);
}

#[test]
fn unwrap_in_library_fires_but_not_in_tests() {
    let violations = lint_source(&fixture("unwrap_in_lib.rs"), NUMERIC_LIB);
    assert_eq!(violations.len(), 2, "one per non-test unwrap/expect site");
    assert!(violations.iter().all(|v| v.rule == "no-unwrap"));
    // The `#[cfg(test)]` module's unwrap (line > 10) must NOT be flagged.
    assert!(violations.iter().all(|v| v.line < 10), "{violations:?}");
}

#[test]
fn unwrap_outside_numeric_crates_is_allowed() {
    let non_numeric = FileClass {
        is_library: true,
        is_numeric: false,
    };
    assert!(lint_source(&fixture("unwrap_in_lib.rs"), non_numeric).is_empty());
}

#[test]
fn float_eq_fires() {
    let violations = lint_source(&fixture("float_eq.rs"), NUMERIC_LIB);
    assert_eq!(violations.len(), 2, "one per comparison: {violations:?}");
    assert!(violations.iter().all(|v| v.rule == "float-eq"));
}

#[test]
fn hash_iteration_reduction_fires() {
    let rules = rules_fired("hash_iter.rs");
    assert_eq!(rules, ["hash-iter"], "both reduction styles must trip it");
    assert_eq!(
        lint_source(&fixture("hash_iter.rs"), NUMERIC_LIB).len(),
        2,
        "iterator-chain sum and for-loop accumulation"
    );
}

#[test]
fn clean_fixture_passes() {
    let violations = lint_source(&fixture("clean.rs"), NUMERIC_LIB);
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn allow_directive_without_reason_is_itself_flagged() {
    let src = "pub fn f(xs: &[f64]) -> f64 {\n    \
               // tsc-analyze: allow(no-unwrap)\n    \
               *xs.first().unwrap()\n}\n";
    let violations = lint_source(src, NUMERIC_LIB);
    assert!(
        violations.iter().any(|v| v.rule == "allow-missing-reason"),
        "{violations:?}"
    );
}

#[test]
fn allow_directive_with_unknown_rule_is_flagged() {
    let src = "// tsc-analyze: allow(no-such-rule): because\npub fn f() {}\n";
    let violations = lint_source(src, NUMERIC_LIB);
    assert!(
        violations.iter().any(|v| v.rule == "unknown-rule"),
        "{violations:?}"
    );
}

/// The gate must pass on the workspace itself — the same invariant CI
/// enforces via `cargo run -p tsc-analyze`.
#[test]
fn workspace_is_lint_clean() {
    let root = tsc_analyze::walk::workspace_root();
    let report = tsc_analyze::lint_workspace(&root).expect("workspace walk");
    let rendered: Vec<String> = report
        .violations
        .iter()
        .map(|(f, v)| format!("{}:{}: [{}] {}", f.display(), v.line, v.rule, v.message))
        .collect();
    assert!(report.clean(), "{}", rendered.join("\n"));
    assert!(report.files > 50, "walk found too few files");
}
