//! Electrothermal fixed-point iteration: leakage power grows with
//! temperature, temperature grows with power.
//!
//! The paper's 125 °C limit exists because leakage (and reliability)
//! degrade steeply with junction temperature; PACT-class flows close the
//! loop by iterating power and temperature. This module implements the
//! standard fixed-point scheme with an exponential leakage model
//! `P(T) = P_dyn + P_leak0 · exp((T − T_ref)/T_char)` and detects
//! *thermal runaway* — the regime where each iteration heats the stack
//! faster than the sink can respond.

use crate::field::TemperatureField;
use crate::multigrid::{MgHierarchy, MgParams};
use crate::problem::Problem;
use crate::solver::{Assembled, CgSolver, Preconditioner, SolveError};
use tsc_units::{Power, Ratio, TempDelta, Temperature};

/// The leakage feedback model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeakageModel {
    /// Fraction of each cell's staged power that is leakage at `t_ref`.
    pub leakage_fraction: Ratio,
    /// Reference temperature at which the staged powers were computed.
    pub t_ref: Temperature,
    /// Characteristic temperature of the exponential growth
    /// (sub-threshold leakage roughly doubles every ~15-25 K at 7 nm).
    pub doubling_interval: TempDelta,
}

impl LeakageModel {
    /// A 7 nm-class model: 10 % leakage at the 100 °C staging point,
    /// doubling every 20 K.
    #[must_use]
    pub fn seven_nm() -> Self {
        Self {
            leakage_fraction: Ratio::from_percent(10.0),
            t_ref: Temperature::from_celsius(100.0),
            doubling_interval: TempDelta::new(20.0),
        }
    }

    /// Power multiplier of a cell at temperature `t`.
    #[must_use]
    pub fn multiplier(&self, t: Temperature) -> f64 {
        let leak = self.leakage_fraction.fraction();
        let dt = (t - self.t_ref).kelvin();
        let growth = 2.0_f64.powf(dt / self.doubling_interval.kelvin());
        (1.0 - leak) + leak * growth
    }
}

/// Outcome of an electrothermal solve.
#[derive(Debug, Clone)]
pub struct ElectrothermalSolution {
    /// The converged temperature field.
    pub temperatures: TemperatureField,
    /// Total power including the converged leakage.
    pub total_power: Power,
    /// Fixed-point iterations used.
    pub iterations: usize,
}

/// Failure modes of the coupled solve.
#[derive(Debug, Clone, PartialEq)]
pub enum ElectrothermalError {
    /// The inner linear solve failed.
    Solve(SolveError),
    /// The fixed point diverged: each iteration raised the junction
    /// temperature further — thermal runaway.
    ThermalRunaway {
        /// Junction temperature when divergence was declared.
        junction: Temperature,
        /// Iterations performed before giving up.
        iterations: usize,
    },
}

impl core::fmt::Display for ElectrothermalError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Solve(e) => write!(f, "inner solve failed: {e}"),
            Self::ThermalRunaway {
                junction,
                iterations,
            } => write!(
                f,
                "thermal runaway after {iterations} iterations (junction at {junction})"
            ),
        }
    }
}

impl std::error::Error for ElectrothermalError {}

impl From<SolveError> for ElectrothermalError {
    fn from(e: SolveError) -> Self {
        Self::Solve(e)
    }
}

/// Solves the coupled problem: iterate `T → P(T) → T` until the junction
/// moves less than `tol` kelvin, or declare runaway.
///
/// The staged powers in `base` are interpreted as measured at
/// `model.t_ref`; each iteration rescales every cell's power by the local
/// temperature multiplier and re-solves.
///
/// The conduction operator is assembled **once**: power feedback only
/// touches the right-hand side, so every fixed-point iteration reuses
/// the same [`Assembled`] system and warm-starts CG from the previous
/// temperature field — after the first solve each iteration typically
/// converges in a fraction of the cold-start iteration count.
///
/// # Errors
///
/// [`ElectrothermalError::Solve`] on inner-solver failure;
/// [`ElectrothermalError::ThermalRunaway`] when the junction keeps
/// accelerating upward (or exceeds 1000 °C) instead of converging.
pub fn solve_electrothermal(
    base: &Problem,
    model: &LeakageModel,
    tol: TempDelta,
    max_iterations: usize,
) -> Result<ElectrothermalSolution, ElectrothermalError> {
    solve_electrothermal_with(
        base,
        model,
        tol,
        max_iterations,
        &CgSolver::new().with_tolerance(1e-8),
    )
}

/// [`solve_electrothermal`] with an explicit inner solver configuration.
///
/// With [`Preconditioner::Multigrid`] the V-cycle hierarchy is built
/// **once** (the operator never changes — only the right-hand side does)
/// and reused by every fixed-point iteration, compounding with the
/// warm start.
///
/// # Errors
///
/// As [`solve_electrothermal`].
pub fn solve_electrothermal_with(
    base: &Problem,
    model: &LeakageModel,
    tol: TempDelta,
    max_iterations: usize,
    solver: &CgSolver,
) -> Result<ElectrothermalSolution, ElectrothermalError> {
    assert!(tol.kelvin() > 0.0, "tolerance must be positive");
    assert!(max_iterations > 0, "need at least one iteration");
    let asm = Assembled::build(base).map_err(ElectrothermalError::from)?;
    let params = solver.params();
    let mut mg = match solver.preconditioner() {
        Preconditioner::Multigrid => {
            let hierarchy =
                MgHierarchy::build(&asm, &MgParams::with_exec(params.threads, params.crossover))?;
            let workspace = hierarchy.workspace();
            Some((hierarchy, workspace))
        }
        _ => None,
    };
    let mut solve_once = |rhs: &[f64], x: &mut [f64]| match &mut mg {
        Some((hierarchy, workspace)) => asm.cg_core_mg(rhs, x, &params, hierarchy, workspace),
        None => asm.cg_core(None, rhs, x, &params),
    };
    let base_power = base.power_flat().to_vec();

    let mut x = vec![asm.initial_guess(); base.dim().len()];
    solve_once(asm.rhs(), &mut x)?;
    let mut last_tj = Temperature::from_kelvin(x.iter().copied().fold(f64::NEG_INFINITY, f64::max));
    let mut last_step = f64::INFINITY;

    for iteration in 1..=max_iterations {
        // Rescale each cell's power by the local multiplier derived from
        // the previous iterate, then re-solve over the same operator.
        let mut total = 0.0;
        let power: Vec<f64> = base_power
            .iter()
            .zip(&x)
            .map(|(&p0, &t)| {
                // tsc-analyze: allow(float-eq): exact-zero test — cells
                // with literally no power must stay at exactly zero
                // rather than picking up a multiplier.
                let p = if p0 == 0.0 {
                    0.0
                } else {
                    p0 * model.multiplier(Temperature::from_kelvin(t))
                };
                total += p;
                p
            })
            .collect();
        let rhs = asm.rhs_with_power(&power);
        let stats = match solve_once(&rhs, &mut x) {
            Ok(stats) => stats,
            // The feedback scaled powers beyond the representable range
            // (the exponential multiplier overflows well before f64 does
            // on its own): numerically indistinguishable from runaway.
            // The divergence-unsafe solver used to mask this by leaking
            // NaN temperatures out of an `Ok` and idling to the
            // iteration cap.
            Err(SolveError::Diverged { .. }) => {
                return Err(ElectrothermalError::ThermalRunaway {
                    junction: last_tj,
                    iterations: iteration,
                })
            }
            Err(e) => return Err(e.into()),
        };
        let tj = Temperature::from_kelvin(x.iter().copied().fold(f64::NEG_INFINITY, f64::max));
        let step = (tj - last_tj).kelvin();

        if tj.celsius() > 1000.0 || (step > last_step.max(0.0) && step > 5.0) {
            return Err(ElectrothermalError::ThermalRunaway {
                junction: tj,
                iterations: iteration,
            });
        }
        if step.abs() <= tol.kelvin() {
            let solution = asm.solution(&x, stats, total);
            return Ok(ElectrothermalSolution {
                total_power: Power::from_watts(total),
                temperatures: solution.temperatures,
                iterations: iteration,
            });
        }
        last_tj = tj;
        last_step = step;
    }
    Err(ElectrothermalError::ThermalRunaway {
        junction: last_tj,
        iterations: max_iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heatsink::Heatsink;
    use tsc_units::{Length, ThermalConductivity};

    fn problem(watts: f64, k: f64) -> Problem {
        let mut p = Problem::uniform_block(
            6,
            6,
            4,
            Length::from_millimeters(1.0),
            Length::from_millimeters(1.0),
            Length::from_micrometers(100.0),
            ThermalConductivity::new(k),
        );
        p.set_bottom_heatsink(Heatsink::two_phase());
        p.add_power(3, 3, 3, Power::from_watts(watts));
        p
    }

    #[test]
    fn multiplier_shape() {
        let m = LeakageModel::seven_nm();
        // At the reference temperature the multiplier is exactly 1.
        assert!((m.multiplier(Temperature::from_celsius(100.0)) - 1.0).abs() < 1e-12);
        // 20 K hotter: leakage doubled -> 0.9 + 0.2 = 1.1.
        assert!((m.multiplier(Temperature::from_celsius(120.0)) - 1.1).abs() < 1e-12);
        // Cooler than reference: below 1 but above the dynamic floor.
        let cold = m.multiplier(Temperature::from_celsius(40.0));
        assert!(cold < 1.0 && cold > 0.9);
    }

    #[test]
    fn mild_feedback_converges_slightly_hotter() {
        let p = problem(0.5, 100.0);
        let open_loop = CgSolver::new().solve(&p).expect("solves");
        let closed = solve_electrothermal(&p, &LeakageModel::seven_nm(), TempDelta::new(0.01), 50)
            .expect("converges");
        let t_open = open_loop.temperatures.max_temperature();
        let t_closed = closed.temperatures.max_temperature();
        assert!(
            t_closed > t_open,
            "leakage feedback heats: {t_open} vs {t_closed}"
        );
        assert!(
            (t_closed - t_open).kelvin() < 5.0,
            "mild case stays mild: {t_open} -> {t_closed}"
        );
        assert!(closed.total_power.watts() > p.total_power().watts());
        assert!(closed.iterations >= 1);
    }

    #[test]
    fn strong_feedback_runs_away() {
        // A poorly conducting stack with heavy power: every extra kelvin
        // buys more leakage than the sink can remove.
        let p = problem(40.0, 0.4);
        let err = solve_electrothermal(
            &p,
            &LeakageModel {
                leakage_fraction: Ratio::from_percent(30.0),
                ..LeakageModel::seven_nm()
            },
            TempDelta::new(0.01),
            60,
        )
        .unwrap_err();
        assert!(
            matches!(err, ElectrothermalError::ThermalRunaway { .. }),
            "expected runaway, got {err}"
        );
    }

    #[test]
    fn multigrid_inner_solver_matches_jacobi() {
        let p = problem(0.5, 100.0);
        let model = LeakageModel::seven_nm();
        let tol = TempDelta::new(0.01);
        let jacobi = solve_electrothermal(&p, &model, tol, 50).expect("jacobi converges");
        let mg = solve_electrothermal_with(
            &p,
            &model,
            tol,
            50,
            &CgSolver::new()
                .with_tolerance(1e-8)
                .with_preconditioner(Preconditioner::Multigrid),
        )
        .expect("mg converges");
        assert_eq!(mg.iterations, jacobi.iterations);
        let dev = (mg.temperatures.max_temperature() - jacobi.temperatures.max_temperature())
            .kelvin()
            .abs();
        assert!(dev < 1e-5, "MG fixed point must match Jacobi: |dT| = {dev}");
    }

    #[test]
    fn zero_leakage_matches_open_loop() {
        let p = problem(0.5, 100.0);
        let open_loop = CgSolver::new().solve(&p).expect("solves");
        let closed = solve_electrothermal(
            &p,
            &LeakageModel {
                leakage_fraction: Ratio::ZERO,
                ..LeakageModel::seven_nm()
            },
            TempDelta::new(0.001),
            10,
        )
        .expect("converges immediately");
        assert!(closed
            .temperatures
            .max_temperature()
            .approx_eq(open_loop.temperatures.max_temperature(), 1e-6));
        assert_eq!(closed.iterations, 1);
    }
}
