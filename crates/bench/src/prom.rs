//! Prometheus text-exposition utilities (hermetic, no client library).
//!
//! `tsc-serve` renders its `/metrics` endpoint in the Prometheus text
//! format; this module holds the consumer side shared by the serve test
//! suites and the load generator: [`validate_exposition`] checks the
//! format is structurally sound, and [`sample_value`] scrapes one sample
//! by exact series name.  Living in `tsc-bench` (not `tsc-serve`) keeps
//! the dependency direction acyclic — the server depends on the bench
//! crate for its JSON dialect, and the load generator depends only on
//! this crate.

/// Minimal validator for the Prometheus text exposition format.
///
/// Checks that every non-comment line is `name{labels} value` or
/// `name value` with a parseable float value and balanced, quoted labels,
/// and that every `# TYPE` names a metric family that then appears.
///
/// # Errors
///
/// Returns a line-annotated description of the first violation.
pub fn validate_exposition(text: &str) -> Result<(), String> {
    let mut typed: Vec<(String, bool)> = Vec::new(); // (metric family, seen a sample)
    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split(' ');
            let family = parts
                .next()
                .ok_or_else(|| format!("line {n}: TYPE without metric name"))?;
            let kind = parts
                .next()
                .ok_or_else(|| format!("line {n}: TYPE without kind"))?;
            if !["counter", "gauge", "histogram", "summary", "untyped"].contains(&kind) {
                return Err(format!("line {n}: unknown TYPE kind {kind:?}"));
            }
            typed.push((family.to_string(), false));
            continue;
        }
        if line.starts_with('#') {
            continue;
        }

        let (name_and_labels, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {n}: no space before value"))?;
        if value.parse::<f64>().is_err() {
            return Err(format!("line {n}: unparseable value {value:?}"));
        }

        let name = match name_and_labels.split_once('{') {
            Some((name, labels)) => {
                let labels = labels
                    .strip_suffix('}')
                    .ok_or_else(|| format!("line {n}: unbalanced label braces"))?;
                for pair in labels.split(',').filter(|p| !p.is_empty()) {
                    let (_, v) = pair
                        .split_once('=')
                        .ok_or_else(|| format!("line {n}: label without '='"))?;
                    if !(v.starts_with('"') && v.ends_with('"') && v.len() >= 2) {
                        return Err(format!("line {n}: unquoted label value {v:?}"));
                    }
                }
                name
            }
            None => name_and_labels,
        };
        if name.is_empty()
            || !name
                .bytes()
                .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b':')
        {
            return Err(format!("line {n}: invalid metric name {name:?}"));
        }
        for (family, seen) in typed.iter_mut() {
            if name == family
                || name
                    .strip_prefix(family.as_str())
                    .is_some_and(|suffix| ["_bucket", "_sum", "_count"].contains(&suffix))
            {
                *seen = true;
            }
        }
    }
    for (family, seen) in typed {
        if !seen {
            return Err(format!("TYPE declared for {family} but no samples emitted"));
        }
    }
    Ok(())
}

/// Scrape the value of the sample whose full series name (including any
/// label set, e.g. `tsc_requests_total{endpoint="solve",status="200"}`)
/// equals `series`.  `None` when the series is absent.
#[must_use]
pub fn sample_value(text: &str, series: &str) -> Option<f64> {
    text.lines().find_map(|line| {
        let (name, value) = line.rsplit_once(' ')?;
        if name == series {
            value.parse().ok()
        } else {
            None
        }
    })
}

/// A parsed text exposition, in document order: `# TYPE` declarations
/// as `(family, kind)` and samples as `(full series name, value)`.
/// The shard router merges per-backend expositions through this.
#[derive(Debug, Default, Clone)]
pub struct ParsedExposition {
    pub types: Vec<(String, String)>,
    pub helps: Vec<(String, String)>,
    pub samples: Vec<(String, f64)>,
}

/// Parse an exposition into its type declarations and samples.
///
/// # Errors
///
/// Returns a line-annotated description of the first malformed line
/// (same strictness as [`validate_exposition`]).
pub fn parse_exposition(text: &str) -> Result<ParsedExposition, String> {
    validate_exposition(text)?;
    let mut parsed = ParsedExposition::default();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            if let Some((family, kind)) = rest.split_once(' ') {
                parsed.types.push((family.to_string(), kind.to_string()));
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            if let Some((family, help)) = rest.split_once(' ') {
                parsed.helps.push((family.to_string(), help.to_string()));
            }
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        if let Some((series, value)) = line.rsplit_once(' ') {
            if let Ok(v) = value.parse::<f64>() {
                parsed.samples.push((series.to_string(), v));
            }
        }
    }
    Ok(parsed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validator_accepts_well_formed_expositions() {
        let text = "\
# HELP x_total Things.
# TYPE x_total counter
x_total{kind=\"a\"} 3
x_total{kind=\"b\"} 4
# TYPE y_seconds histogram
y_seconds_bucket{le=\"+Inf\"} 2
y_seconds_sum 0.5
y_seconds_count 2
plain_gauge 7
";
        validate_exposition(text).expect("valid exposition");
    }

    #[test]
    fn validator_rejects_bad_lines() {
        assert!(validate_exposition("metric{a=b} 1\n").is_err()); // unquoted label
        assert!(validate_exposition("metric 1 2\n").is_err()); // space in metric name
        assert!(validate_exposition("metric{x=\"1\" 2\n").is_err()); // unbalanced braces
        assert!(validate_exposition("metric nope\n").is_err()); // non-numeric value
        assert!(validate_exposition("# TYPE ghost counter\n").is_err()); // no samples
        assert!(validate_exposition("ok_metric 1\n").is_ok());
    }

    #[test]
    fn parse_exposition_round_trips_types_and_samples() {
        let text = "\
# HELP x_total Things.
# TYPE x_total counter
x_total{kind=\"a\"} 3
x_total{kind=\"b\"} 4
plain_gauge 7
";
        let parsed = parse_exposition(text).expect("parses");
        assert_eq!(parsed.types, vec![("x_total".into(), "counter".into())]);
        assert_eq!(parsed.helps, vec![("x_total".into(), "Things.".into())]);
        assert_eq!(
            parsed.samples,
            vec![
                ("x_total{kind=\"a\"}".to_string(), 3.0),
                ("x_total{kind=\"b\"}".to_string(), 4.0),
                ("plain_gauge".to_string(), 7.0),
            ]
        );
        assert!(parse_exposition("metric{a=b} 1\n").is_err());
    }

    #[test]
    fn sample_value_scrapes_by_exact_series() {
        let text = "a_total 3\na_total{k=\"x\"} 5\nb 1.25\n";
        assert_eq!(sample_value(text, "a_total"), Some(3.0));
        assert_eq!(sample_value(text, "a_total{k=\"x\"}"), Some(5.0));
        assert_eq!(sample_value(text, "b"), Some(1.25));
        assert_eq!(sample_value(text, "missing"), None);
    }
}
