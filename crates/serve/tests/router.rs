//! Router integration tests: failover, readmission, typed degradation
//! (502/503), batch fan-out, and aggregated metrics.

mod common;

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener};
use std::time::{Duration, Instant};

use common::one_shot;
use tsc_bench::json::{self, Json};
use tsc_bench::prom::parse_exposition;
use tsc_serve::router::{Router, RouterConfig};
use tsc_serve::{validate_exposition, Server, ServerConfig};

const SMALL_SOLVE: &[u8] = br#"{"design": "gemmini-memory", "tiers": 2, "lateral_cells": 6}"#;

fn start_backend(port: u16) -> Server {
    Server::start(ServerConfig {
        port,
        workers: 1,
        ..ServerConfig::default()
    })
    .expect("bind backend")
}

fn start_router(backends: Vec<String>, probe_interval: Duration) -> Router {
    Router::start(RouterConfig {
        backends,
        probe_interval,
        retry_budget: 3,
        ..RouterConfig::default()
    })
    .expect("bind router")
}

fn wait_until(what: &str, timeout: Duration, mut predicate: impl FnMut() -> bool) {
    let start = Instant::now();
    while !predicate() {
        assert!(start.elapsed() < timeout, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// A key-varied solve body, so consistent hashing spreads requests over
/// both shards (utilization does not vary the affinity key, but
/// `lateral_cells` does).
fn keyed_solve(i: usize) -> Vec<u8> {
    format!(
        r#"{{"design": "gemmini-memory", "tiers": 2, "lateral_cells": {}}}"#,
        6 + 2 * (i % 6)
    )
    .into_bytes()
}

#[test]
fn failover_reroutes_and_readmits_a_restarted_backend() {
    let backend_a = start_backend(0);
    let backend_b = start_backend(0);
    let addr_a = backend_a.addr();
    let router = start_router(
        vec![addr_a.to_string(), backend_b.addr().to_string()],
        Duration::from_millis(50),
    );
    let raddr = router.addr();

    // Warm both shards through the router: every request must succeed.
    for i in 0..8 {
        let response = one_shot(raddr, "POST", "/v1/solve", &[], &keyed_solve(i));
        assert_eq!(response.status, 200, "warm {i}: {}", response.body_str());
    }

    // Kill shard A mid-run.  Every subsequent request must still come
    // back 200 — keys owned by A re-route to B within the retry budget.
    backend_a.shutdown();
    for i in 0..8 {
        let response = one_shot(raddr, "POST", "/v1/solve", &[], &keyed_solve(i));
        assert_eq!(
            response.status,
            200,
            "failover {i}: {}",
            response.body_str()
        );
    }
    wait_until("shard A ejection", Duration::from_secs(10), || {
        router.metrics().shard_ejections_total.get() >= 1
    });

    // Restart shard A on its old port (the router knows it by address).
    // Std listeners use SO_REUSEADDR, but retry anyway in case the old
    // socket lingers.
    let mut restarted = None;
    for _ in 0..100 {
        match Server::start(ServerConfig {
            port: addr_a.port(),
            workers: 1,
            ..ServerConfig::default()
        }) {
            Ok(server) => {
                restarted = Some(server);
                break;
            }
            Err(_) => std::thread::sleep(Duration::from_millis(50)),
        }
    }
    let restarted = restarted.expect("rebind shard A's port");

    // The prober readmits it, and traffic keeps flowing.
    wait_until("shard A readmission", Duration::from_secs(10), || {
        router.metrics().shard_readmissions_total.get() >= 1
    });
    wait_until("both shards healthy", Duration::from_secs(10), || {
        router.metrics().healthy_shards.get() == 2
    });
    for i in 0..8 {
        let response = one_shot(raddr, "POST", "/v1/solve", &[], &keyed_solve(i));
        assert_eq!(response.status, 200, "readmitted {i}");
    }
    // The restarted (cold) shard is actually serving probes again.
    wait_until("restarted shard serves", Duration::from_secs(10), || {
        restarted.metrics().requests_for("healthz", 200) > 0
    });

    router.shutdown();
    restarted.shutdown();
    backend_b.shutdown();
}

#[test]
fn batch_through_router_preserves_order_and_isolates_errors() {
    let backend_a = start_backend(0);
    let backend_b = start_backend(0);
    let router = start_router(
        vec![backend_a.addr().to_string(), backend_b.addr().to_string()],
        Duration::from_millis(100),
    );

    // Items with three distinct affinity keys plus two invalid items —
    // the router splits per shard and must reassemble in order.
    let body = br#"{"items": [
        {"design": "gemmini-memory", "tiers": 2, "lateral_cells": 6},
        {"design": "nope"},
        {"design": "gemmini-memory", "tiers": 2, "lateral_cells": 8},
        "not an object",
        {"design": "gemmini-memory", "tiers": 2, "lateral_cells": 10, "utilization_percent": 60},
        {"design": "gemmini-memory", "tiers": 2, "lateral_cells": 10, "utilization_percent": 30}
    ]}"#;
    let response = one_shot(router.addr(), "POST", "/v1/batch", &[], body);
    assert_eq!(response.status, 200, "body: {}", response.body_str());
    let envelope = json::parse(&response.body_str()).expect("envelope parses");
    assert_eq!(envelope.get("count").and_then(Json::as_usize), Some(6));
    assert_eq!(envelope.get("errors").and_then(Json::as_usize), Some(2));
    let items = envelope.get("items").and_then(Json::as_array).unwrap();
    let statuses: Vec<usize> = items
        .iter()
        .map(|item| item.get("status").and_then(Json::as_usize).unwrap_or(0))
        .collect();
    assert_eq!(statuses, vec![200, 400, 200, 400, 200, 200]);
    assert!(router.metrics().batch_subbatches_total.get() >= 1);

    // Envelope-level garbage is a router-side 400, not a fan-out.
    let bad = one_shot(router.addr(), "POST", "/v1/batch", &[], b"not json");
    assert_eq!(bad.status, 400);

    router.shutdown();
    backend_a.shutdown();
    backend_b.shutdown();
}

#[test]
fn aggregated_metrics_validate_and_sum_shard_counters() {
    let backend_a = start_backend(0);
    let backend_b = start_backend(0);
    let router = start_router(
        vec![backend_a.addr().to_string(), backend_b.addr().to_string()],
        Duration::from_millis(100),
    );

    for i in 0..10 {
        let response = one_shot(router.addr(), "POST", "/v1/solve", &[], &keyed_solve(i));
        assert_eq!(response.status, 200);
    }

    let aggregated = one_shot(router.addr(), "GET", "/metrics", &[], b"");
    assert_eq!(aggregated.status, 200);
    let text = aggregated.body_str();
    validate_exposition(&text).expect("aggregated exposition is valid");
    let parsed = parse_exposition(&text).expect("aggregated exposition parses");
    let aggregated_solves: f64 = parsed
        .samples
        .iter()
        .find(|(name, _)| name == "tsc_backend_solves_total")
        .map(|(_, value)| *value)
        .expect("summed backend counter present");

    // The aggregate equals the sum of the two shards' own counters.
    let mut direct_sum = 0.0;
    for backend in [&backend_a, &backend_b] {
        let scrape = one_shot(backend.addr(), "GET", "/metrics", &[], b"");
        let parsed = parse_exposition(&scrape.body_str()).expect("shard exposition");
        direct_sum += parsed
            .samples
            .iter()
            .find(|(name, _)| name == "tsc_backend_solves_total")
            .map(|(_, value)| *value)
            .unwrap_or(0.0);
    }
    assert!(
        (aggregated_solves - direct_sum).abs() < 0.5,
        "aggregated {aggregated_solves} != shard sum {direct_sum}"
    );
    // Router-side series ride along in the same exposition.
    assert!(text.contains("tsc_router_requests_total"));
    assert!(text.contains("tsc_router_scraped_shards 2"));
    // Quantile gauges cannot be summed and must be dropped.
    assert!(!text.contains("_quantile"));

    router.shutdown();
    backend_a.shutdown();
    backend_b.shutdown();
}

#[test]
fn transient_sessions_tunnel_through_the_router_and_stick_to_a_shard() {
    let backend_a = start_backend(0);
    let backend_b = start_backend(0);
    let router = start_router(
        vec![backend_a.addr().to_string(), backend_b.addr().to_string()],
        Duration::from_millis(100),
    );
    let body = r#"{"design": "gemmini-memory", "tiers": 2, "lateral_cells": 6,
                   "dt_seconds": 0.001}"#;
    let wait = Duration::from_secs(60);

    // A full session through the tunnel: open, steps, DVFS update, close.
    let mut session = common::SessionClient::open(router.addr(), body, &[]);
    assert_eq!(session.read_head(wait), 200);
    let open = session.next_event(wait);
    assert_eq!(common::event_kind(&open), "open");
    assert_eq!(common::field_str(&open, "pool"), "miss");
    session.send(r#"{"op": "step", "steps": 2}"#);
    for i in 1..=2 {
        let step = session.next_event(wait);
        assert_eq!(common::event_kind(&step), "step");
        assert_eq!(common::field_num(&step, "step"), f64::from(i));
    }
    session.send(r#"{"op": "power", "utilization_percent": 40}"#);
    assert_eq!(common::event_kind(&session.next_event(wait)), "power");
    session.send(r#"{"op": "close"}"#);
    let closed = session.next_event(wait);
    assert_eq!(common::event_kind(&closed), "closed");
    assert_eq!(common::field_num(&closed, "steps"), 2.0);
    assert!(session.at_eof(Duration::from_secs(5)), "close-delimited");

    // Sticky affinity: the reopened session must land on the shard that
    // pooled the state — observable as a pool hit through the tunnel.
    let mut session = common::SessionClient::open(router.addr(), body, &[]);
    assert_eq!(session.read_head(wait), 200);
    let reopened = session.next_event(wait);
    assert_eq!(common::field_str(&reopened, "pool"), "hit");
    session.send(r#"{"op": "close"}"#);
    assert_eq!(common::event_kind(&session.next_event(wait)), "closed");

    // A malformed opening body is refused with a plain 400, not tunneled.
    let mut refused = common::SessionClient::open(router.addr(), "{not json", &[]);
    assert_eq!(refused.read_head(wait), 400);

    let scrape = one_shot(router.addr(), "GET", "/metrics", &[], b"");
    let parsed = parse_exposition(&scrape.body_str()).expect("router exposition");
    let tunnels = parsed
        .samples
        .iter()
        .find(|(name, _)| name == "tsc_router_transient_tunnels_total")
        .map(|(_, value)| *value)
        .expect("tunnel counter present");
    assert!(
        (tunnels - 2.0).abs() < 0.5,
        "two sessions tunneled, counter says {tunnels}"
    );

    router.shutdown();
    backend_a.shutdown();
    backend_b.shutdown();
}

/// A fake backend that passes health probes but answers everything else
/// with bytes that are not HTTP.
fn spawn_garbage_backend() -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind fake backend");
    let addr = listener.local_addr().expect("local addr");
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { continue };
            std::thread::spawn(move || {
                let mut buffer = [0u8; 4096];
                let mut head = Vec::new();
                while !head.windows(4).any(|w| w == b"\r\n\r\n") {
                    match stream.read(&mut buffer) {
                        Ok(0) | Err(_) => return,
                        Ok(n) => head.extend_from_slice(&buffer[..n]),
                    }
                }
                let request = String::from_utf8_lossy(&head);
                let reply: &[u8] = if request.starts_with("GET /healthz") {
                    b"HTTP/1.1 200 OK\r\nContent-Length: 3\r\nConnection: close\r\n\r\nok\n"
                } else {
                    b"\x00\xffTHIS IS NOT HTTP\x00garbage"
                };
                let _ = stream.write_all(reply);
                let _ = stream.flush();
            });
        }
    });
    addr
}

#[test]
fn malformed_backend_is_a_typed_502_and_never_retried() {
    let fake = spawn_garbage_backend();
    let router = start_router(vec![fake.to_string()], Duration::from_millis(100));

    let response = one_shot(router.addr(), "POST", "/v1/solve", &[], SMALL_SOLVE);
    assert_eq!(response.status, 502, "body: {}", response.body_str());
    assert!(response.body_str().contains("malformed"));
    // Malformed responses are terminal: the request may have executed,
    // so the router must not have replayed it.
    assert_eq!(router.metrics().bad_gateway_total.get(), 1);
    assert_eq!(router.metrics().retries_total.get(), 0);

    router.shutdown();
}

#[test]
fn dead_backends_degrade_to_typed_503_with_retry_after() {
    // Two addresses where nothing listens: connect refused on both.
    let dead: Vec<String> = (0..2)
        .map(|_| {
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind probe");
            let addr = listener.local_addr().expect("local addr");
            drop(listener);
            addr.to_string()
        })
        .collect();
    let router = start_router(dead, Duration::from_secs(60));

    let start = Instant::now();
    let response = one_shot(router.addr(), "POST", "/v1/solve", &[], SMALL_SOLVE);
    assert_eq!(response.status, 503, "body: {}", response.body_str());
    assert!(response.header("retry-after").is_some(), "typed 503 hint");
    // Degradation is prompt — retries and backoff, not a hang.
    assert!(start.elapsed() < Duration::from_secs(10));
    assert!(router.metrics().no_backend_total.get() >= 1);

    // The router itself stays alive and reports the outage.
    let health = one_shot(router.addr(), "GET", "/healthz", &[], b"");
    assert_eq!(health.status, 503);

    router.shutdown();
}

/// Seeded garbage requests against the router must produce clean 4xx
/// closes, never hangs or panics, with the router still serving after.
#[test]
fn garbage_client_requests_do_not_wedge_the_router() {
    let backend = start_backend(0);
    let router = start_router(vec![backend.addr().to_string()], Duration::from_millis(100));
    let raddr = router.addr();

    let corpus: &[&[u8]] = &[
        b"\x00\x01\x02\x03\x04\r\n\r\n",
        b"GET\r\n\r\n",
        b"POST /v1/solve HTTP/1.1\r\nContent-Length: notanumber\r\n\r\n",
        b"POST /v1/solve HTTP/1.1\r\nContent-Length: 999999999999\r\n\r\n",
        b"FROB /v1/solve HTTP/1.1\r\nHost: x\r\n\r\n",
        b"POST /v1/solve HTTP/2.0\r\nHost: x\r\n\r\n",
    ];
    for raw in corpus {
        let mut stream = std::net::TcpStream::connect(raddr).expect("connect router");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let _ = stream.write_all(raw);
        let _ = stream.shutdown(std::net::Shutdown::Write);
        let mut reply = Vec::new();
        let _ = stream.read_to_end(&mut reply);
        let text = String::from_utf8_lossy(&reply);
        // Either a clean 4xx or an empty close — never a 5xx, never a hang.
        if !text.is_empty() {
            assert!(
                text.starts_with("HTTP/1.1 4"),
                "garbage {raw:?} produced: {text}"
            );
        }
    }

    // Router is still routing after the abuse.
    let response = one_shot(raddr, "POST", "/v1/solve", &[], SMALL_SOLVE);
    assert_eq!(response.status, 200, "body: {}", response.body_str());

    router.shutdown();
    backend.shutdown();
}

/// End-to-end jobs smoke over a 2-shard router: submit routes to one
/// shard and sticks, status/checkpoint/cancel find the owner, the
/// events stream tunnels through, and the aggregated exposition carries
/// both the shard rollups and the router's own affinity counters.
#[test]
fn jobs_route_sticky_through_a_two_shard_router() {
    let backend_a = start_backend(0);
    let backend_b = start_backend(0);
    let router = start_router(
        vec![backend_a.addr().to_string(), backend_b.addr().to_string()],
        Duration::from_millis(100),
    );
    let raddr = router.addr();

    let submit = one_shot(
        raddr,
        "POST",
        "/v1/jobs",
        &[],
        br#"{"kind": "floorplan_sa", "design": "rocket", "replicas": 2, "seed": 11}"#,
    );
    assert_eq!(submit.status, 202, "body: {}", submit.body_str());
    let id = json::parse(&submit.body_str())
        .expect("submit doc")
        .get("id")
        .and_then(Json::as_str)
        .expect("job id")
        .to_string();
    assert_eq!(router.metrics().job_stickies_total.get(), 1);

    // Status polls through the router reach the owning shard.
    let start = Instant::now();
    let done = loop {
        let response = one_shot(raddr, "GET", &format!("/v1/jobs/{id}"), &[], b"");
        assert_eq!(response.status, 200, "body: {}", response.body_str());
        let doc = json::parse(&response.body_str()).expect("status doc");
        if doc.get("state").and_then(Json::as_str) == Some("done") {
            break doc;
        }
        assert!(
            start.elapsed() < Duration::from_secs(240),
            "job must finish; last: {}",
            doc.pretty()
        );
        std::thread::sleep(Duration::from_millis(50));
    };
    assert!(done.get("result").is_some());

    // The finished job's events tunnel through byte-for-byte and end.
    let mut stream =
        common::SessionClient::open_raw(raddr, "GET", &format!("/v1/jobs/{id}/events"), &[], b"");
    assert_eq!(stream.read_head(Duration::from_secs(30)), 200);
    let mut saw_end = false;
    for _ in 0..10_000 {
        let event = stream.next_event(Duration::from_secs(30));
        if common::event_kind(&event) == "end" {
            saw_end = true;
            break;
        }
    }
    assert!(saw_end, "tunnelled stream must replay to the end event");
    assert!(router.metrics().job_event_tunnels_total.get() >= 1);

    // The checkpoint forwards too, and an unknown id is a clean 404
    // (after a broadcast probe across both shards).
    let checkpoint = one_shot(raddr, "GET", &format!("/v1/jobs/{id}/checkpoint"), &[], b"");
    assert_eq!(checkpoint.status, 200);
    let missing = one_shot(raddr, "POST", "/v1/jobs/00000000deadbeef/cancel", &[], b"");
    assert_eq!(missing.status, 404);
    assert!(router.metrics().job_broadcasts_total.get() >= 1);

    // A job submitted behind the router's back (directly to a shard) is
    // still found by the broadcast fallback.
    let direct = one_shot(
        backend_b.addr(),
        "POST",
        "/v1/jobs",
        &[],
        br#"{"kind": "floorplan_sa", "design": "rocket", "replicas": 2, "seed": 5}"#,
    );
    assert_eq!(direct.status, 202);
    let direct_id = json::parse(&direct.body_str())
        .expect("doc")
        .get("id")
        .and_then(Json::as_str)
        .expect("id")
        .to_string();
    let via_router = one_shot(raddr, "GET", &format!("/v1/jobs/{direct_id}"), &[], b"");
    assert_eq!(via_router.status, 200, "body: {}", via_router.body_str());
    let cancelled = one_shot(
        raddr,
        "POST",
        &format!("/v1/jobs/{direct_id}/cancel"),
        &[],
        b"",
    );
    assert_eq!(cancelled.status, 200);

    // Aggregated metrics: shard rollups summed, router series appended.
    let metrics = one_shot(raddr, "GET", "/metrics", &[], b"");
    assert_eq!(metrics.status, 200);
    let text = metrics.body_str();
    let samples = parse_exposition(&text).expect("parse aggregated").samples;
    let value = |name: &str| -> f64 {
        samples
            .iter()
            .find(|(series, _)| series == name)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| panic!("missing series {name}"))
    };
    assert!(value("tsc_jobs_submitted_total") >= 2.0);
    assert!(value("tsc_jobs_completed_total") >= 1.0);
    assert!(value("tsc_job_dedup_hits_total") > 0.0);
    assert!(value("tsc_router_job_stickies_total") >= 2.0);

    router.shutdown();
    backend_a.shutdown();
    backend_b.shutdown();
}
