//! LRU pools for per-geometry service state.
//!
//! Two levels, both capped by `--pool-cap` (0 disables both, for no-pool
//! A/B benchmarking):
//!
//! * [`ContextPool`] — [`SolveContext`]s keyed by the PR-2 operator
//!   fingerprint (solve endpoint) or the canonical request body
//!   (flow/pillars).  A pooled context carries the assembled operator,
//!   the multigrid hierarchy, and the last temperature field for one
//!   geometry, so a repeat solve skips assembly and hierarchy
//!   construction and warm-starts from the previous field.
//! * The *stack cache* (an [`LruPool`]`<String, Stack3d>` keyed by the
//!   canonical request hash) — the built mesh/problem for a
//!   `POST /v1/solve` body.  Building a stack (pillar map,
//!   homogenization, assembly inputs) costs about as much as a cold
//!   solve, so without this cache a pooled hot request would still pay
//!   half its cold cost.
//!
//! Every pool routes on a 64-bit FNV-1a hash but stores the **full key**
//! beside each entry and equality-checks it on every take.  The hash is
//! a routing hint, not an identity: a 64-bit collision between two
//! distinct geometries used to alias their pooled state (handing one
//! stack's warm-start field and hierarchy to another), which the full
//! comparison now degrades to an ordinary miss.
//!
//! `take`/`checkout` *remove* the entry — state is owned by exactly one
//! worker at a time, so two concurrent solves on the same geometry get
//! distinct copies rather than a shared lock.

use crate::locks::{rank, RankedMutex};
use std::sync::atomic::{AtomicUsize, Ordering};
use tsc_core::stack::Stack3d;
use tsc_thermal::transient::TransientRun;
use tsc_thermal::{OperatorSignature, SolveContext};

/// Outcome of a checkout, for metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Checkout {
    Hit,
    Miss,
}

/// LRU routed by a `u64` hash and validated by a full key `K`.  The
/// backing store is a `Vec` in recency order (most recent at the back);
/// pool caps are small (tens), so linear scans beat a hash map +
/// intrusive list in both code size and constant factor.
pub struct LruPool<K, T> {
    cap: usize,
    entries: RankedMutex<Vec<(u64, K, T)>>,
    /// Entries currently checked out under a [`Pinned`] guard — live
    /// session state that the LRU must not count against its capacity
    /// (it is not *in* the pool) but operators still want to see.
    pinned: AtomicUsize,
}

impl<K: PartialEq, T> LruPool<K, T> {
    /// `cap == 0` disables the pool entirely: every take misses and puts
    /// are dropped.
    pub fn new(cap: usize) -> Self {
        LruPool {
            cap,
            entries: RankedMutex::new(Vec::new(), rank::POOL_ENTRIES, "LruPool.entries"),
            pinned: AtomicUsize::new(0),
        }
    }

    pub fn capacity(&self) -> usize {
        self.cap
    }

    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// Entries currently held out of the pool by [`Pinned`] guards.
    pub fn pinned(&self) -> usize {
        self.pinned.load(Ordering::Relaxed)
    }

    /// Wrap `value` in a pinning guard: the value stays owned by the
    /// caller for as long as the guard lives and is returned to the pool
    /// by the guard's `Drop` — on clean close, early return, *and* panic
    /// unwind alike, so an abruptly disconnected session can never leak
    /// its checked-out state.  The pin is counted in
    /// [`LruPool::pinned`] until the guard resolves.
    pub fn pin(&self, hash: u64, key: K, value: T) -> Pinned<'_, K, T> {
        self.pinned.fetch_add(1, Ordering::Relaxed);
        Pinned {
            pool: self,
            hash,
            key: Some(key),
            value: Some(value),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Remove and return the entry for `hash`, if pooled **and** its
    /// stored full key equals `key` — a hash collision is a miss, never
    /// an alias.
    pub fn take(&self, hash: u64, key: &K) -> Option<T> {
        if self.cap == 0 {
            return None;
        }
        let mut entries = self.entries.lock();
        let i = entries
            .iter()
            .position(|(h, k, _)| *h == hash && k == key)?;
        Some(entries.remove(i).2)
    }

    /// Insert (or refresh) `hash`/`key`.  Evicts least-recently-used
    /// entries when over capacity; returns the number of evictions.
    pub fn put(&self, hash: u64, key: K, value: T) -> usize {
        if self.cap == 0 {
            return 0;
        }
        let mut entries = self.entries.lock();
        // Replace any entry another worker put for the same key while we
        // held ours — keeping the newest state is the better reuse.  A
        // colliding hash with a *different* full key is left alone (it
        // is someone else's state, not a stale copy of ours).
        if let Some(i) = entries.iter().position(|(h, k, _)| *h == hash && *k == key) {
            entries.remove(i);
        }
        entries.push((hash, key, value));
        let mut evicted = 0;
        while entries.len() > self.cap {
            entries.remove(0);
            evicted += 1;
        }
        evicted
    }
}

/// RAII checkout of pooled state.  Holds the value by ownership for the
/// guard's lifetime (sessions hold it across many steps of socket I/O —
/// no pool lock is held while pinned) and returns it to the pool on
/// `Drop`.  [`Pinned::discard`] consumes the guard without the put-back,
/// for state known to be poisoned.
pub struct Pinned<'p, K: PartialEq, T> {
    pool: &'p LruPool<K, T>,
    hash: u64,
    key: Option<K>,
    value: Option<T>,
}

impl<K: PartialEq, T> std::ops::Deref for Pinned<'_, K, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.value
            .as_ref()
            .expect("pinned value present until drop")
    }
}

impl<K: PartialEq, T> std::ops::DerefMut for Pinned<'_, K, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.value
            .as_mut()
            .expect("pinned value present until drop")
    }
}

impl<K: PartialEq, T> Pinned<'_, K, T> {
    /// Drop the pinned state instead of returning it to the pool.
    pub fn discard(mut self) {
        self.key = None;
        self.value = None;
        // Drop runs next and sees the emptied slots: unpins, no put-back.
    }
}

impl<K: PartialEq, T> Drop for Pinned<'_, K, T> {
    fn drop(&mut self) {
        self.pool.pinned.fetch_sub(1, Ordering::Relaxed);
        if let (Some(key), Some(value)) = (self.key.take(), self.value.take()) {
            self.pool.put(self.hash, key, value);
        }
    }
}

/// Pooled state for one transient session: the stepped implicit scheme
/// plus the built stack it was assembled from.  The stack rides along
/// because mid-session power updates re-derive the power map from the
/// design layout (`stack::repower`) before delta-restaging the run.
pub struct TransientState {
    pub run: TransientRun,
    pub stack: Stack3d,
}

/// Full validation key of a pooled [`SolveContext`] — stored beside the
/// routing hash and compared on every checkout.
#[derive(Debug, Clone, PartialEq)]
pub enum ContextKey {
    /// Geometry-true operator identity (`POST /v1/solve`): distinct
    /// requests that assemble the same operator share pooled state.
    Operator(OperatorSignature),
    /// Canonical request identity (`POST /v1/flow`, `POST /v1/pillars`):
    /// endpoint + canonical JSON body.
    Canonical(String),
}

/// The [`SolveContext`] level: misses manufacture a fresh context.
pub struct ContextPool {
    inner: LruPool<ContextKey, SolveContext>,
}

impl ContextPool {
    /// `cap == 0` disables pooling entirely: every checkout is a miss and
    /// checkins are dropped.  Used for no-pool A/B benchmarking.
    pub fn new(cap: usize) -> Self {
        ContextPool {
            inner: LruPool::new(cap),
        }
    }

    pub fn capacity(&self) -> usize {
        self.inner.capacity()
    }

    pub fn len(&self) -> usize {
        self.inner.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Take the context for `hash`/`key` out of the pool, or build a
    /// fresh one.
    pub fn checkout(&self, hash: u64, key: &ContextKey) -> (SolveContext, Checkout) {
        match self.inner.take(hash, key) {
            Some(ctx) => (ctx, Checkout::Hit),
            None => (SolveContext::new(), Checkout::Miss),
        }
    }

    /// Return a context to the pool.  Evicts the least-recently-used entry
    /// when over capacity; returns the number of evictions (0 or 1).
    pub fn checkin(&self, hash: u64, key: ContextKey, ctx: SolveContext) -> usize {
        self.inner.put(hash, key, ctx)
    }
}

/// Both pool levels, built together from one `--pool-cap`.
pub struct ServicePools {
    pub contexts: ContextPool,
    pub stacks: LruPool<String, Stack3d>,
    /// Transient sessions, keyed by the canonical session id (operator
    /// canonical + timestep bits).  Entries are *pinned* while a session
    /// is live, so concurrent sessions on the same geometry each own a
    /// private copy, like every other pool level.
    pub transients: LruPool<String, TransientState>,
}

impl ServicePools {
    pub fn new(cap: usize) -> Self {
        ServicePools {
            contexts: ContextPool::new(cap),
            stacks: LruPool::new(cap),
            transients: LruPool::new(cap),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(s: &str) -> ContextKey {
        ContextKey::Canonical(s.to_string())
    }

    #[test]
    fn cold_checkout_misses_then_checkin_makes_it_hit() {
        let pool = ContextPool::new(2);
        let (ctx, outcome) = pool.checkout(42, &key("a"));
        assert_eq!(outcome, Checkout::Miss);
        pool.checkin(42, key("a"), ctx);
        assert_eq!(pool.len(), 1);
        let (_, outcome) = pool.checkout(42, &key("a"));
        assert_eq!(outcome, Checkout::Hit);
        // checkout removed the entry: a second checkout of the same key misses.
        let (_, outcome) = pool.checkout(42, &key("a"));
        assert_eq!(outcome, Checkout::Miss);
    }

    #[test]
    fn hash_collision_with_different_key_is_a_miss_not_an_alias() {
        // Regression (fingerprint-collision cache aliasing): two distinct
        // geometries whose 64-bit fingerprints collide must never share
        // pooled state.  Crafted here by reusing one routing hash for two
        // different full keys.
        let pool = ContextPool::new(4);
        let (ctx, _) = pool.checkout(0xDEAD_BEEF, &key("stack-a"));
        pool.checkin(0xDEAD_BEEF, key("stack-a"), ctx);
        // Same hash, different identity: must miss and must NOT remove
        // stack-a's entry.
        let (_, outcome) = pool.checkout(0xDEAD_BEEF, &key("stack-b"));
        assert_eq!(outcome, Checkout::Miss, "collision must be a miss");
        assert_eq!(pool.len(), 1, "the colliding entry must survive");
        let (_, outcome) = pool.checkout(0xDEAD_BEEF, &key("stack-a"));
        assert_eq!(outcome, Checkout::Hit, "the real owner still hits");
    }

    #[test]
    fn generic_pool_rejects_colliding_full_keys() {
        let pool: LruPool<String, u32> = LruPool::new(4);
        pool.put(7, "alpha".into(), 1);
        assert_eq!(pool.take(7, &"beta".to_string()), None);
        assert_eq!(pool.take(7, &"alpha".to_string()), Some(1));
    }

    #[test]
    fn put_replaces_same_key_but_keeps_colliding_neighbours() {
        let pool: LruPool<String, u32> = LruPool::new(4);
        pool.put(7, "alpha".into(), 1);
        pool.put(7, "beta".into(), 2); // collision: distinct entry
        assert_eq!(pool.len(), 2);
        pool.put(7, "alpha".into(), 3); // refresh replaces only alpha
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.take(7, &"alpha".to_string()), Some(3));
        assert_eq!(pool.take(7, &"beta".to_string()), Some(2));
    }

    #[test]
    fn lru_eviction_drops_the_oldest_key() {
        let pool = ContextPool::new(2);
        for (hash, name) in [(1u64, "a"), (2, "b"), (3, "c")] {
            let (ctx, _) = pool.checkout(hash, &key(name));
            pool.checkin(hash, key(name), ctx);
        }
        assert_eq!(pool.len(), 2);
        assert_eq!(
            pool.checkout(1, &key("a")).1,
            Checkout::Miss,
            "oldest evicted"
        );
        assert_eq!(pool.checkout(3, &key("c")).1, Checkout::Hit);
        assert_eq!(pool.checkout(2, &key("b")).1, Checkout::Hit);
    }

    #[test]
    fn touching_a_key_refreshes_its_recency() {
        let pool = ContextPool::new(2);
        for (hash, name) in [(1u64, "a"), (2, "b")] {
            let (ctx, _) = pool.checkout(hash, &key(name));
            pool.checkin(hash, key(name), ctx);
        }
        // Touch 1 so that 2 becomes the LRU victim.
        let (ctx, outcome) = pool.checkout(1, &key("a"));
        assert_eq!(outcome, Checkout::Hit);
        pool.checkin(1, key("a"), ctx);
        let (ctx, _) = pool.checkout(3, &key("c"));
        let evicted = pool.checkin(3, key("c"), ctx);
        assert_eq!(evicted, 1);
        assert_eq!(
            pool.checkout(2, &key("b")).1,
            Checkout::Miss,
            "2 was the LRU victim"
        );
        assert_eq!(pool.checkout(1, &key("a")).1, Checkout::Hit);
    }

    #[test]
    fn zero_capacity_disables_pooling() {
        let pool = ContextPool::new(0);
        let (ctx, outcome) = pool.checkout(7, &key("z"));
        assert_eq!(outcome, Checkout::Miss);
        assert_eq!(pool.checkin(7, key("z"), ctx), 0);
        assert_eq!(pool.len(), 0);
        assert_eq!(pool.checkout(7, &key("z")).1, Checkout::Miss);
    }

    #[test]
    fn pinned_guard_counts_and_returns_on_drop() {
        let pool: LruPool<String, u32> = LruPool::new(2);
        {
            let mut pinned = pool.pin(7, "alpha".into(), 41);
            assert_eq!(pool.pinned(), 1);
            assert_eq!(pool.len(), 0, "pinned state is not in the pool");
            *pinned += 1;
            assert_eq!(*pinned, 42);
        }
        assert_eq!(pool.pinned(), 0);
        assert_eq!(pool.take(7, &"alpha".to_string()), Some(42));
    }

    #[test]
    fn pinned_guard_returns_even_across_panic_unwind() {
        let pool: LruPool<String, u32> = LruPool::new(2);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _pinned = pool.pin(3, "session".into(), 9);
            panic!("simulated session thread death");
        }));
        assert!(result.is_err());
        assert_eq!(pool.pinned(), 0, "unwind must unpin");
        assert_eq!(
            pool.take(3, &"session".to_string()),
            Some(9),
            "unwind must still return the state to the pool"
        );
    }

    #[test]
    fn discard_unpins_without_put_back() {
        let pool: LruPool<String, u32> = LruPool::new(2);
        let pinned = pool.pin(5, "poisoned".into(), 1);
        pinned.discard();
        assert_eq!(pool.pinned(), 0);
        assert_eq!(pool.take(5, &"poisoned".to_string()), None);
    }

    #[test]
    fn pin_works_with_zero_capacity_pool() {
        // cap 0 disables storage but sessions still need leak-proof
        // ownership: the guard must work, the final put is just a no-op.
        let pool: LruPool<String, u32> = LruPool::new(0);
        {
            let pinned = pool.pin(1, "one".into(), 1);
            assert_eq!(pool.pinned(), 1);
            assert_eq!(*pinned, 1);
        }
        assert_eq!(pool.pinned(), 0);
        assert_eq!(pool.take(1, &"one".to_string()), None);
    }

    #[test]
    fn generic_pool_takes_and_puts_arbitrary_state() {
        let pool: LruPool<String, String> = LruPool::new(1);
        assert!(pool.take(9, &"nine".to_string()).is_none());
        assert_eq!(pool.put(9, "nine".into(), "nine".into()), 0);
        assert_eq!(
            pool.put(10, "ten".into(), "ten".into()),
            1,
            "cap 1 evicts the older key"
        );
        assert!(pool.take(9, &"nine".to_string()).is_none());
        assert_eq!(pool.take(10, &"ten".to_string()).as_deref(), Some("ten"));
        assert!(pool.is_empty());
    }
}
