//! Lock-cheap metrics registry with a Prometheus text exposition.
//!
//! Hot-path instrumentation is pure integer atomics: counters are
//! `AtomicU64`, gauges `AtomicI64`, and latency histograms bucket
//! microsecond integers — no float math happens on the request path.
//! Floats appear only at scrape time, when [`Metrics::render`] converts
//! microseconds to seconds and interpolates p50/p90/p99 from the bucket
//! CDF.  [`validate_exposition`] is a minimal checker for the text format,
//! shared by the test suites and the load generator.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Monotonic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Raises the counter to `target` if it is currently below it (and
    /// never lowers it).  Used to mirror monotone totals owned by another
    /// data structure — the job table's lifetime counters — without
    /// double counting when several scrapers sync concurrently.
    pub fn advance_to(&self, target: u64) {
        self.0.fetch_max(target, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Signed instantaneous gauge.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    pub fn dec(&self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }

    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Upper bounds (µs) for the latency histograms.  Spans 500µs…10s, which
/// covers both cache-hit solves and cold full-mesh assemblies.
const BUCKET_BOUNDS_US: [u64; 13] = [
    500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000, 1_000_000,
    2_500_000, 10_000_000,
];

/// Fixed-bound microsecond histogram.  `observe` is three relaxed atomic
/// adds; quantiles are interpolated from the bucket CDF at scrape time.
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKET_BOUNDS_US.len()],
    sum_us: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    pub fn observe_us(&self, us: u64) {
        for (i, bound) in BUCKET_BOUNDS_US.iter().enumerate() {
            if us <= *bound {
                self.buckets[i].fetch_add(1, Ordering::Relaxed);
                break;
            }
        }
        // Values above the last bound land only in +Inf (count).
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Interpolated quantile in microseconds (`q` in [0, 1]).
    ///
    /// `None` while the histogram is empty: an empty histogram has no
    /// quantiles, and rendering a placeholder 0 would be indistinguishable
    /// from a genuine zero-latency measurement on a dashboard.
    pub fn quantile_us(&self, q: f64) -> Option<f64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let target = (q * total as f64).ceil().max(1.0);
        let mut cumulative = 0u64;
        let mut lower = 0u64;
        for (i, bound) in BUCKET_BOUNDS_US.iter().enumerate() {
            let in_bucket = self.buckets[i].load(Ordering::Relaxed);
            let next = cumulative + in_bucket;
            if (next as f64) >= target && in_bucket > 0 {
                let into = (target - cumulative as f64) / in_bucket as f64;
                return Some(lower as f64 + into * (*bound - lower) as f64);
            }
            cumulative = next;
            lower = *bound;
        }
        // The quantile falls in the +Inf bucket (observations beyond the
        // last finite bound).  That bucket has no upper edge to
        // interpolate against, so clamp to the largest finite bound
        // rather than extrapolating an unbounded interval.
        Some(*BUCKET_BOUNDS_US.last().unwrap_or(&0) as f64)
    }

    fn render(&self, name: &str, labels: &str, out: &mut String) {
        let mut cumulative = 0u64;
        for (i, bound) in BUCKET_BOUNDS_US.iter().enumerate() {
            cumulative += self.buckets[i].load(Ordering::Relaxed);
            let le = *bound as f64 / 1e6;
            out.push_str(&format!(
                "{name}_bucket{{{labels}le=\"{le}\"}} {cumulative}\n"
            ));
        }
        let count = self.count();
        let sum = self.sum_us.load(Ordering::Relaxed) as f64 / 1e6;
        out.push_str(&format!("{name}_bucket{{{labels}le=\"+Inf\"}} {count}\n"));
        out.push_str(&format!(
            "{name}_sum{{{labels_t}}} {sum}\n",
            labels_t = labels.trim_end_matches(',')
        ));
        out.push_str(&format!(
            "{name}_count{{{labels_t}}} {count}\n",
            labels_t = labels.trim_end_matches(',')
        ));
    }
}

/// Endpoints tracked with per-status request counters.
pub const ENDPOINTS: [&str; 11] = [
    "solve",
    "flow",
    "pillars",
    "batch",
    "transient",
    "jobs",
    "designs",
    "metrics",
    "healthz",
    "shutdown",
    "other",
];

/// Statuses tracked per endpoint.
pub const STATUSES: [u16; 14] = [
    200, 202, 400, 404, 405, 408, 413, 429, 431, 500, 501, 502, 503, 504,
];

/// Heavy (queued) endpoints that get latency histograms.
pub const HEAVY_ENDPOINTS: [&str; 4] = ["solve", "flow", "pillars", "batch"];

/// Admission-class labels, aligned with `Priority::index`.
pub const CLASSES: [&str; 3] = ["interactive", "batch", "background"];

fn endpoint_index(endpoint: &str) -> usize {
    ENDPOINTS
        .iter()
        .position(|e| *e == endpoint)
        .unwrap_or(ENDPOINTS.len() - 1)
}

fn status_index(status: u16) -> usize {
    STATUSES.iter().position(|s| *s == status).unwrap_or(9) // unknown → 500 slot
}

/// The service-wide metrics registry.  One instance lives in the shared
/// server state; all fields are updated with relaxed atomics.
#[derive(Debug, Default)]
pub struct Metrics {
    requests: [[Counter; STATUSES.len()]; ENDPOINTS.len()],
    latency: [Histogram; HEAVY_ENDPOINTS.len()],
    pub queue_depth: Gauge,
    pub queue_capacity: Gauge,
    pub inflight: Gauge,
    pub connections: Gauge,
    pub coalesced_total: Counter,
    pub backend_solves_total: Counter,
    pub pool_hits: Counter,
    pub pool_misses: Counter,
    pub pool_evictions: Counter,
    pub stack_cache_hits: Counter,
    pub stack_cache_misses: Counter,
    pub deadline_timeouts: Counter,
    pub rejected_queue_full: Counter,
    pub worker_panics: Counter,
    // Admission control: per-class admitted / shed counts, indexed by
    // `Priority::index` (see `CLASSES`).
    pub class_admitted: [Counter; CLASSES.len()],
    pub class_shed: [Counter; CLASSES.len()],
    // Batch endpoint rollups.
    pub batch_requests_total: Counter,
    pub batch_items_total: Counter,
    pub batch_item_errors_total: Counter,
    pub batch_groups_total: Counter,
    pub batch_group_warm_items_total: Counter,
    pub batch_affine_rescales_total: Counter,
    // SolverStats / ContextStats rollups, accumulated after each backend solve.
    pub solver_iterations: Counter,
    pub solver_matvecs: Counter,
    pub solver_cycles: Counter,
    pub ctx_operator_reuses: Counter,
    pub ctx_assemblies: Counter,
    pub ctx_hierarchy_builds: Counter,
    pub ctx_warm_starts: Counter,
    // Transient session rollups (`POST /v1/transient`).
    pub transient_sessions_active: Gauge,
    pub transient_pinned: Gauge,
    pub transient_sessions_total: Counter,
    pub transient_steps_total: Counter,
    pub transient_runaway_alarms_total: Counter,
    pub transient_session_errors_total: Counter,
    pub transient_step_latency: Histogram,
    // Optimization-job rollups (`/v1/jobs`).  The terminal/eval counters
    // mirror the job table's lifetime totals via `Counter::advance_to`.
    pub jobs_active: Gauge,
    pub jobs_queued: Gauge,
    pub jobs_submitted_total: Counter,
    pub jobs_completed_total: Counter,
    pub jobs_failed_total: Counter,
    pub jobs_cancelled_total: Counter,
    pub jobs_evicted_total: Counter,
    pub jobs_rejected_table_full_total: Counter,
    pub job_slices_total: Counter,
    pub job_evals_total: Counter,
    pub job_dedup_hits_total: Counter,
}

impl Metrics {
    pub fn record_request(&self, endpoint: &str, status: u16) {
        self.requests[endpoint_index(endpoint)][status_index(status)].inc();
    }

    pub fn observe_latency_us(&self, endpoint: &str, us: u64) {
        if let Some(i) = HEAVY_ENDPOINTS.iter().position(|e| *e == endpoint) {
            self.latency[i].observe_us(us);
        }
    }

    pub fn requests_for(&self, endpoint: &str, status: u16) -> u64 {
        self.requests[endpoint_index(endpoint)][status_index(status)].get()
    }

    /// Render the full Prometheus text exposition.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(8192);

        out.push_str("# HELP tsc_requests_total Requests handled, by endpoint and status.\n");
        out.push_str("# TYPE tsc_requests_total counter\n");
        for (ei, endpoint) in ENDPOINTS.iter().enumerate() {
            for (si, status) in STATUSES.iter().enumerate() {
                let n = self.requests[ei][si].get();
                if n > 0 {
                    out.push_str(&format!(
                        "tsc_requests_total{{endpoint=\"{endpoint}\",status=\"{status}\"}} {n}\n"
                    ));
                }
            }
        }

        out.push_str("# HELP tsc_request_seconds End-to-end latency of queued solve endpoints.\n");
        out.push_str("# TYPE tsc_request_seconds histogram\n");
        for (i, endpoint) in HEAVY_ENDPOINTS.iter().enumerate() {
            self.latency[i].render(
                "tsc_request_seconds",
                &format!("endpoint=\"{endpoint}\","),
                &mut out,
            );
        }

        // No observations → no quantile series: a placeholder 0 s gauge
        // would read as a real measurement.  The HELP/TYPE header is also
        // withheld until at least one series exists (a sample-less TYPE is
        // invalid exposition).
        let mut quantiles = String::new();
        for (i, endpoint) in HEAVY_ENDPOINTS.iter().enumerate() {
            for (label, q) in [("0.5", 0.5), ("0.9", 0.9), ("0.99", 0.99)] {
                if let Some(us) = self.latency[i].quantile_us(q) {
                    let seconds = us / 1e6;
                    quantiles.push_str(&format!(
                        "tsc_request_seconds_quantile{{endpoint=\"{endpoint}\",quantile=\"{label}\"}} {seconds}\n"
                    ));
                }
            }
        }
        if !quantiles.is_empty() {
            out.push_str(
                "# HELP tsc_request_seconds_quantile Latency quantiles interpolated at scrape time.\n",
            );
            out.push_str("# TYPE tsc_request_seconds_quantile gauge\n");
            out.push_str(&quantiles);
        }

        out.push_str("# HELP tsc_transient_step_seconds Per-step latency of transient sessions.\n");
        out.push_str("# TYPE tsc_transient_step_seconds histogram\n");
        self.transient_step_latency
            .render("tsc_transient_step_seconds", "", &mut out);

        let gauges: [(&str, &str, i64); 8] = [
            (
                "tsc_queue_depth",
                "Jobs waiting in the solve queue.",
                self.queue_depth.get(),
            ),
            (
                "tsc_queue_capacity",
                "Configured solve-queue capacity.",
                self.queue_capacity.get(),
            ),
            (
                "tsc_inflight_jobs",
                "Jobs currently executing on workers.",
                self.inflight.get(),
            ),
            (
                "tsc_open_connections",
                "Open client connections.",
                self.connections.get(),
            ),
            (
                "tsc_transient_sessions_active",
                "Transient streaming sessions currently open.",
                self.transient_sessions_active.get(),
            ),
            (
                "tsc_transient_pinned",
                "Transient contexts pinned out of the LRU pool by live sessions.",
                self.transient_pinned.get(),
            ),
            (
                "tsc_jobs_active",
                "Optimization jobs currently running.",
                self.jobs_active.get(),
            ),
            (
                "tsc_jobs_queued",
                "Optimization jobs admitted but waiting for a class slot.",
                self.jobs_queued.get(),
            ),
        ];
        for (name, help, value) in gauges {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {value}\n"
            ));
        }

        out.push_str(
            "# HELP tsc_admitted_total Heavy jobs admitted to the solve queue, by class.\n",
        );
        out.push_str("# TYPE tsc_admitted_total counter\n");
        for (i, class) in CLASSES.iter().enumerate() {
            out.push_str(&format!(
                "tsc_admitted_total{{class=\"{class}\"}} {}\n",
                self.class_admitted[i].get()
            ));
        }
        out.push_str("# HELP tsc_shed_total Heavy jobs refused (429) at admission, by class.\n");
        out.push_str("# TYPE tsc_shed_total counter\n");
        for (i, class) in CLASSES.iter().enumerate() {
            out.push_str(&format!(
                "tsc_shed_total{{class=\"{class}\"}} {}\n",
                self.class_shed[i].get()
            ));
        }

        let counters: [(&str, &str, u64); 36] = [
            (
                "tsc_coalesced_requests_total",
                "Requests served by piggybacking on an identical in-flight solve.",
                self.coalesced_total.get(),
            ),
            (
                "tsc_backend_solves_total",
                "Solves actually executed by the backend (post-coalescing).",
                self.backend_solves_total.get(),
            ),
            (
                "tsc_context_pool_hits_total",
                "Context-pool checkouts that found a pooled SolveContext.",
                self.pool_hits.get(),
            ),
            (
                "tsc_context_pool_misses_total",
                "Context-pool checkouts that had to build a fresh SolveContext.",
                self.pool_misses.get(),
            ),
            (
                "tsc_context_pool_evictions_total",
                "Pooled contexts evicted by the LRU cap.",
                self.pool_evictions.get(),
            ),
            (
                "tsc_stack_cache_hits_total",
                "Solve requests that reused a cached built stack (mesh + problem).",
                self.stack_cache_hits.get(),
            ),
            (
                "tsc_stack_cache_misses_total",
                "Solve requests that had to build their stack from the design.",
                self.stack_cache_misses.get(),
            ),
            (
                "tsc_deadline_timeouts_total",
                "Requests answered 504 because their deadline expired in queue.",
                self.deadline_timeouts.get(),
            ),
            (
                "tsc_rejected_queue_full_total",
                "Requests answered 429 because the solve queue was full.",
                self.rejected_queue_full.get(),
            ),
            (
                "tsc_worker_panics_total",
                "Worker jobs that panicked and were converted to 500s.",
                self.worker_panics.get(),
            ),
            (
                "tsc_solver_iterations_total",
                "Krylov iterations accumulated across backend solves.",
                self.solver_iterations.get(),
            ),
            (
                "tsc_solver_matvecs_total",
                "Operator applications accumulated across backend solves.",
                self.solver_matvecs.get(),
            ),
            (
                "tsc_solver_multigrid_cycles_total",
                "Multigrid cycles accumulated across backend solves.",
                self.solver_cycles.get(),
            ),
            (
                "tsc_context_operator_reuses_total",
                "Solves that reused an already-assembled operator.",
                self.ctx_operator_reuses.get(),
            ),
            (
                "tsc_context_assemblies_total",
                "Full operator assemblies performed by pooled contexts.",
                self.ctx_assemblies.get(),
            ),
            (
                "tsc_context_warm_starts_total",
                "Solves warm-started from a pooled temperature field.",
                self.ctx_warm_starts.get(),
            ),
            (
                "tsc_batch_requests_total",
                "POST /v1/batch envelopes accepted.",
                self.batch_requests_total.get(),
            ),
            (
                "tsc_batch_items_total",
                "Individual items carried by batch envelopes.",
                self.batch_items_total.get(),
            ),
            (
                "tsc_batch_item_errors_total",
                "Batch items that returned a per-item error.",
                self.batch_item_errors_total.get(),
            ),
            (
                "tsc_batch_groups_total",
                "Operator-fingerprint groups executed by the batch endpoint.",
                self.batch_groups_total.get(),
            ),
            (
                "tsc_batch_group_warm_items_total",
                "Batch items solved as repowered warm deltas (after a group's first item).",
                self.batch_group_warm_items_total.get(),
            ),
            (
                "tsc_batch_affine_rescales_total",
                "Batch items answered by exact affine superposition of the group's \
                 two anchor solves instead of a solver run.",
                self.batch_affine_rescales_total.get(),
            ),
            (
                "tsc_transient_sessions_total",
                "Transient streaming sessions opened.",
                self.transient_sessions_total.get(),
            ),
            (
                "tsc_transient_steps_total",
                "Implicit-Euler steps executed inside transient sessions.",
                self.transient_steps_total.get(),
            ),
            (
                "tsc_transient_runaway_alarms_total",
                "ThermalRunaway alarms streamed in-band to transient sessions.",
                self.transient_runaway_alarms_total.get(),
            ),
            (
                "tsc_transient_session_errors_total",
                "Transient sessions ended by a typed in-band error event.",
                self.transient_session_errors_total.get(),
            ),
            (
                "tsc_jobs_submitted_total",
                "Optimization jobs admitted by POST /v1/jobs.",
                self.jobs_submitted_total.get(),
            ),
            (
                "tsc_jobs_completed_total",
                "Optimization jobs that finished with a result.",
                self.jobs_completed_total.get(),
            ),
            (
                "tsc_jobs_failed_total",
                "Optimization jobs that ended in a fatal error.",
                self.jobs_failed_total.get(),
            ),
            (
                "tsc_jobs_cancelled_total",
                "Optimization jobs cancelled by the client.",
                self.jobs_cancelled_total.get(),
            ),
            (
                "tsc_jobs_evicted_total",
                "Terminal job entries evicted after their TTL.",
                self.jobs_evicted_total.get(),
            ),
            (
                "tsc_jobs_rejected_table_full_total",
                "Job submissions refused because the job table was full.",
                self.jobs_rejected_table_full_total.get(),
            ),
            (
                "tsc_job_slices_total",
                "Job work slices executed by solver workers.",
                self.job_slices_total.get(),
            ),
            (
                "tsc_job_evals_total",
                "Fresh candidate evaluations performed by terminal jobs.",
                self.job_evals_total.get(),
            ),
            (
                "tsc_job_dedup_hits_total",
                "Candidate evaluations served from the fingerprint memo by terminal jobs.",
                self.job_dedup_hits_total.get(),
            ),
            (
                "tsc_lock_poisoned_total",
                "Mutex guards recovered from a poisoned state (a worker panicked \
                 mid-critical-section; state was reconstructed).",
                crate::locks::poisoned_total(),
            ),
        ];
        for (name, help, value) in counters {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"
            ));
        }

        out
    }
}

/// The Prometheus text-format checker shared with the load generator:
/// re-exported from [`tsc_bench::prom`], where it can be consumed without
/// linking this crate.
pub use tsc_bench::prom::validate_exposition;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_interpolate_within_buckets() {
        let h = Histogram::default();
        for _ in 0..100 {
            h.observe_us(400); // all in the first bucket (≤500µs)
        }
        assert_eq!(h.count(), 100);
        let p50 = h.quantile_us(0.5).expect("non-empty");
        assert!(p50 > 0.0 && p50 <= 500.0, "p50 = {p50}");
        // Add a slow tail and check p99 moves into a later bucket.
        for _ in 0..5 {
            h.observe_us(90_000);
        }
        assert!(h.quantile_us(0.99).expect("non-empty") > 50_000.0);
    }

    #[test]
    fn histogram_tail_beyond_last_bound_still_counts() {
        let h = Histogram::default();
        h.observe_us(50_000_000); // beyond 10s bound → +Inf only
        assert_eq!(h.count(), 1);
        assert!(h.quantile_us(0.5).expect("non-empty") > 0.0);
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = Histogram::default();
        assert_eq!(h.quantile_us(0.5), None);
        assert_eq!(h.quantile_us(0.99), None);
        // ...and render must omit the quantile series entirely rather than
        // publishing a fake 0 s gauge.
        let m = Metrics::default();
        m.record_request("solve", 200);
        let text = m.render();
        validate_exposition(&text).expect("exposition must validate");
        assert!(
            !text.contains("tsc_request_seconds_quantile{"),
            "no quantile series while every histogram is empty"
        );
        // The histogram series themselves (all-zero buckets) still render.
        assert!(text.contains("tsc_request_seconds_bucket{endpoint=\"solve\",le=\"+Inf\"} 0"));
        m.observe_latency_us("solve", 1_000);
        let text = m.render();
        assert!(text.contains("tsc_request_seconds_quantile{endpoint=\"solve\",quantile=\"0.5\"}"));
        assert!(
            !text.contains("tsc_request_seconds_quantile{endpoint=\"flow\""),
            "flow histogram is still empty"
        );
    }

    #[test]
    fn quantile_in_overflow_bucket_clamps_to_last_finite_bound() {
        let h = Histogram::default();
        // One fast observation, nine far beyond the last finite bound: the
        // median sits in +Inf, which has no upper edge to interpolate
        // against.  It must clamp to the 10 s bound, not extrapolate.
        h.observe_us(400);
        for _ in 0..9 {
            h.observe_us(60_000_000);
        }
        let last = *BUCKET_BOUNDS_US.last().unwrap() as f64;
        assert_eq!(h.quantile_us(0.5), Some(last));
        assert_eq!(h.quantile_us(0.99), Some(last));
    }

    #[test]
    fn transient_series_render_and_validate() {
        let m = Metrics::default();
        m.record_request("transient", 200);
        m.transient_sessions_total.inc();
        m.transient_steps_total.add(3);
        m.transient_runaway_alarms_total.inc();
        m.transient_step_latency.observe_us(800);
        m.transient_sessions_active.set(1);
        m.transient_pinned.set(1);
        let text = m.render();
        validate_exposition(&text).expect("exposition must validate");
        assert!(text.contains("tsc_requests_total{endpoint=\"transient\",status=\"200\"} 1"));
        assert!(text.contains("tsc_transient_sessions_active 1"));
        assert!(text.contains("tsc_transient_pinned 1"));
        assert!(text.contains("tsc_transient_sessions_total 1"));
        assert!(text.contains("tsc_transient_steps_total 3"));
        assert!(text.contains("tsc_transient_runaway_alarms_total 1"));
        assert!(text.contains("tsc_transient_step_seconds_count{} 1"));
    }

    #[test]
    fn render_is_valid_exposition() {
        let m = Metrics::default();
        m.record_request("solve", 200);
        m.record_request("solve", 429);
        m.record_request("nonsense", 200); // falls into the "other" slot
        m.observe_latency_us("solve", 1234);
        m.queue_depth.set(3);
        m.pool_hits.add(7);
        let text = m.render();
        validate_exposition(&text).expect("exposition must validate");
        assert!(text.contains("tsc_requests_total{endpoint=\"solve\",status=\"200\"} 1"));
        assert!(text.contains("tsc_requests_total{endpoint=\"other\",status=\"200\"} 1"));
        assert!(text.contains("tsc_request_seconds_bucket{endpoint=\"solve\",le=\"+Inf\"} 1"));
        assert!(text.contains("tsc_context_pool_hits_total 7"));
        assert!(text.contains("tsc_queue_depth 3"));
    }
}
