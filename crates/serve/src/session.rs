//! Stateful transient-streaming sessions (`POST /v1/transient`).
//!
//! A session takes over its connection after the opening request parses:
//! the server answers with a close-delimited `application/x-ndjson`
//! stream and then speaks newline-delimited JSON in both directions.
//! Client commands:
//!
//! ```json
//! {"op": "step"}                                // one implicit-Euler step
//! {"op": "step", "steps": 25}                   // a bounded burst
//! {"op": "power", "utilization_percent": 40}    // delta-restage the rhs
//! {"op": "close"}                               // clean shutdown
//! ```
//!
//! Server events (one JSON object per line): `open` (pool hit/miss and
//! session limits), `step` (peak temperature, its exact bits, and the
//! hotspot cell), `alarm` (`thermal_runaway`, latched with hysteresis),
//! `power` (restage acknowledgement), `error` (typed, with an HTTP-style
//! status — deadline expiry is an in-band 504, never a hang), and
//! `closed` (final step/alarm counts).
//!
//! Sessions run on their connection thread — they never occupy a solver
//! worker — and are admitted against their own cap, so a fleet of idle
//! sessions cannot starve the queue.  The pooled scheme is held under a
//! [`Pinned`](crate::pool::Pinned) guard whose `Drop` returns it to the
//! LRU on clean close, abrupt disconnect, and panic unwind alike.

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use tsc_bench::json::Json;
use tsc_thermal::transient::{RunawayDetector, StepHalt, StepLimits};
use tsc_units::Temperature;

use crate::api::{fnv1a, TransientRequest};
use crate::http::{Request, Response};
use crate::metrics::Metrics;
use crate::pool::ServicePools;

/// Longest accepted command line (bytes), including the newline.
const MAX_COMMAND_LINE: usize = 4096;

/// Largest step burst one `{"op": "step"}` command may request.
const MAX_BURST: usize = 100_000;

/// Everything a session needs from the server, borrowed for one
/// connection's lifetime.
pub(crate) struct SessionHost<'a> {
    pub pools: &'a ServicePools,
    pub metrics: &'a Metrics,
    /// Live-session count shared with the admission cap and `/metrics`.
    pub active: &'a AtomicUsize,
    /// Admission cap: sessions beyond it are refused with a 429.
    pub cap: usize,
    /// Wall-clock budget for the whole session.
    pub deadline: Duration,
}

/// Decrements the live-session count even when the session panics.
struct ActiveGuard<'a>(&'a AtomicUsize);

impl Drop for ActiveGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

/// One read attempt's outcome while waiting for the next command line.
enum LineRead {
    Line(String),
    Disconnected,
    DeadlineExpired,
}

impl SessionHost<'_> {
    /// Run the session.  `leftover` is whatever the connection buffer
    /// held beyond the opening request (pipelined commands).  Always
    /// consumes the connection: the stream is close-delimited.
    pub fn serve(
        &self,
        request: &Request,
        stream: &mut TcpStream,
        leftover: &[u8],
        stopping: &dyn Fn() -> bool,
    ) {
        let req = match parse_open(request) {
            Ok(req) => req,
            Err(message) => {
                self.refuse(stream, 400, &message);
                return;
            }
        };
        let admitted = self
            .active
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                (n < self.cap).then_some(n + 1)
            })
            .is_ok();
        if !admitted {
            self.refuse_with_retry(stream, 429, "transient session cap reached");
            return;
        }
        let _active = ActiveGuard(self.active);

        // Check out (or build) the pooled scheme and pin it: from here on
        // the state flows back to the pool on every exit path.
        let pool_id = req.session_pool_id();
        let hash = fnv1a(pool_id.as_bytes());
        let (state, pooled) = match self.pools.transients.take(hash, &pool_id) {
            Some(mut state) => match req.reuse_state(&mut state) {
                Ok(()) => (state, "hit"),
                Err((status, message)) => {
                    self.refuse(stream, status, &message);
                    return;
                }
            },
            None => match req.build_state() {
                Ok(state) => (state, "miss"),
                Err((status, message)) => {
                    self.refuse(stream, status, &message);
                    return;
                }
            },
        };
        let mut state = self.pools.transients.pin(hash, pool_id, state);

        self.metrics.record_request("transient", 200);
        self.metrics.transient_sessions_total.inc();
        let head =
            "HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\nConnection: close\r\n\r\n";
        if stream.write_all(head.as_bytes()).is_err() {
            return;
        }

        let deadline = Instant::now() + self.deadline;
        let limits = StepLimits::budget(req.max_steps).with_deadline(deadline);
        let mut detector = req
            .runaway_celsius
            .map(|c| RunawayDetector::new(Temperature::from_celsius(c)));
        let dim = state.run.dim();
        let open = Json::object()
            .field("event", "open")
            .field("design", req.solve.design.as_str())
            .field("dt_seconds", req.dt_seconds)
            .field(
                "dim",
                vec![Json::from(dim.nx), dim.ny.into(), dim.nz.into()],
            )
            .field("max_steps", req.max_steps as usize)
            .field("pool", pooled);
        if !send(stream, &open) {
            return;
        }

        let mut alarms = 0u64;
        let mut buf: Vec<u8> = leftover.to_vec();
        loop {
            let line = match self.next_line(stream, &mut buf, deadline, stopping) {
                LineRead::Line(line) => line,
                LineRead::Disconnected => return,
                LineRead::DeadlineExpired => {
                    let steps = state.run.steps_taken();
                    // Unpin first: a client that saw the terminal event
                    // must find the state back in the pool on reopen.
                    drop(state);
                    self.in_band_error(stream, 504, "session deadline expired", steps);
                    self.close_event(stream, steps, alarms);
                    return;
                }
            };
            if line.trim().is_empty() {
                continue;
            }
            let command = match tsc_bench::json::parse(&line) {
                Ok(json) => json,
                Err(e) => {
                    let steps = state.run.steps_taken();
                    drop(state);
                    self.in_band_error(stream, 400, &format!("invalid command: {e}"), steps);
                    self.close_event(stream, steps, alarms);
                    return;
                }
            };
            match command.get("op").and_then(Json::as_str) {
                Some("close") => {
                    let steps = state.run.steps_taken();
                    drop(state);
                    self.close_event(stream, steps, alarms);
                    return;
                }
                Some("step") => {
                    let burst = command
                        .get("steps")
                        .map(|v| v.as_usize().filter(|n| (1..=MAX_BURST).contains(n)))
                        .unwrap_or(Some(1));
                    let Some(burst) = burst else {
                        let message = format!("steps must be an integer in [1, {MAX_BURST}]");
                        let steps = state.run.steps_taken();
                        drop(state);
                        self.in_band_error(stream, 400, &message, steps);
                        self.close_event(stream, steps, alarms);
                        return;
                    };
                    for _ in 0..burst {
                        if let Some(halt) = state.run.check_limits(&limits) {
                            let status = match halt {
                                StepHalt::BudgetExhausted { .. } => 429,
                                StepHalt::DeadlineExpired { .. } => 504,
                            };
                            let steps = state.run.steps_taken();
                            drop(state);
                            self.in_band_error(stream, status, &halt.to_string(), steps);
                            self.close_event(stream, steps, alarms);
                            return;
                        }
                        let started = Instant::now();
                        if let Err(e) = state.run.step() {
                            let steps = state.run.steps_taken();
                            drop(state);
                            self.in_band_error(stream, 500, &format!("step failed: {e}"), steps);
                            self.close_event(stream, steps, alarms);
                            return;
                        }
                        let us = started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
                        self.metrics.transient_step_latency.observe_us(us);
                        self.metrics.transient_steps_total.inc();
                        let peak = state.run.peak();
                        let event = Json::object()
                            .field("event", "step")
                            .field("step", state.run.steps_taken() as usize)
                            .field("time_seconds", state.run.time_seconds())
                            .field("peak_celsius", peak.celsius())
                            .field("peak_bits", format!("{:016x}", peak.kelvin.to_bits()))
                            .field(
                                "hotspot",
                                vec![
                                    Json::from(peak.hotspot.i),
                                    peak.hotspot.j.into(),
                                    peak.hotspot.k.into(),
                                ],
                            );
                        if !send(stream, &event) {
                            return;
                        }
                        if let Some(det) = detector.as_mut() {
                            if det.observe(Temperature::from_kelvin(peak.kelvin)) {
                                alarms += 1;
                                self.metrics.transient_runaway_alarms_total.inc();
                                let alarm = Json::object()
                                    .field("event", "alarm")
                                    .field("kind", "thermal_runaway")
                                    .field("step", state.run.steps_taken() as usize)
                                    .field("threshold_celsius", det.threshold().celsius())
                                    .field("peak_celsius", peak.celsius());
                                if !send(stream, &alarm) {
                                    return;
                                }
                            }
                        }
                    }
                }
                Some("power") => {
                    let utilization = command
                        .get("utilization_percent")
                        .and_then(Json::as_f64)
                        .filter(|u| u.is_finite() && (1.0..=100.0).contains(u));
                    let Some(utilization) = utilization else {
                        let steps = state.run.steps_taken();
                        drop(state);
                        self.in_band_error(
                            stream,
                            400,
                            "utilization_percent must be a number in [1, 100]",
                            steps,
                        );
                        self.close_event(stream, steps, alarms);
                        return;
                    };
                    if let Err((status, message)) = req.set_power(&mut state, utilization) {
                        let steps = state.run.steps_taken();
                        drop(state);
                        self.in_band_error(stream, status, &message, steps);
                        self.close_event(stream, steps, alarms);
                        return;
                    }
                    let ack = Json::object()
                        .field("event", "power")
                        .field("utilization_percent", utilization)
                        .field("step", state.run.steps_taken() as usize);
                    if !send(stream, &ack) {
                        return;
                    }
                }
                _ => {
                    let steps = state.run.steps_taken();
                    drop(state);
                    self.in_band_error(stream, 400, "unknown op (step | power | close)", steps);
                    self.close_event(stream, steps, alarms);
                    return;
                }
            }
        }
    }

    /// Wait for the next newline-terminated command, respecting the
    /// session deadline and server shutdown.  The stream's 200 ms read
    /// timeout (set by the connection driver) paces the checks.
    fn next_line(
        &self,
        stream: &mut TcpStream,
        buf: &mut Vec<u8>,
        deadline: Instant,
        stopping: &dyn Fn() -> bool,
    ) -> LineRead {
        let mut chunk = [0u8; 1024];
        loop {
            if let Some(pos) = buf.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = buf.drain(..=pos).collect();
                return match String::from_utf8(line) {
                    Ok(line) => LineRead::Line(line),
                    Err(_) => LineRead::Line(String::new()), // forces a 400
                };
            }
            if buf.len() > MAX_COMMAND_LINE {
                // Treat an unbounded line like a disconnect-worthy parse
                // error: surface it in-band, then bail.
                return LineRead::Line("\u{0}oversized".to_string());
            }
            if Instant::now() >= deadline || stopping() {
                return LineRead::DeadlineExpired;
            }
            match stream.read(&mut chunk) {
                Ok(0) => return LineRead::Disconnected,
                Ok(n) => buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
                Err(_) => return LineRead::Disconnected,
            }
        }
    }

    /// Refuse the session before streaming starts, with a plain HTTP
    /// response.
    fn refuse(&self, stream: &mut TcpStream, status: u16, message: &str) {
        self.metrics.record_request("transient", status);
        let response = Response::error(status, message).with_close();
        let _ = stream.write_all(&response.to_bytes());
    }

    fn refuse_with_retry(&self, stream: &mut TcpStream, status: u16, message: &str) {
        self.metrics.record_request("transient", status);
        let response = Response::error(status, message)
            .with_retry_after(1)
            .with_close();
        let _ = stream.write_all(&response.to_bytes());
    }

    /// Emit a typed in-band error event (the streaming-phase analogue of
    /// an HTTP error status).
    fn in_band_error(&self, stream: &mut TcpStream, status: u16, message: &str, steps: u64) {
        self.metrics.transient_session_errors_total.inc();
        let event = Json::object()
            .field("event", "error")
            .field("status", status as usize)
            .field("error", message)
            .field("step", steps as usize);
        let _ = send(stream, &event);
    }

    fn close_event(&self, stream: &mut TcpStream, steps: u64, alarms: u64) {
        let event = Json::object()
            .field("event", "closed")
            .field("steps", steps as usize)
            .field("alarms", alarms as usize);
        let _ = send(stream, &event);
    }
}

/// Parse the opening request body into a [`TransientRequest`].
fn parse_open(request: &Request) -> Result<TransientRequest, String> {
    let text = std::str::from_utf8(&request.body).map_err(|_| "body is not UTF-8".to_string())?;
    let json = tsc_bench::json::parse(text).map_err(|e| format!("invalid JSON body: {e}"))?;
    TransientRequest::parse(&json)
}

/// Write one event line; `false` means the client is gone.
fn send(stream: &mut TcpStream, event: &Json) -> bool {
    let mut line = event.compact();
    line.push('\n');
    stream.write_all(line.as_bytes()).is_ok()
}
