//! Randomized property tests of the k-extraction kernel: for any
//! laminate or inclusion geometry the extracted conductivity must
//! respect the classical Voigt/Reuss bounds and basic symmetries.
//!
//! Cases come from a deterministic [`Rng64`] stream per test — the
//! hermetic replacement for the former proptest dependency.

use tsc_homogenize::{extract_k, Axis, VoxelModel};
use tsc_rng::Rng64;
use tsc_units::{Length, ThermalConductivity};

const CASES: usize = 16;

fn nm(v: f64) -> Length {
    Length::from_nanometers(v)
}

#[test]
fn laminate_within_voigt_reuss() {
    let mut rng = Rng64::seed_from_u64(0x3001);
    for _ in 0..CASES {
        let k_a = rng.gen_range_f64(0.1..300.0);
        let k_b = rng.gen_range_f64(0.1..300.0);
        let split = rng.gen_range(1..7);
        // An 8-layer stack split into two materials at a random plane.
        let mut m = VoxelModel::new(
            4,
            4,
            8,
            nm(400.0),
            nm(400.0),
            nm(800.0),
            ThermalConductivity::new(k_a),
        );
        m.paint_z_range(split, 8, ThermalConductivity::new(k_b));
        let f_a = split as f64 / 8.0;
        let voigt = f_a * k_a + (1.0 - f_a) * k_b;
        let reuss = 1.0 / (f_a / k_a + (1.0 - f_a) / k_b);
        let kz = extract_k(&m, Axis::Z).expect("converges").get();
        let kx = extract_k(&m, Axis::X).expect("converges").get();
        // Cross-plane equals Reuss, in-plane equals Voigt (exact for
        // laminates), both within numerical tolerance.
        assert!(
            (kz - reuss).abs() / reuss < 0.02,
            "kz {kz} vs Reuss {reuss}"
        );
        assert!(
            (kx - voigt).abs() / voigt < 0.02,
            "kx {kx} vs Voigt {voigt}"
        );
    }
}

#[test]
fn homogeneous_block_is_isotropic() {
    let mut rng = Rng64::seed_from_u64(0x3002);
    for _ in 0..CASES {
        let k = rng.gen_range_f64(0.05..500.0);
        let m = VoxelModel::new(
            3,
            4,
            5,
            nm(300.0),
            nm(400.0),
            nm(500.0),
            ThermalConductivity::new(k),
        );
        for axis in [Axis::X, Axis::Y, Axis::Z] {
            let got = extract_k(&m, axis).expect("converges").get();
            assert!((got - k).abs() / k < 1e-6, "{axis}: {got} vs {k}");
        }
    }
}

#[test]
fn inclusions_move_k_toward_inclusion() {
    let mut rng = Rng64::seed_from_u64(0x3003);
    for _ in 0..CASES {
        let k_bg = rng.gen_range_f64(0.1..10.0);
        let k_inc = rng.gen_range_f64(20.0..300.0);
        let side = rng.gen_range(1..3);
        // A centered high-k column raises vertical k but never beyond the
        // parallel-rule (Voigt) bound.
        let n = 5usize;
        let mut m = VoxelModel::new(
            n,
            n,
            4,
            nm(500.0),
            nm(500.0),
            nm(400.0),
            ThermalConductivity::new(k_bg),
        );
        let lo = (n - side) / 2;
        m.paint_box(
            lo..lo + side,
            lo..lo + side,
            0..4,
            ThermalConductivity::new(k_inc),
        );
        let f = (side * side) as f64 / (n * n) as f64;
        let voigt = f * k_inc + (1.0 - f) * k_bg;
        let kz = extract_k(&m, Axis::Z).expect("converges").get();
        assert!(kz > k_bg, "inclusion must help: {kz} vs {k_bg}");
        assert!(kz <= voigt * (1.0 + 1e-6), "Voigt bound: {kz} vs {voigt}");
    }
}

#[test]
fn swapping_materials_swaps_nothing_at_half_fill() {
    let mut rng = Rng64::seed_from_u64(0x3004);
    for _ in 0..CASES {
        let k_a = rng.gen_range_f64(0.5..50.0);
        let k_b = rng.gen_range_f64(0.5..50.0);
        // A 50/50 laminate's k_eff is symmetric in the two materials.
        let build = |top: f64, bottom: f64| {
            let mut m = VoxelModel::new(
                4,
                4,
                8,
                nm(400.0),
                nm(400.0),
                nm(800.0),
                ThermalConductivity::new(bottom),
            );
            m.paint_z_range(4, 8, ThermalConductivity::new(top));
            m
        };
        let k1 = extract_k(&build(k_a, k_b), Axis::Z)
            .expect("converges")
            .get();
        let k2 = extract_k(&build(k_b, k_a), Axis::Z)
            .expect("converges")
            .get();
        assert!((k1 - k2).abs() / k1 < 1e-6, "{k1} vs {k2}");
    }
}
