//! Run the Sec. IIIA pillar placement algorithm on the Rocket core and
//! render the resulting constellation as ASCII art (the Fig. 8c/8d
//! overlay).
//!
//! ```sh
//! cargo run --release --example pillar_placement
//! ```

use thermal_scaffolding::core::beol::BeolProperties;
use thermal_scaffolding::core::pillars::{place, PlacementConfig};
use thermal_scaffolding::core::stack::{solve, StackConfig};
use thermal_scaffolding::designs::rocket;
use thermal_scaffolding::thermal::Heatsink;
use thermal_scaffolding::units::Temperature;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let design = rocket::design();
    println!("placing pillars on: {design}");

    let config = PlacementConfig {
        tiers: 8,
        t_target: Temperature::from_celsius(125.0),
        lateral_cells: 10,
        ..PlacementConfig::paper_default()
    };
    let plan = place(&design, &config)?
        .ok_or("infeasible: some source cannot be cooled at this tier count")?;

    println!(
        "placed {} pillars ({} footprint penalty)",
        plan.count(),
        plan.area_penalty
    );

    // ASCII overlay: units as letters, pillar density as shading.
    let cells = 40;
    let mut canvas = vec![vec![' '; cells]; cells];
    for u in &design.units {
        let tag = u.name.chars().next().unwrap_or('?');
        for (j, row) in canvas.iter_mut().enumerate() {
            for (i, ch) in row.iter_mut().enumerate() {
                let x = design.die.width() * ((i as f64 + 0.5) / cells as f64);
                let y = design.die.height() * ((j as f64 + 0.5) / cells as f64);
                if u.rect
                    .contains(thermal_scaffolding::geometry::Point::new(x, y))
                {
                    *ch = if u.is_macro {
                        tag.to_ascii_uppercase()
                    } else {
                        tag
                    };
                }
            }
        }
    }
    let density = plan.density_map.resampled(cells, cells);
    for (j, row) in canvas.iter_mut().enumerate() {
        for (i, ch) in row.iter_mut().enumerate() {
            let d = density[(i, j)];
            if d > 0.15 {
                *ch = '#';
            } else if d > 0.05 {
                *ch = '+';
            } else if d > 0.005 && *ch == ' ' {
                *ch = '.';
            }
        }
    }
    println!("floorplan with pillar overlay (#/+/. = pillar density):");
    for row in canvas.iter().rev() {
        println!("  {}", row.iter().collect::<String>());
    }

    // Verify the plan thermally.
    let stack = StackConfig::uniform(
        config.tiers,
        BeolProperties::scaffolded(),
        Heatsink::two_phase(),
    )
    .with_lateral_cells(16)
    .with_pillar_map(plan.density_map.clone());
    let solution = solve(&design, &stack)?;
    println!(
        "verification solve: Tj = {} (target {})",
        solution.junction_temperature(),
        config.t_target
    );
    Ok(())
}
