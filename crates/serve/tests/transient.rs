//! Integration tests for the `/v1/transient` streaming session endpoint,
//! over a real socket with an independent NDJSON client.
//!
//! Covers the full lifecycle (open → delta steps → close), leak-proof
//! pin return on abrupt disconnect, typed in-band deadline errors (never
//! a hang), the in-band `thermal_runaway` alarm, and the acceptance
//! criterion that the streamed trajectory is bitwise-identical to an
//! offline [`TransientRun`](tsc_thermal::transient::TransientRun) driven
//! with the same deltas.

mod common;

use std::time::{Duration, Instant};

use common::{event_kind, field_num, field_str, SessionClient};
use tsc_bench::json::{parse, Json};
use tsc_serve::api::TransientRequest;
use tsc_serve::{Server, ServerConfig};
use tsc_verify::assert_close;

/// A small fast fixture: the two-tier Gemmini memory stack on a coarse
/// mesh, with a large timestep so trajectories settle in tens of steps.
const SMALL_BODY: &str = r#"{"design": "gemmini-memory", "tiers": 2, "lateral_cells": 6,
                             "dt_seconds": 0.001}"#;

const EVENT_WAIT: Duration = Duration::from_secs(60);

#[test]
fn session_lifecycle_open_steps_power_close() {
    let server = Server::start(ServerConfig::default()).expect("start");
    let mut client = SessionClient::open(server.addr(), SMALL_BODY, &[]);
    assert_eq!(client.read_head(EVENT_WAIT), 200);

    let open = client.next_event(EVENT_WAIT);
    assert_eq!(event_kind(&open), "open");
    assert_eq!(field_str(&open, "pool"), "miss");
    assert_eq!(field_str(&open, "design"), "gemmini-memory");

    // One single step, then a burst of two.
    client.send(r#"{"op": "step"}"#);
    let step1 = client.next_event(EVENT_WAIT);
    assert_eq!(event_kind(&step1), "step");
    assert_eq!(field_num(&step1, "step"), 1.0);
    assert!(field_num(&step1, "peak_celsius") > 20.0);
    assert!(step1.get("peak_bits").and_then(Json::as_str).is_some());
    assert_eq!(
        step1
            .get("hotspot")
            .and_then(Json::as_array)
            .map(<[Json]>::len),
        Some(3)
    );

    client.send(r#"{"op": "step", "steps": 2}"#);
    let step2 = client.next_event(EVENT_WAIT);
    let step3 = client.next_event(EVENT_WAIT);
    assert_eq!(field_num(&step2, "step"), 2.0);
    assert_eq!(field_num(&step3, "step"), 3.0);
    assert!(
        field_num(&step3, "time_seconds") > field_num(&step2, "time_seconds"),
        "simulated time must advance"
    );

    // Power delta: ack, then the trajectory bends downward.
    client.send(r#"{"op": "power", "utilization_percent": 10}"#);
    let ack = client.next_event(EVENT_WAIT);
    assert_eq!(event_kind(&ack), "power");
    assert_eq!(field_num(&ack, "utilization_percent"), 10.0);

    client.send(r#"{"op": "step", "steps": 30}"#);
    let mut last_peak = f64::INFINITY;
    for i in 4..=33 {
        let step = client.next_event(EVENT_WAIT);
        assert_eq!(field_num(&step, "step"), f64::from(i));
        last_peak = field_num(&step, "peak_celsius");
    }
    assert!(
        last_peak < field_num(&step3, "peak_celsius"),
        "cutting power to 10% must cool the stack"
    );

    client.send(r#"{"op": "close"}"#);
    let closed = client.next_event(EVENT_WAIT);
    assert_eq!(event_kind(&closed), "closed");
    assert_eq!(field_num(&closed, "steps"), 33.0);
    assert_eq!(field_num(&closed, "alarms"), 0.0);
    assert!(client.at_eof(Duration::from_secs(5)), "close-delimited");

    assert_eq!(server.metrics().transient_sessions_total.get(), 1);
    assert_eq!(server.metrics().transient_steps_total.get(), 33);
    assert_eq!(server.metrics().requests_for("transient", 200), 1);
    assert_eq!(server.metrics().worker_panics.get(), 0);
    // Clean close returned the pinned state to the pool.
    assert_eq!(server.pools().transients.pinned(), 0);
    assert_eq!(server.pools().transients.len(), 1);
    server.shutdown();
}

#[test]
fn abrupt_disconnect_returns_pinned_state_to_the_pool() {
    let server = Server::start(ServerConfig::default()).expect("start");
    {
        let mut client = SessionClient::open(server.addr(), SMALL_BODY, &[]);
        assert_eq!(client.read_head(EVENT_WAIT), 200);
        let open = client.next_event(EVENT_WAIT);
        assert_eq!(field_str(&open, "pool"), "miss");
        client.send(r#"{"op": "step"}"#);
        let _ = client.next_event(EVENT_WAIT);
        // Mid-session the state is pinned out of the pool.
        assert_eq!(server.pools().transients.pinned(), 1);
        assert_eq!(server.pools().transients.len(), 0);
        // Drop without a close op: an abrupt client death.
    }
    // The connection thread notices EOF within its 200 ms poll and the
    // pin guard returns the state.
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.pools().transients.pinned() != 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(
        server.pools().transients.pinned(),
        0,
        "pin must be released"
    );
    assert_eq!(
        server.pools().transients.len(),
        1,
        "state must return to the pool, not leak"
    );

    // A follow-up session on the same geometry is a pool hit.
    let mut client = SessionClient::open(server.addr(), SMALL_BODY, &[]);
    assert_eq!(client.read_head(EVENT_WAIT), 200);
    let open = client.next_event(EVENT_WAIT);
    assert_eq!(field_str(&open, "pool"), "hit");
    client.send(r#"{"op": "close"}"#);
    let _ = client.next_event(EVENT_WAIT);
    server.shutdown();
}

#[test]
fn deadline_expiry_yields_typed_in_band_error_not_a_hang() {
    let server = Server::start(ServerConfig::default()).expect("start");
    let started = Instant::now();
    let mut client = SessionClient::open(server.addr(), SMALL_BODY, &[("X-Deadline-Ms", "300")]);
    assert_eq!(client.read_head(EVENT_WAIT), 200);
    let _open = client.next_event(EVENT_WAIT);

    // Send nothing: the session must end itself when the deadline
    // passes, with a typed in-band 504 followed by a clean close.
    let error = client.next_event(Duration::from_secs(10));
    assert_eq!(event_kind(&error), "error");
    assert_eq!(field_num(&error, "status"), 504.0);
    assert!(field_str(&error, "error").contains("deadline"));
    let closed = client.next_event(EVENT_WAIT);
    assert_eq!(event_kind(&closed), "closed");
    assert!(client.at_eof(Duration::from_secs(5)));
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "the deadline must actually bound the session"
    );
    assert_eq!(server.metrics().transient_session_errors_total.get(), 1);
    assert_eq!(server.pools().transients.pinned(), 0);
    server.shutdown();
}

#[test]
fn step_budget_exhaustion_is_a_typed_429_halt() {
    let server = Server::start(ServerConfig::default()).expect("start");
    let body = r#"{"design": "gemmini-memory", "tiers": 2, "lateral_cells": 6,
                   "dt_seconds": 0.001, "max_steps": 5}"#;
    let mut client = SessionClient::open(server.addr(), body, &[]);
    assert_eq!(client.read_head(EVENT_WAIT), 200);
    let _open = client.next_event(EVENT_WAIT);
    client.send(r#"{"op": "step", "steps": 10}"#);
    for i in 1..=5 {
        let step = client.next_event(EVENT_WAIT);
        assert_eq!(event_kind(&step), "step");
        assert_eq!(field_num(&step, "step"), f64::from(i));
    }
    let error = client.next_event(EVENT_WAIT);
    assert_eq!(event_kind(&error), "error");
    assert_eq!(field_num(&error, "status"), 429.0);
    assert!(field_str(&error, "error").contains("budget"));
    let closed = client.next_event(EVENT_WAIT);
    assert_eq!(field_num(&closed, "steps"), 5.0);
    server.shutdown();
}

#[test]
fn runaway_schedule_streams_a_typed_alarm_before_close() {
    let server = Server::start(ServerConfig::default()).expect("start");
    // Threshold well below this fixture's steady peak: heating at 100%
    // utilization must cross it and fire exactly one latched alarm.
    let body = r#"{"design": "gemmini-memory", "tiers": 2, "lateral_cells": 6,
                   "dt_seconds": 0.001, "runaway_celsius": 30.0}"#;
    let mut client = SessionClient::open(server.addr(), body, &[]);
    assert_eq!(client.read_head(EVENT_WAIT), 200);
    let _open = client.next_event(EVENT_WAIT);

    client.send(r#"{"op": "step", "steps": 200}"#);
    client.send(r#"{"op": "close"}"#);
    let mut alarms = Vec::new();
    let mut steps = 0u32;
    loop {
        let event = client.next_event(EVENT_WAIT);
        match event_kind(&event).as_str() {
            "step" => steps += 1,
            "alarm" => {
                assert_eq!(field_str(&event, "kind"), "thermal_runaway");
                assert!(field_num(&event, "peak_celsius") >= 30.0);
                assert_eq!(field_num(&event, "threshold_celsius"), 30.0);
                alarms.push(field_num(&event, "step"));
            }
            "closed" => break,
            other => panic!("unexpected event {other:?}: {}", event.pretty()),
        }
    }
    assert_eq!(steps, 200);
    assert_eq!(alarms.len(), 1, "one excursion, one latched alarm");
    assert!(client.at_eof(Duration::from_secs(5)));
    assert_eq!(server.metrics().transient_runaway_alarms_total.get(), 1);
    assert_eq!(server.metrics().worker_panics.get(), 0);
    server.shutdown();
}

#[test]
fn session_cap_refuses_excess_sessions_with_429() {
    let config = ServerConfig {
        session_cap: 1,
        ..ServerConfig::default()
    };
    let server = Server::start(config).expect("start");
    let mut first = SessionClient::open(server.addr(), SMALL_BODY, &[]);
    assert_eq!(first.read_head(EVENT_WAIT), 200);
    let _open = first.next_event(EVENT_WAIT);

    let mut second = SessionClient::open(server.addr(), SMALL_BODY, &[]);
    assert_eq!(second.read_head(EVENT_WAIT), 429);
    assert_eq!(server.metrics().requests_for("transient", 429), 1);

    first.send(r#"{"op": "close"}"#);
    let _ = first.next_event(EVENT_WAIT);
    server.shutdown();
}

#[test]
fn streamed_gemmini_trajectory_is_bitwise_identical_to_offline_run() {
    // The acceptance criterion: drive a DVFS-style schedule through the
    // service and through a locally built TransientRun, and compare the
    // per-step peak bits exactly.
    let body = r#"{"design": "gemmini", "tiers": 4, "lateral_cells": 8,
                   "dt_seconds": 0.0005}"#;
    let schedule: [(f64, usize); 3] = [(100.0, 3), (30.0, 3), (100.0, 2)];

    // Offline reference, built through the same request type the server
    // parses but stepped entirely in-process.
    let req = TransientRequest::parse(&parse(body).expect("body parses")).expect("valid");
    let mut offline = req.build_state().expect("offline staging");
    let mut expected = Vec::new();
    for (utilization, steps) in schedule {
        req.set_power(&mut offline, utilization).expect("repower");
        for _ in 0..steps {
            offline.run.step().expect("offline step");
            expected.push(format!("{:016x}", offline.run.peak().kelvin.to_bits()));
        }
    }

    let server = Server::start(ServerConfig::default()).expect("start");
    let mut client = SessionClient::open(server.addr(), body, &[]);
    assert_eq!(client.read_head(EVENT_WAIT), 200);
    let _open = client.next_event(EVENT_WAIT);
    let mut streamed = Vec::new();
    for (utilization, steps) in schedule {
        client.send(&format!(
            r#"{{"op": "power", "utilization_percent": {utilization}}}"#
        ));
        let ack = client.next_event(EVENT_WAIT);
        assert_eq!(event_kind(&ack), "power");
        client.send(&format!(r#"{{"op": "step", "steps": {steps}}}"#));
        for _ in 0..steps {
            let step = client.next_event(EVENT_WAIT);
            assert_eq!(event_kind(&step), "step");
            streamed.push(field_str(&step, "peak_bits"));
        }
    }
    client.send(r#"{"op": "close"}"#);
    let closed = client.next_event(EVENT_WAIT);
    assert_eq!(event_kind(&closed), "closed");

    assert_eq!(
        streamed, expected,
        "streamed peak trajectory must be bitwise-identical to the offline run"
    );
    assert_eq!(server.metrics().worker_panics.get(), 0);
    server.shutdown();
}

#[test]
fn streamed_session_settles_to_the_steady_state() {
    // The transient-settles-to-steady property, end to end through the
    // service path: a long burst at constant power must land on the
    // steady solver's answer.
    let req = TransientRequest::parse(&parse(SMALL_BODY).expect("body parses")).expect("valid");
    let offline = req.build_state().expect("staging");
    let steady = tsc_thermal::CgSolver::new()
        .solve(&offline.stack.problem)
        .expect("steady solve");
    let steady_peak = steady.temperatures.max_temperature().celsius();
    let ambient = req.solve.heatsink.ambient.celsius();

    let server = Server::start(ServerConfig::default()).expect("start");
    let mut client = SessionClient::open(server.addr(), SMALL_BODY, &[]);
    assert_eq!(client.read_head(EVENT_WAIT), 200);
    let _open = client.next_event(EVENT_WAIT);
    client.send(r#"{"op": "step", "steps": 400}"#);
    let mut last_peak = f64::NAN;
    for _ in 0..400 {
        let step = client.next_event(EVENT_WAIT);
        assert_eq!(event_kind(&step), "step");
        last_peak = field_num(&step, "peak_celsius");
    }
    client.send(r#"{"op": "close"}"#);
    let _ = client.next_event(EVENT_WAIT);

    let rise = (steady_peak - ambient).max(0.1);
    assert_close!(
        last_peak,
        steady_peak,
        abs = 0.01 * rise,
        "streamed session must settle at the steady state"
    );
    server.shutdown();
}
