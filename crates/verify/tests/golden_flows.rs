//! Golden-flow regression harness: the paper flows on reduced fixtures,
//! key scalars snapshot to `tests/golden/*.json`.
//!
//! Re-bless after an intentional algorithm change with
//! `UPDATE_GOLDEN=1 cargo test -p tsc-verify --test golden_flows`.
//! Solves are bitwise deterministic across thread counts, so iteration
//! counts are snapshot at zero tolerance; physical scalars carry small
//! relative tolerances to absorb innocuous arithmetic reassociation in
//! future refactors.

use tsc_bench::json::Json;
use tsc_core::codesign::{dielectric_sweep, ToyConfig};
use tsc_core::flows::{run_flow_with, CoolingStrategy, FlowConfig};
use tsc_core::pillars::{place, PlacementConfig};
use tsc_core::scaling::min_area_for_tiers;
use tsc_designs::gemmini;
use tsc_thermal::SolveContext;
use tsc_units::{Length, Ratio};
use tsc_verify::golden::{assert_golden, Tolerances};

/// Default tolerance set: physical temperatures/penalties to 0.1%
/// relative, counters exact.
fn tolerances() -> Tolerances {
    Tolerances::new(1e-3)
        .field("iterations", 0.0)
        .field("solves", 0.0)
        .field("operator_reuses", 0.0)
        .field("pillar_count", 0.0)
        .field("tiers", 0.0)
        .field("meets_limit", 0.0)
}

fn flow_record(strategy: CoolingStrategy, tiers: usize, area: f64, delay: f64) -> Json {
    let config = FlowConfig {
        strategy,
        tiers,
        area_budget: Ratio::from_percent(area),
        delay_budget: Ratio::from_percent(delay),
        lateral_cells: 8,
        ..FlowConfig::default()
    };
    let mut ctx = SolveContext::new();
    let result = run_flow_with(&gemmini::design(), &config, &mut ctx).expect("flow solves");
    let stats = ctx.stats();
    Json::object()
        .field("tiers", result.tiers)
        .field("junction_celsius", result.junction_temperature.celsius())
        .field("footprint_percent", result.footprint_penalty.percent())
        .field("delay_percent", result.delay_penalty.percent())
        .field("pillar_density_percent", result.pillar_density.percent())
        .field("fill_slack_percent", result.fill_slack.percent())
        .field("meets_limit", result.meets_limit)
        .field("iterations", result.solution.solution.stats.iterations)
        .field("solves", stats.solves)
        .field("operator_reuses", stats.operator_reuses)
}

#[test]
fn golden_flow_scaffolding() {
    assert_golden(
        "flow_scaffolding_8t",
        &flow_record(CoolingStrategy::Scaffolding, 8, 10.0, 3.0),
        &tolerances(),
    );
}

#[test]
fn golden_flow_vertical_only() {
    assert_golden(
        "flow_vertical_only_8t",
        &flow_record(CoolingStrategy::VerticalOnly, 8, 34.0, 7.0),
        &tolerances(),
    );
}

#[test]
fn golden_flow_conventional() {
    assert_golden(
        "flow_conventional_6t",
        &flow_record(CoolingStrategy::ConventionalDummyVias, 6, 20.0, 10.0),
        &tolerances(),
    );
}

#[test]
fn golden_codesign_dielectric_sweep() {
    let cfg = ToyConfig {
        cells: 16,
        ..ToyConfig::default()
    };
    let points = dielectric_sweep(&cfg, Length::from_micrometers(2.0), &[0.1, 1.4, 10.0])
        .expect("sweep solves");
    let record = Json::object().field(
        "points",
        points
            .iter()
            .map(|&(k, reduction)| {
                Json::object()
                    .field("k_dielectric", k)
                    .field("rise_reduction_percent", reduction.percent())
            })
            .collect::<Vec<_>>(),
    );
    assert_golden("codesign_dielectric_sweep", &record, &tolerances());
}

#[test]
fn golden_pillar_placement() {
    let config = PlacementConfig {
        tiers: 6,
        lateral_cells: 8,
        ..PlacementConfig::paper_default()
    };
    let plan = place(&gemmini::design(), &config)
        .expect("placement solves")
        .expect("6 tiers are coolable with pillars");
    let record = Json::object()
        .field("pillar_count", plan.count())
        .field("replicas", plan.replicas)
        .field("area_penalty_percent", plan.area_penalty.percent())
        .field("density_map_mean", plan.density_map.mean());
    assert_golden("pillar_placement_6t", &record, &tolerances());
}

#[test]
fn golden_scaling_min_area() {
    let area = min_area_for_tiers(
        &gemmini::design(),
        CoolingStrategy::Scaffolding,
        6,
        Ratio::from_percent(3.0),
        Ratio::from_percent(60.0),
        0.5,
        8,
    )
    .expect("bisection solves")
    .expect("6 tiers feasible within 60% area");
    let record = Json::object().field("min_area_percent", area.percent());
    assert_golden("scaling_min_area_6t", &record, &tolerances());
}
